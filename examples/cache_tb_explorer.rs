//! Sweep cache and TB geometries and watch the miss rates and CPI move —
//! the kind of design study the paper's data was collected to support
//! ("The context-switch figure is useful in setting the flush interval in
//! cache and translation buffer simulations").
//!
//! ```sh
//! cargo run --release --example cache_tb_explorer
//! ```

use vax780::{SystemBuilder, SystemConfig};
use vax_mem::{CacheConfig, TbConfig};
use vax_workload::{generate_process, Workload};

fn run(config: SystemConfig, label: &str) {
    let profile = Workload::TimesharingResearch.profile();
    let mut builder = SystemBuilder::new(config);
    for i in 0..4 {
        builder.add_process(generate_process(&profile, 100 + i));
    }
    let mut system = builder.build();
    let m = system.measure(10_000, 120_000);
    let n = m.instructions().max(1) as f64;
    println!(
        "{label:<28} CPI {:>5.2}  cache-miss/instr {:>6.3}  TB-miss/instr {:>6.4}",
        m.cpi(),
        (m.mem_stats.d_read_misses + m.mem_stats.i_read_misses + m.mem_stats.pte_read_misses)
            as f64
            / n,
        m.mem_stats.total_tb_misses() as f64 / n,
    );
}

fn main() {
    println!("== cache size sweep (2-way, 8-byte blocks) ==");
    for kb in [2usize, 4, 8, 16, 32] {
        let mut config = SystemConfig::default();
        config.mem.cache = CacheConfig {
            size_bytes: kb * 1024,
            ways: 2,
            block_bytes: 8,
        };
        run(config, &format!("cache {kb:>2} KB"));
    }

    println!();
    println!("== TB size sweep (2-way, split halves) ==");
    for entries in [32usize, 64, 128, 256, 512] {
        let mut config = SystemConfig::default();
        config.mem.tb = TbConfig {
            entries,
            ways: 2,
            split: true,
        };
        run(config, &format!("TB {entries:>3} entries"));
    }

    println!();
    println!("== the 11/780 point ==");
    run(SystemConfig::default(), "8 KB cache / 128-entry TB");
}
