//! The paper's headline experiment in miniature: run the five calibrated
//! workloads, merge their µPC histograms into the composite, and print
//! every table.
//!
//! ```sh
//! cargo run --release --example timesharing_characterization
//! ```
//! (Use `cargo run --bin reproduce -p vax-bench` for the full-length runs.)

use vax_analysis::{tables, Analysis};
use vax_workload::{build_system, Workload};

fn main() {
    let per_workload = 100_000u64;
    let mut composite = None;
    let mut cs = None;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut system = build_system(w, 4, 7 + i as u64);
        let m = system.measure(per_workload / 10, per_workload);
        eprintln!("{:<34} CPI {:.2}", w.name(), m.cpi());
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(system.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
    }
    let a = Analysis::new(cs.as_ref().unwrap(), &composite.unwrap());
    println!("{}", tables::print_all_tables(&a));
}
