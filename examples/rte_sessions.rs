//! Emulate the paper's Remote Terminal Emulator experiments: the same
//! machine measured under each of the five workload scripts, reported per
//! workload — showing how the instruction mix (and therefore CPI) shifts
//! with the user population.
//!
//! ```sh
//! cargo run --release --example rte_sessions
//! ```

use vax_analysis::Analysis;
use vax_arch::OpcodeGroup;
use vax_workload::{build_system, Workload};

fn main() {
    println!(
        "{:<34} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "workload", "CPI", "float%", "call/ret%", "char%", "TBmiss/ki"
    );
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut system = build_system(w, 4, 42 + i as u64);
        let m = system.measure(20_000, 200_000);
        let a = Analysis::new(&system.cpu.cs, &m);
        let g = a.group_percent();
        println!(
            "{:<34} {:>6.2} {:>8.2} {:>8.2} {:>8.2} {:>9.1}",
            w.name(),
            a.cpi(),
            g[OpcodeGroup::Float.index()],
            g[OpcodeGroup::CallRet.index()],
            g[OpcodeGroup::Character.index()],
            1000.0 * m.mem_stats.total_tb_misses() as f64 / m.instructions().max(1) as f64,
        );
    }
    println!();
    println!("scientific/engineering should lead in float%, commercial in char%.");
}
