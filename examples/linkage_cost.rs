//! Measure the paper's observation that "VAX subroutine linkage is quite
//! simple ... procedure linkage is more complex, involving considerable
//! state saving and restoring on the stack": compare JSB/RSB against
//! CALLS/RET per-invocation cost directly.
//!
//! ```sh
//! cargo run --release --example linkage_cost
//! ```

use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
use vax_asm::parse;

fn measure(source: &str) -> f64 {
    let image = parse(source, 0x200).expect("assembly failed");
    let mut builder = SystemBuilder::new(SystemConfig::default());
    builder.add_process(ProcessSpec::new(image, "entry"));
    let mut system = builder.build();
    let m = system.measure(5_000, 80_000);
    m.cpi()
}

fn main() {
    // Subroutine linkage: push/pop the PC only.
    let jsb = r#"
        entry:
        loop:   BSBW  sub
                BRB   loop
        sub:    ADDL2 #1, R3
                RSB
    "#;
    // Procedure linkage: full stack frame plus saved registers.
    let calls = r#"
        entry:
        loop:   CALLS #0, proc
                BRB   loop
        proc:   .word ^X0FC        ; entry mask: save R2-R7
                ADDL2 #1, R3
                RET
    "#;
    let jsb_cpi = measure(jsb);
    let calls_cpi = measure(calls);
    println!("BSBW/RSB  loop: {jsb_cpi:.2} cycles/instruction");
    println!("CALLS/RET loop: {calls_cpi:.2} cycles/instruction");
    println!(
        "procedure linkage costs {:.1}x the subroutine form per instruction",
        calls_cpi / jsb_cpi
    );
    println!();
    println!(
        "The paper's Table 9: CALL/RET instructions average 45 cycles each,\n\
         while the whole SIMPLE group (including BSB/RSB) averages 1.2."
    );
}
