//! Quickstart: assemble a small VAX program, run it on the simulated
//! 11/780 with the µPC histogram monitor attached, and print where the
//! cycles went.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
use vax_analysis::{tables, Analysis};
use vax_asm::parse;

fn main() {
    // A little program in VAX MACRO-ish assembly: sum an array.
    let source = r#"
        entry:  MOVL  #100, R2        ; outer iterations
        outer:  CLRL  R0
                MOVL  #64, R3         ; elements
                MOVL  #4096, R6       ; array base (mapped data page)
        sum:    ADDL2 (R6)+, R0
                SOBGTR R3, sum
                MOVL  R0, @#4092      ; store the total
                SOBGTR R2, outer
                MOVL  #100, R2
                BRW   outer
    "#;
    let image = parse(source, 0x200).expect("assembly failed");

    let mut builder = SystemBuilder::new(SystemConfig::default());
    builder.add_process(ProcessSpec::new(image, "entry").with_bss_pages(32));
    let mut system = builder.build();

    // The paper's procedure: warm up, clear, measure.
    let m = system.measure(5_000, 100_000);
    let a = Analysis::new(&system.cpu.cs, &m);
    a.check_conservation()
        .expect("histogram must conserve cycles");

    println!("instructions : {}", a.instructions);
    println!("cycles       : {}", a.cycles);
    println!(
        "CPI          : {:.2}  (the paper's composite: 10.6)",
        a.cpi()
    );
    println!();
    println!("{}", tables::table8(&a));
}
