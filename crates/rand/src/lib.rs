//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) API subset the simulator uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` —
//! backed by xoshiro256** seeded via SplitMix64. The generator is fully
//! deterministic and portable, which the reproduction harness relies on:
//! the same seed always produces the same synthetic workload.
//!
//! It is **not** the real `rand` crate and implements nothing else.

use std::ops::{Range, RangeInclusive};

/// Types a [`Rng`] can produce uniformly over their whole domain.
pub trait Uniform: Copy {
    /// Produce one value from 64 raw bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait RangeSample: Copy + PartialOrd {
    /// Map a raw 64-bit draw into `[lo, hi)` (exclusive upper bound).
    fn sample_exclusive(lo: Self, hi: Self, bits: u64) -> Self;
    /// Map a raw 64-bit draw into `[lo, hi]` (inclusive upper bound).
    fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_exclusive(lo: Self, hi: Self, bits: u64) -> Self {
                debug_assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (bits as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
                debug_assert!(lo <= hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (bits as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_sample_float {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_exclusive(lo: Self, hi: Self, bits: u64) -> Self {
                debug_assert!(lo < hi, "gen_range requires a non-empty range");
                let f = (bits >> 11) as $t / (1u64 << 53) as $t; // in [0, 1)
                lo + f * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
                if lo == hi {
                    return lo;
                }
                Self::sample_exclusive(lo, hi, bits)
            }
        }
    )*};
}
impl_range_sample_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`] (half-open and inclusive).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn draw(self, bits: u64) -> T;
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

impl<T: RangeSample> SampleRange<T> for Range<T> {
    fn draw(self, bits: u64) -> T {
        T::sample_exclusive(self.start, self.end, bits)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

impl<T: RangeSample> SampleRange<T> for RangeInclusive<T> {
    fn draw(self, bits: u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, bits)
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// The `rand::Rng` subset used by this workspace.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value over the type's whole domain.
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform value from the given range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: RangeSample, R: SampleRange<T>>(&mut self, range: R) -> T {
        assert!(!range.is_empty_range(), "gen_range called with empty range");
        range.draw(self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 mantissa bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

/// The `rand::SeedableRng` subset used by this workspace.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 finalizer: a bijective avalanche mix over `u64`.
///
/// Used both to expand seeds into xoshiro state and to split independent
/// seed streams ([`SeedStream`]). Being bijective, distinct inputs always
/// produce distinct outputs.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, hierarchical seed splitter.
///
/// Parallel measurement campaigns need one seed per `(workload, shard)`
/// cell, and those seeds must be (a) reproducible from the single
/// user-supplied root seed, (b) independent of execution order, and (c)
/// well-separated — `root + i` style derivation hands adjacent generators
/// nearly identical xoshiro states. `SeedStream` solves this with the
/// SplitMix64 finalizer: `stream(id)` mixes the child id into the parent
/// state through a full avalanche, so any grid of ids yields decorrelated
/// seeds, and nested splits (`root.stream(w).stream(s)`) give every shard
/// its own stream without coordination.
///
/// ```
/// use rand::SeedStream;
/// let root = SeedStream::new(1984);
/// let shard_seed = root.stream(2).stream(0).seed(); // workload 2, shard 0
/// assert_eq!(shard_seed, SeedStream::new(1984).stream(2).stream(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// The stream rooted at `root`. The root stream's [`SeedStream::seed`]
    /// is `root` itself, so a root stream is a drop-in replacement for a
    /// plain seed.
    pub fn new(root: u64) -> SeedStream {
        SeedStream { state: root }
    }

    /// The `id`-th child stream. Children with distinct ids (or distinct
    /// parents) have well-separated states; `stream` is pure, so the same
    /// `(root, id)` path always yields the same stream.
    #[must_use]
    pub fn stream(&self, id: u64) -> SeedStream {
        SeedStream {
            state: splitmix64_mix(
                self.state ^ id.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// The stream's seed value, for `SeedableRng::seed_from_u64` or any
    /// other consumer of a `u64` seed.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// An [`rngs::StdRng`] seeded from this stream.
    pub fn rng(&self) -> rngs::StdRng {
        rngs::StdRng::seed_from_u64(self.state)
    }
}

/// RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// One step of the SplitMix64 sequence: emit the mix of the current
    /// state and advance it by the golden-ratio increment.
    fn splitmix64(state: &mut u64) -> u64 {
        let out = crate::splitmix64_mix(*state);
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let s: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_covers_domain() {
        let mut r = StdRng::seed_from_u64(5);
        let mut any_high = false;
        for _ in 0..100 {
            let v: u32 = r.gen();
            any_high |= v > u32::MAX / 2;
        }
        assert!(any_high, "upper half of u32 domain never hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5);
    }

    mod seed_stream {
        use crate::{Rng, SeedStream};
        use std::collections::HashSet;

        #[test]
        fn deterministic_and_path_dependent() {
            let a = SeedStream::new(1984).stream(3).stream(1);
            let b = SeedStream::new(1984).stream(3).stream(1);
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
            // Different path, different stream — even when the flat ids match.
            assert_ne!(
                SeedStream::new(1984).stream(1).stream(3).seed(),
                SeedStream::new(1984).stream(3).stream(1).seed()
            );
            assert_ne!(SeedStream::new(1983).stream(3).seed(), a.seed());
        }

        #[test]
        fn root_seed_is_the_root() {
            assert_eq!(SeedStream::new(42).seed(), 42);
        }

        #[test]
        fn children_do_not_collide_over_a_grid() {
            // Every (workload, shard) cell of a generous grid gets a
            // distinct seed, and none equals the root.
            let root = SeedStream::new(1984);
            let mut seen = HashSet::new();
            seen.insert(root.seed());
            for w in 0..64u64 {
                for s in 0..64u64 {
                    assert!(
                        seen.insert(root.stream(w).stream(s).seed()),
                        "collision at ({w}, {s})"
                    );
                }
            }
        }

        #[test]
        fn adjacent_ids_are_decorrelated() {
            // seed+i derivation leaves adjacent seeds one bit apart; split
            // streams must differ across the whole word.
            let root = SeedStream::new(0);
            let bits_flipped = (root.stream(0).seed() ^ root.stream(1).seed()).count_ones();
            assert!(bits_flipped >= 16, "only {bits_flipped} bits differ");
        }
    }
}
