//! The EBOX: the microcoded execution engine.
//!
//! [`Cpu::step`] runs one VAX instruction (or one interrupt dispatch),
//! emitting every microcycle to the attached µPC histogram with the
//! address/plane semantics of the real monitor:
//!
//! * a normally executing microinstruction counts once in the normal plane
//!   at its µPC;
//! * read/write stall cycles count in the stalled plane at the stalled
//!   microinstruction's µPC;
//! * IB starvation counts in the normal plane at the "insufficient bytes"
//!   dispatch address of the starving decode stage;
//! * a TB miss charges one abort cycle plus the MemMgmt service routine;
//! * microcode patches charge periodic abort cycles.

use upc_monitor::{Histogram, MicroOp, MicroPc, Plane, Region};
use vax_arch::psl::AccessMode;
use vax_arch::{
    AccessType, AddressingMode, BranchKind, DataType, Instruction, Opcode, OperandKind, Psl, Reg,
    Specifier,
};
use vax_mem::addr::PAGE_SIZE;
use vax_mem::trace::{StallClass, TraceEvent};
use vax_mem::{MemorySystem, PhysAddr, RefClass, VirtAddr};

use crate::config::CpuConfig;
use crate::exec::{self, Flow};
use crate::flight::SharedFlightRecorder;
use crate::ib::Ib;
use crate::icache::{DecodeCache, DecodeCacheStats};
use crate::ipr::Ipr;
use crate::operand::{EvaldOperand, Loc, PendingWb};
use crate::stats::CpuStats;
use crate::store::{ControlStore, SpecFlavor, SpecRegions};

/// SCB slot (longword index from `scb_base`) of the CHMK service vector.
pub const VEC_CHMK: u32 = 0;
/// SCB slot of the interval-timer interrupt vector.
pub const VEC_TIMER: u32 = 1;
/// SCB slot of the software-interrupt vector.
pub const VEC_SOFT: u32 = 2;
/// SCB slot of the machine-check vector (latched parity faults).
pub const VEC_MCHK: u32 = 3;
/// SCB slot of the external-device interrupt vector (fault-injection
/// hardware-interrupt bursts).
pub const VEC_DEVICE: u32 = 4;

/// IPL at which machine checks are delivered (above every device level).
pub const MCHK_IPL: u8 = 30;
/// IPL of injected device-burst interrupts: below the interval timer
/// (`CpuConfig::timer_ipl`, 22) and above every software level.
pub const DEVICE_IPL: u8 = 21;

/// What one [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired.
    Retired(Opcode),
    /// An interrupt was dispatched instead of an instruction.
    Interrupt,
    /// A HALT instruction was executed.
    Halted,
}

/// The simulated CPU.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General registers R0–R15 (R15 is PC between instructions).
    pub regs: [u32; 16],
    /// Processor status longword.
    pub psl: Psl,
    /// Current cycle number (200 ns units).
    pub cycle: u64,
    /// The memory subsystem.
    pub mem: MemorySystem,
    /// The attached µPC histogram monitor.
    pub hist: Histogram,
    /// The control store layout (reduction key).
    pub cs: ControlStore,
    /// Configuration.
    pub config: CpuConfig,
    /// Internal processor registers.
    pub iprs: Ipr,
    /// CPU-side statistics.
    pub stats: CpuStats,
    /// Ring of recently retired instructions, dumped on fatal errors.
    /// Disabled by default; see [`SharedFlightRecorder::with_capacity`].
    pub flight: SharedFlightRecorder,
    ib: Ib,
    pending_hw: Option<(u8, u32)>,
    next_timer: u64,
    next_patch: u64,
    decode_buf: Vec<u8>,
    icache: DecodeCache,
    /// Scratch for evaluated operands, reused across steps so the hot loop
    /// allocates nothing. Taken/returned around each step.
    operands_buf: Vec<EvaldOperand>,
    /// Scratch for pending operand write-backs, reused across steps.
    writebacks_buf: Vec<PendingWb>,
}

impl Cpu {
    /// Build a CPU over a memory system. The histogram starts *stopped*;
    /// call `cpu.hist.start()` to begin measurement (warm-up runs can thus
    /// be excluded, as the paper excluded the Null process).
    pub fn new(config: CpuConfig, mem: MemorySystem) -> Cpu {
        let cs = ControlStore::new(&config);
        Cpu {
            regs: [0; 16],
            psl: Psl::new_kernel(31),
            cycle: 0,
            mem,
            hist: Histogram::new_16k(),
            cs,
            config,
            iprs: Ipr::default(),
            stats: CpuStats::new(),
            flight: SharedFlightRecorder::disabled(),
            ib: Ib::new(),
            pending_hw: None,
            next_timer: config.timer_interval.unwrap_or(u64::MAX),
            next_patch: config.patch_interval.unwrap_or(u64::MAX),
            decode_buf: Vec::with_capacity(64),
            icache: DecodeCache::new(),
            operands_buf: Vec::with_capacity(8),
            writebacks_buf: Vec::with_capacity(8),
        }
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.regs[15]
    }

    /// Set the PC and redirect the I-Fetch unit.
    pub fn set_pc(&mut self, pc: u32) {
        self.regs[15] = pc;
        self.ib.flush(pc);
    }

    /// Post an external hardware interrupt (device model hook).
    pub fn post_interrupt(&mut self, ipl: u8, scb_slot: u32) {
        self.pending_hw = Some((ipl, scb_slot));
    }

    /// Request a software interrupt exactly as a guest MTPR to SIRR would
    /// (fault-injection hook): the request is latched in the IPR file and
    /// counted in `sw_interrupt_requests`, so the Table 7 request/delivery
    /// reconciliation holds under injected bursts too.
    pub fn request_soft_interrupt(&mut self, level: u8) {
        self.iprs.request_soft(level);
        self.stats.sw_interrupt_requests += 1;
    }

    // ---- cycle plumbing ----

    #[inline]
    fn tick(&mut self) {
        self.cycle += 1;
        self.ib.sync(self.cycle, &mut self.mem);
    }

    #[inline]
    fn advance(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Emit one compute cycle at `upc`.
    #[inline]
    pub(crate) fn c(&mut self, upc: MicroPc) {
        self.hist.record(upc, Plane::Normal);
        self.tick();
    }

    /// Emit `n` compute cycles over a region's offsets `[from, from+n)`.
    pub(crate) fn c_span(&mut self, region: Region, from: u16, n: u16) {
        for i in 0..n {
            self.c(region.at(from + i));
        }
    }

    // ---- fatal-error reporting ----

    /// Abort the simulation: dump the flight recorder to stderr, emit an
    /// [`TraceEvent::Exception`] for attached sinks, then panic with `msg`.
    pub(crate) fn fatal(&self, kind: &'static str, msg: String) -> ! {
        let (pc, cycle) = (self.regs[15], self.cycle);
        self.mem
            .trace
            .emit_with(|| TraceEvent::Exception { pc, kind, cycle });
        self.flight.dump_stderr();
        panic!("{msg}");
    }

    // ---- translation & memory reference emission ----

    fn translate_d(&mut self, va: VirtAddr) -> PhysAddr {
        loop {
            if let Some(pa) = self.mem.probe_tb_at(va, RefClass::DStream, self.cycle) {
                return pa;
            }
            self.run_tb_miss(va);
        }
    }

    /// TB-miss microtrap + service routine (MemMgmt row; abort cycle in the
    /// Abort row; PTE read stalls in the stalled plane).
    fn run_tb_miss(&mut self, va: VirtAddr) {
        self.c(self.cs.abort.entry());
        let r = self.cs.tb_miss;
        for i in 0..self.config.tb_miss_overhead {
            self.c(r.at(i as u16));
        }
        let fill = self.mem.tb_fill(va, self.cycle).unwrap_or_else(|e| {
            self.fatal(
                "page-fault",
                format!(
                    "unhandled page fault: {e} ({va}) at PC {:#010x}, regs {:x?}, psl {:?}",
                    self.regs[15], self.regs, self.psl
                ),
            )
        });
        let read_upc = r.at(self.cs.tb_miss_read_off);
        for _ in 0..fill.pte_reads {
            self.hist.record(read_upc, Plane::Normal);
            self.tick();
        }
        if fill.stall > 0 {
            self.hist.record_n(read_upc, Plane::Stalled, fill.stall);
            self.advance(fill.stall);
        }
        self.c(r.at(self.cs.tb_miss_read_off + 1));
    }

    /// Extra microcode for a reference that crossed an aligned-longword
    /// boundary: two compute cycles plus the second physical reference.
    fn run_unaligned(&mut self, pa_second: PhysAddr, write: bool) {
        self.mem.note_unaligned();
        let r = self.cs.unaligned;
        self.c(r.at(0));
        self.c(r.at(1));
        if write {
            let upc = r.at(3);
            self.hist.record(upc, Plane::Normal);
            let stall = self.mem.write_cycle(pa_second, self.cycle);
            if stall > 0 {
                self.hist.record_n(upc, Plane::Stalled, stall);
            }
            self.advance(1 + stall);
        } else {
            let upc = r.at(2);
            self.hist.record(upc, Plane::Normal);
            let out = self.mem.read_cycle(pa_second, self.cycle);
            if out.stall > 0 {
                self.hist.record_n(upc, Plane::Stalled, out.stall);
            }
            self.advance(1 + out.stall);
        }
    }

    /// One D-stream read of `size` ≤ 8 bytes at `va`, charged to `upc`.
    /// Handles TB misses, quadword doubling, and unaligned references.
    pub(crate) fn read_data(&mut self, upc: MicroPc, va: VirtAddr, size: u32) -> u64 {
        if size > 4 {
            let lo = self.read_data_lw(upc, va, 4);
            let hi = self.read_data_lw(upc, va.add(4), 4);
            return lo | (hi << 32);
        }
        self.read_data_lw(upc, va, size)
    }

    fn read_data_lw(&mut self, upc: MicroPc, va: VirtAddr, size: u32) -> u64 {
        let pa = self.translate_d(va);
        self.hist.record(upc, Plane::Normal);
        let out = self.mem.read_cycle(pa, self.cycle);
        if out.stall > 0 {
            self.hist.record_n(upc, Plane::Stalled, out.stall);
        }
        self.advance(1 + out.stall);
        let value = self.read_value(va, size);
        if va.is_unaligned(size) {
            // Second physical reference to the next longword.
            let next_lw = VirtAddr((va.0 & !3) + 4);
            let pa2 = self.translate_d(next_lw);
            self.run_unaligned(pa2, false);
        }
        value
    }

    /// One D-stream write of `size` ≤ 8 bytes, charged to `upc`.
    pub(crate) fn write_data(&mut self, upc: MicroPc, va: VirtAddr, size: u32, value: u64) {
        if size > 4 {
            self.write_data_lw(upc, va, 4, value & 0xFFFF_FFFF);
            self.write_data_lw(upc, va.add(4), 4, value >> 32);
            return;
        }
        self.write_data_lw(upc, va, size, value);
    }

    fn write_data_lw(&mut self, upc: MicroPc, va: VirtAddr, size: u32, value: u64) {
        let pa = self.translate_d(va);
        self.hist.record(upc, Plane::Normal);
        let stall = self.mem.write_cycle(pa, self.cycle);
        if stall > 0 {
            self.hist.record_n(upc, Plane::Stalled, stall);
        }
        self.advance(1 + stall);
        self.write_value(va, size, value);
        if va.is_unaligned(size) {
            let next_lw = VirtAddr((va.0 & !3) + 4);
            let pa2 = self.translate_d(next_lw);
            self.run_unaligned(pa2, true);
        }
    }

    /// Untimed virtual-memory read (semantics only; page-crossing safe).
    pub(crate) fn read_value(&self, va: VirtAddr, size: u32) -> u64 {
        let in_page = va.remaining_in(PAGE_SIZE);
        if size <= in_page {
            let pa = self.raw(va);
            self.mem.value_read(pa, size)
        } else {
            let lo = self.mem.value_read(self.raw(va), in_page);
            let hi = self
                .mem
                .value_read(self.raw(va.add(in_page)), size - in_page);
            lo | (hi << (8 * in_page))
        }
    }

    /// Untimed virtual-memory write.
    pub(crate) fn write_value(&mut self, va: VirtAddr, size: u32, value: u64) {
        let in_page = va.remaining_in(PAGE_SIZE);
        if size <= in_page {
            let pa = self.raw(va);
            self.mem.value_write(pa, size, value);
        } else {
            let pa1 = self.raw(va);
            let pa2 = self.raw(va.add(in_page));
            self.mem
                .value_write(pa1, in_page, value & ((1 << (8 * in_page)) - 1));
            self.mem
                .value_write(pa2, size - in_page, value >> (8 * in_page));
        }
    }

    fn raw(&self, va: VirtAddr) -> PhysAddr {
        self.mem
            .raw_translate(va)
            .unwrap_or_else(|e| self.fatal("unmapped", format!("unmapped address {va}: {e}")))
    }

    // ---- I-stream consumption ----

    /// Consume `n` instruction bytes, recording IB-stall cycles at
    /// `wait_upc` while starving, and servicing I-stream TB misses when the
    /// decoder actually needs the bytes (paper §2.1). Consumption proceeds
    /// in longword-sized gulps — a quad immediate (9 bytes with its
    /// specifier byte) is wider than the 8-byte IB.
    fn consume_istream(&mut self, n: u32, wait_upc: MicroPc) {
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(4);
            let mut stall_start: Option<u64> = None;
            loop {
                self.ib.sync(self.cycle, &mut self.mem);
                if self.ib.valid_bytes() >= chunk {
                    break;
                }
                if let Some(va) = self.ib.itb_miss() {
                    self.ib.clear_itb_miss();
                    self.end_ib_stall(&mut stall_start);
                    self.run_tb_miss(va);
                    continue;
                }
                if stall_start.is_none() {
                    stall_start = Some(self.cycle);
                    let cycle = self.cycle;
                    self.mem.trace.emit_with(|| TraceEvent::StallBegin {
                        class: StallClass::IbEmpty,
                        cycle,
                    });
                }
                self.hist.record(wait_upc, Plane::Normal);
                self.tick();
            }
            self.end_ib_stall(&mut stall_start);
            self.ib.consume(chunk);
            remaining -= chunk;
        }
    }

    /// Close an open IB-starvation window on the trace bus.
    fn end_ib_stall(&mut self, start: &mut Option<u64>) {
        if let Some(from) = start.take() {
            let now = self.cycle;
            self.mem.trace.emit_with(|| TraceEvent::StallEnd {
                class: StallClass::IbEmpty,
                cycle: now,
                cycles: now - from,
            });
        }
    }

    // ---- instruction fetch/decode ----

    fn peek_code(&mut self, va: u32, want: usize) {
        while self.decode_buf.len() < want {
            let a = va.wrapping_add(self.decode_buf.len() as u32);
            let pa = self.raw(VirtAddr(a));
            let in_page = VirtAddr(a).remaining_in(PAGE_SIZE) as usize;
            let take = in_page.min(want - self.decode_buf.len());
            let slice = self.mem.phys().slice(pa, take);
            self.decode_buf.extend_from_slice(slice);
        }
    }

    /// Decode the instruction at `pc` (untimed; I-stream timing is the IB's
    /// job), consulting the decode cache when enabled.
    ///
    /// Cache validity: a hit is served only when (a) the memory system's
    /// code epoch matches the epoch the cache was filled under — any store
    /// overlapping watched code bytes, page remap, or direct physical
    /// access bumps the epoch and empties the cache — and (b) the entry was
    /// cached under the current page-table tuple (mapping context). TB
    /// invalidates flush via [`Cpu::flush_decode_cache`]; LDPCTX needs no
    /// cache action at all — the incoming context resolves to its own tag
    /// space, and PTE rewrites are caught by the watched translation walk.
    fn fetch_decode(&mut self) -> Instruction {
        let pc = self.pc();
        if !self.config.decode_cache {
            return self.decode_at(pc);
        }
        let epoch = self.mem.code_epoch();
        let tables = self.mem.tables;
        if let Some(insn) = self.icache.lookup(pc, epoch, &tables) {
            return insn;
        }
        let insn = self.decode_at(pc);
        self.watch_code_range(pc, insn.len);
        self.icache.insert(pc, insn);
        insn
    }

    fn decode_at(&mut self, pc: u32) -> Instruction {
        self.decode_buf.clear();
        let mut want = 8;
        loop {
            self.peek_code(pc, want);
            match vax_arch::decode(&self.decode_buf) {
                Ok(insn) => return insn,
                Err(vax_arch::DecodeError::Truncated) if want < 64 => want += 8,
                Err(e) => self.fatal(
                    "illegal-insn",
                    format!("illegal instruction at {pc:#x}: {e}"),
                ),
            }
        }
    }

    /// Register the physical memory backing `[pc, pc + len)` with the
    /// memory system's code watch, page by page (the range may cross pages
    /// with non-contiguous frames). Translation goes through the *watched*
    /// walk, so the PTEs mapping this code are watched too: remapping the
    /// code by rewriting its PTEs invalidates just like rewriting its
    /// bytes.
    fn watch_code_range(&mut self, pc: u32, len: u32) {
        let mut off = 0;
        while off < len {
            let va = VirtAddr(pc.wrapping_add(off));
            let pa = self
                .mem
                .raw_translate_watched(va)
                .unwrap_or_else(|e| self.fatal("unmapped", format!("unmapped address {va}: {e}")));
            let chunk = va.remaining_in(PAGE_SIZE).min(len - off);
            self.mem.watch_code(pa, chunk);
            off += chunk;
        }
    }

    /// Drop every cached decode, for every mapping context. Called on TB
    /// invalidates (TBIA/TBIS): the guest announces PTE rewrites for the
    /// running context this way, and the watch-epoch mechanism cannot see
    /// stores to page-table memory.
    pub fn flush_decode_cache(&mut self) {
        self.icache.flush();
    }

    /// Host-side decode-cache counters (never part of simulated results).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats()
    }

    // ---- interrupt dispatch ----

    fn dispatch_interrupt(&mut self, ipl: u8, scb_slot: u32, hardware: bool) {
        let cycle = self.cycle;
        self.mem.trace.emit_with(|| TraceEvent::Interrupt {
            ipl,
            hardware,
            cycle,
        });
        let r = self.cs.interrupt;
        // State sequencing.
        self.c_span(r, 0, self.cs.interrupt_read_off);
        // Vector read.
        let vec_va = self.config.scb_base.add(scb_slot * 4);
        let target = self.read_data(r.at(self.cs.interrupt_read_off), vec_va, 4) as u32;
        // Push PSL then PC (PC ends on top, as REI expects).
        let sp = self.regs[14].wrapping_sub(4);
        self.write_data(
            r.at(self.cs.interrupt_push_off),
            VirtAddr(sp),
            4,
            self.psl.to_u32() as u64,
        );
        let sp2 = sp.wrapping_sub(4);
        self.write_data(
            r.at(self.cs.interrupt_push_off + 1),
            VirtAddr(sp2),
            4,
            self.pc() as u64,
        );
        self.regs[14] = sp2;
        // Cleanup cycles.
        let fin = self.cs.interrupt_push_off + 2;
        self.c_span(r, fin, r.len - fin);
        self.psl.ipl = ipl;
        self.psl.cur_mode = AccessMode::Kernel;
        self.set_pc(target);
        if hardware {
            self.stats.hw_interrupts += 1;
        } else {
            self.stats.sw_interrupts += 1;
        }
    }

    // ---- the step ----

    /// Execute one instruction or dispatch one pending interrupt.
    pub fn step(&mut self) -> StepOutcome {
        // Microcode patch aborts accrue with time.
        if self.config.patch_interval.is_some() {
            while self.cycle >= self.next_patch {
                self.c(self.cs.abort.entry());
                self.next_patch += self.config.patch_interval.unwrap();
            }
        }
        // Interval timer.
        if let Some(ti) = self.config.timer_interval {
            if self.cycle >= self.next_timer {
                self.next_timer = self.cycle + ti;
                self.pending_hw = Some((self.config.timer_ipl, VEC_TIMER));
            }
        }
        // Machine check: a latched parity fault becomes the highest-priority
        // hardware interrupt. The pending slot holds a single interrupt, so
        // a machine check supersedes a not-yet-delivered timer or device
        // interrupt — a deterministic lost-interrupt, mirroring how a real
        // 780 error condition preempts lower-priority requests.
        if self.mem.take_parity_fault() {
            self.stats.machine_checks += 1;
            self.pending_hw = Some((MCHK_IPL, VEC_MCHK));
        }
        // Interrupt delivery.
        if let Some((ipl, slot)) = self.pending_hw {
            if ipl > self.psl.ipl {
                self.pending_hw = None;
                self.dispatch_interrupt(ipl, slot, true);
                return StepOutcome::Interrupt;
            }
        }
        if let Some(level) = self.iprs.pending_soft() {
            if level > self.psl.ipl {
                self.iprs.clear_soft(level);
                self.dispatch_interrupt(level, VEC_SOFT, false);
                return StepOutcome::Interrupt;
            }
        }

        let insn = self.fetch_decode();
        let insn_pc = self.pc();
        let insn_end = insn_pc.wrapping_add(insn.len);

        // IRD: wait for the opcode byte, then the one decode cycle.
        self.consume_istream(1, self.cs.ird.at(1));
        self.c(self.cs.ird.at(0));

        // Operand specifier processing. The scratch vectors live on the Cpu
        // and are taken/returned so steady-state steps never allocate
        // (`exec::execute` needs `&mut self` alongside them).
        let mut operands = std::mem::take(&mut self.operands_buf);
        operands.clear();
        let mut writebacks = std::mem::take(&mut self.writebacks_buf);
        writebacks.clear();
        let mut spec_i = 0usize;
        let mut cursor = self.pc().wrapping_add(1);
        let mut first_spec_mode = None;
        for (op_i, kind) in insn.opcode.operands().iter().enumerate() {
            match kind {
                OperandKind::Spec(access, dt) => {
                    let spec = insn.specifiers[spec_i];
                    let sr: &SpecRegions = if spec_i == 0 {
                        &self.cs.spec1
                    } else {
                        &self.cs.spec26
                    };
                    let (ib_wait, index_prefix) = (sr.ib_wait, sr.index_prefix);
                    if spec_i == 0 {
                        first_spec_mode = Some(spec.mode);
                        self.stats.spec1_count += 1;
                    } else {
                        self.stats.spec26_count += 1;
                    }
                    let enc_len = spec.encoded_len(dt.size());
                    cursor = cursor.wrapping_add(enc_len);
                    self.consume_istream(enc_len, ib_wait);
                    let first = spec_i == 0;
                    let (val, wb) =
                        self.eval_spec(&spec, *access, *dt, first, cursor, index_prefix, op_i);
                    operands.push(val);
                    if let Some(wb) = wb {
                        writebacks.push(wb);
                    }
                    spec_i += 1;
                }
                OperandKind::Branch(w) => {
                    cursor = cursor.wrapping_add(w.size());
                    self.consume_istream(w.size(), self.cs.bdisp.at(1));
                }
            }
        }

        // Bookkeeping.
        self.stats.instructions += 1;
        self.stats.istream_bytes += insn.len as u64;
        self.stats.opcode_counts[insn.opcode as usize] += 1;
        if insn.branch_disp.is_some() {
            self.stats.branch_disps += 1;
        }
        if insn.opcode == Opcode::Ldpctx {
            self.stats.context_switches += 1;
            let cycle = self.cycle;
            self.mem
                .trace
                .emit_with(|| TraceEvent::ContextSwitch { cycle });
        }

        // PC now names the next sequential instruction (pushed by calls).
        self.regs[15] = insn_end;

        // Execute.
        let fused = self.config.fusion
            && insn.opcode.group() == vax_arch::OpcodeGroup::Simple
            && insn.opcode.branch_kind() == BranchKind::None
            && first_spec_mode == Some(AddressingMode::Literal);
        let flow = exec::execute(self, &insn, &mut operands, fused);

        // Write-backs (charged to the specifier routines' final µops).
        for wb in &writebacks {
            let value = operands[wb.operand_index].value;
            match (wb.loc, wb.upc) {
                (Loc::Mem(va), Some(upc)) => self.write_data(upc, va, wb.size, value),
                (Loc::Reg(r), Some(upc)) => {
                    self.c(upc);
                    self.set_reg(r, wb.size, value);
                }
                (Loc::Reg(r), None) => self.set_reg(r, wb.size, value),
                (Loc::Mem(va), None) => {
                    let upc = self.cs.spec26.ib_wait; // unreachable in practice
                    self.write_data(upc, va, wb.size, value)
                }
                (Loc::None, _) => {}
            }
        }

        // Return the scratch vectors for the next step.
        self.operands_buf = operands;
        self.writebacks_buf = writebacks;

        // Control flow resolution.
        let kind = insn.opcode.branch_kind();
        let outcome = match flow {
            Flow::Normal => {
                if kind != BranchKind::None {
                    self.stats.record_branch(kind, false);
                }
                StepOutcome::Retired(insn.opcode)
            }
            Flow::TakenDisp => {
                // Branch displacement target computation (only when taken).
                self.c(self.cs.bdisp.at(0));
                let target = insn_end.wrapping_add(insn.branch_disp.unwrap() as u32);
                self.stats.record_branch(kind, true);
                self.set_pc(target);
                StepOutcome::Retired(insn.opcode)
            }
            Flow::Jump(target) => {
                if kind != BranchKind::None {
                    self.stats.record_branch(kind, true);
                }
                self.set_pc(target);
                StepOutcome::Retired(insn.opcode)
            }
            Flow::Halt => StepOutcome::Halted,
        };
        if matches!(outcome, StepOutcome::Retired(_)) {
            self.flight.record(insn_pc, self.cycle, &insn);
            let cycle = self.cycle;
            self.mem.trace.emit_with(|| TraceEvent::Retire {
                pc: insn_pc,
                opcode: insn.opcode.byte() as u16,
                mnemonic: insn.opcode.mnemonic(),
                size: insn.len,
                cycle,
            });
        }
        outcome
    }

    // ---- specifier evaluation ----

    #[allow(clippy::too_many_arguments)]
    fn eval_spec(
        &mut self,
        spec: &Specifier,
        access: AccessType,
        dt: DataType,
        first: bool,
        pc_after: u32,
        index_prefix: Region,
        operand_index: usize,
    ) -> (EvaldOperand, Option<PendingWb>) {
        use AddressingMode::*;
        let size = dt.size();
        let flavor = match access {
            AccessType::Read => SpecFlavor::Read,
            AccessType::Write => SpecFlavor::Write,
            AccessType::Modify => SpecFlavor::Modify,
            AccessType::Address | AccessType::Field => SpecFlavor::Address,
        };
        let sr = if first {
            &self.cs.spec1
        } else {
            &self.cs.spec26
        };
        let r = sr.routine(spec.mode, flavor);
        let rn = spec.reg;

        // Quad-width data repeats its data-reference µop at the same µPC;
        // when that µop is the routine's entry (and references the operand,
        // not a deferred pointer), the histogram's entry count runs one
        // ahead of the evaluation count. Record the repeat so validation
        // can reconcile the instruments exactly.
        if size > 4
            && spec.mode != AutoincrementDeferred
            && matches!(self.cs.map.op(r.entry()), MicroOp::Read | MicroOp::Write)
        {
            if first {
                self.stats.spec1_quad_repeats += 1;
            } else {
                self.stats.spec26_quad_repeats += 1;
            }
        }

        // Compute the effective address (with cycle emission for the
        // address-formation µops), or the value for non-memory modes.
        let addr: Option<VirtAddr> = match spec.mode {
            Literal | Immediate => None,
            Register => None,
            RegisterDeferred => Some(VirtAddr(self.get_reg32(rn))),
            Autoincrement => {
                let a = self.get_reg32(rn);
                self.bump_reg(rn, size as i32);
                Some(VirtAddr(a))
            }
            Autodecrement => {
                self.bump_reg(rn, -(size as i32));
                Some(VirtAddr(self.get_reg32(rn)))
            }
            AutoincrementDeferred => {
                let ptr = VirtAddr(self.get_reg32(rn));
                self.bump_reg(rn, 4);
                // Pointer read is the first R of the routine.
                let a = self.read_data(r.at(0), ptr, 4) as u32;
                self.c(r.at(1));
                Some(VirtAddr(a))
            }
            ByteDisp | WordDisp | LongDisp => {
                Some(VirtAddr(self.get_reg32(rn).wrapping_add(spec.value as u32)))
            }
            ByteDispDeferred | WordDispDeferred | LongDispDeferred => {
                let ptr = VirtAddr(self.get_reg32(rn).wrapping_add(spec.value as u32));
                self.c(r.at(0));
                let a = self.read_data(r.at(1), ptr, 4) as u32;
                Some(VirtAddr(a))
            }
            Absolute => Some(VirtAddr(spec.value as u32)),
            PcRelative => Some(VirtAddr(pc_after.wrapping_add(spec.value as u32))),
            PcRelativeDeferred => {
                let ptr = VirtAddr(pc_after.wrapping_add(spec.value as u32));
                self.c(r.at(0));
                let a = self.read_data(r.at(1), ptr, 4) as u32;
                Some(VirtAddr(a))
            }
        };

        // Index prefix: one more address-computation cycle.
        let addr = match (spec.index, addr) {
            (Some(ix), Some(a)) => {
                self.c(index_prefix.entry());
                Some(VirtAddr(
                    a.0.wrapping_add(self.get_reg32(ix).wrapping_mul(size)),
                ))
            }
            (_, a) => a,
        };

        // Deferred modes already emitted their pointer cycles above; the
        // remaining µops of the routine are interpreted here.
        match (spec.mode, flavor) {
            // -- literal / immediate --
            (Literal, _) | (Immediate, _) => {
                self.c(r.at(0));
                (
                    EvaldOperand {
                        value: spec.value as u64,
                        loc: Loc::None,
                        size,
                    },
                    None,
                )
            }
            // -- register --
            (Register, SpecFlavor::Read) => {
                self.c(r.at(0));
                (
                    EvaldOperand {
                        value: self.get_reg(rn, size),
                        loc: Loc::Reg(rn),
                        size,
                    },
                    None,
                )
            }
            (Register, SpecFlavor::Write) => (
                EvaldOperand {
                    value: 0,
                    loc: Loc::Reg(rn),
                    size,
                },
                Some(PendingWb {
                    operand_index,
                    upc: Some(r.at(0)),
                    loc: Loc::Reg(rn),
                    size,
                }),
            ),
            (Register, SpecFlavor::Modify) => {
                self.c(r.at(0));
                (
                    EvaldOperand {
                        value: self.get_reg(rn, size),
                        loc: Loc::Reg(rn),
                        size,
                    },
                    Some(PendingWb {
                        operand_index,
                        upc: None,
                        loc: Loc::Reg(rn),
                        size,
                    }),
                )
            }
            (Register, SpecFlavor::Address) => {
                self.c(r.at(0));
                (
                    EvaldOperand {
                        value: self.get_reg(rn, size),
                        loc: Loc::Reg(rn),
                        size,
                    },
                    None,
                )
            }
            // -- memory modes --
            (mode, SpecFlavor::Read) => {
                let a = addr.expect("memory mode has address");
                let data_off = match mode {
                    RegisterDeferred => 0,
                    Autoincrement => {
                        // read then increment-bookkeeping cycle
                        let v = self.read_data(r.at(0), a, size);
                        self.c(r.at(1));
                        return (
                            EvaldOperand {
                                value: v,
                                loc: Loc::Mem(a),
                                size,
                            },
                            None,
                        );
                    }
                    Autodecrement => {
                        self.c(r.at(0));
                        1
                    }
                    AutoincrementDeferred => 2,
                    ByteDisp | WordDisp | LongDisp | Absolute | PcRelative => {
                        self.c(r.at(0));
                        1
                    }
                    ByteDispDeferred | WordDispDeferred | LongDispDeferred | PcRelativeDeferred => {
                        2
                    }
                    _ => unreachable!(),
                };
                let v = self.read_data(r.at(data_off), a, size);
                (
                    EvaldOperand {
                        value: v,
                        loc: Loc::Mem(a),
                        size,
                    },
                    None,
                )
            }
            (mode, SpecFlavor::Write) => {
                let a = addr.expect("memory mode has address");
                let wb_off = r.len - 1;
                // Address-formation compute cycles not yet emitted.
                match mode {
                    RegisterDeferred => {}
                    Autoincrement | Autodecrement | ByteDisp | WordDisp | LongDisp | Absolute
                    | PcRelative => self.c(r.at(0)),
                    AutoincrementDeferred
                    | ByteDispDeferred
                    | WordDispDeferred
                    | LongDispDeferred
                    | PcRelativeDeferred => {}
                    _ => unreachable!(),
                }
                (
                    EvaldOperand {
                        value: 0,
                        loc: Loc::Mem(a),
                        size,
                    },
                    Some(PendingWb {
                        operand_index,
                        upc: Some(r.at(wb_off)),
                        loc: Loc::Mem(a),
                        size,
                    }),
                )
            }
            (mode, SpecFlavor::Modify) => {
                let a = addr.expect("memory mode has address");
                let wb_off = r.len - 1;
                let data_off = match mode {
                    RegisterDeferred => 0,
                    Autoincrement => {
                        let v = self.read_data(r.at(0), a, size);
                        self.c(r.at(1));
                        return (
                            EvaldOperand {
                                value: v,
                                loc: Loc::Mem(a),
                                size,
                            },
                            Some(PendingWb {
                                operand_index,
                                upc: Some(r.at(wb_off)),
                                loc: Loc::Mem(a),
                                size,
                            }),
                        );
                    }
                    Autodecrement | ByteDisp | WordDisp | LongDisp | Absolute | PcRelative => {
                        self.c(r.at(0));
                        1
                    }
                    AutoincrementDeferred
                    | ByteDispDeferred
                    | WordDispDeferred
                    | LongDispDeferred
                    | PcRelativeDeferred => 2,
                    _ => unreachable!(),
                };
                let v = self.read_data(r.at(data_off), a, size);
                (
                    EvaldOperand {
                        value: v,
                        loc: Loc::Mem(a),
                        size,
                    },
                    Some(PendingWb {
                        operand_index,
                        upc: Some(r.at(wb_off)),
                        loc: Loc::Mem(a),
                        size,
                    }),
                )
            }
            (mode, SpecFlavor::Address) => {
                let a = addr.expect("memory mode has address");
                match mode {
                    Autoincrement | Autodecrement => {
                        self.c(r.at(0));
                        self.c(r.at(1));
                    }
                    AutoincrementDeferred => self.c(r.at(1)),
                    ByteDispDeferred | WordDispDeferred | LongDispDeferred | PcRelativeDeferred => {
                    }
                    _ => self.c(r.at(0)),
                }
                (
                    EvaldOperand {
                        value: a.0 as u64,
                        loc: Loc::Mem(a),
                        size,
                    },
                    None,
                )
            }
        }
    }

    // ---- register helpers ----

    /// Read register `r` (pair for quad data).
    pub(crate) fn get_reg(&self, r: Reg, size: u32) -> u64 {
        let n = r.number() as usize;
        let lo = self.regs[n] as u64;
        if size > 4 {
            let hi = self.regs[(n + 1) & 15] as u64;
            lo | (hi << 32)
        } else {
            lo & mask(size)
        }
    }

    fn get_reg32(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Write register `r` (pair for quad data). Byte/word writes merge into
    /// the low bits, as on the VAX.
    pub(crate) fn set_reg(&mut self, r: Reg, size: u32, value: u64) {
        let n = r.number() as usize;
        if size > 4 {
            self.regs[n] = value as u32;
            self.regs[(n + 1) & 15] = (value >> 32) as u32;
        } else if size == 4 {
            self.regs[n] = value as u32;
        } else {
            let m = mask(size) as u32;
            self.regs[n] = (self.regs[n] & !m) | (value as u32 & m);
        }
    }

    fn bump_reg(&mut self, r: Reg, delta: i32) {
        let n = r.number() as usize;
        self.regs[n] = self.regs[n].wrapping_add(delta as u32);
    }
}

/// Low-`size`-bytes mask.
pub(crate) fn mask(size: u32) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * size)) - 1
    }
}
