//! Internal processor registers (the MTPR/MFPR register space).
//!
//! Only the registers the VMS-lite kernel needs are modelled. The numbers
//! follow the VAX architecture where one exists.

/// Internal processor register numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IprNum {
    /// Kernel stack pointer.
    Ksp = 0,
    /// P0 base register.
    P0br = 8,
    /// P0 length register.
    P0lr = 9,
    /// P1 base register.
    P1br = 10,
    /// P1 length register.
    P1lr = 11,
    /// System base register.
    Sbr = 12,
    /// System length register.
    Slr = 13,
    /// Process control block base (physical).
    Pcbb = 16,
    /// System control block base.
    Scbb = 17,
    /// Interrupt priority level.
    Ipl = 18,
    /// Software interrupt request register (write-only).
    Sirr = 20,
    /// Software interrupt summary register.
    Sisr = 21,
    /// Interval clock control/status.
    Iccs = 24,
    /// TB invalidate single (write VA).
    Tbis = 58,
    /// TB invalidate all.
    Tbia = 57,
}

impl IprNum {
    /// Decode an MTPR/MFPR register number.
    pub fn from_u32(n: u32) -> Option<IprNum> {
        Some(match n {
            0 => IprNum::Ksp,
            8 => IprNum::P0br,
            9 => IprNum::P0lr,
            10 => IprNum::P1br,
            11 => IprNum::P1lr,
            12 => IprNum::Sbr,
            13 => IprNum::Slr,
            16 => IprNum::Pcbb,
            17 => IprNum::Scbb,
            18 => IprNum::Ipl,
            20 => IprNum::Sirr,
            21 => IprNum::Sisr,
            24 => IprNum::Iccs,
            57 => IprNum::Tbia,
            58 => IprNum::Tbis,
            _ => return None,
        })
    }
}

/// The IPR file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ipr {
    /// Kernel stack pointer (saved while in user mode).
    pub ksp: u32,
    /// Process control block base (physical address).
    pub pcbb: u32,
    /// System control block base (system virtual address).
    pub scbb: u32,
    /// Software interrupt summary (bit n = pending level-n soft interrupt).
    pub sisr: u16,
    /// Interval clock control (modelled as a simple enable flag).
    pub iccs: u32,
}

impl Ipr {
    /// Highest pending software-interrupt level, if any.
    pub fn pending_soft(&self) -> Option<u8> {
        if self.sisr == 0 {
            None
        } else {
            Some(15 - self.sisr.leading_zeros() as u8)
        }
    }

    /// Request a software interrupt at `level` (MTPR to SIRR).
    pub fn request_soft(&mut self, level: u8) {
        if (1..=15).contains(&level) {
            self.sisr |= 1 << level;
        }
    }

    /// Clear a pending software interrupt at `level`.
    pub fn clear_soft(&mut self, level: u8) {
        self.sisr &= !(1 << level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_interrupt_priority() {
        let mut ipr = Ipr::default();
        assert_eq!(ipr.pending_soft(), None);
        ipr.request_soft(3);
        ipr.request_soft(7);
        assert_eq!(ipr.pending_soft(), Some(7));
        ipr.clear_soft(7);
        assert_eq!(ipr.pending_soft(), Some(3));
    }

    #[test]
    fn level_bounds() {
        let mut ipr = Ipr::default();
        ipr.request_soft(0);
        ipr.request_soft(16);
        assert_eq!(ipr.pending_soft(), None);
    }

    #[test]
    fn ipr_numbers() {
        assert_eq!(IprNum::from_u32(20), Some(IprNum::Sirr));
        assert_eq!(IprNum::from_u32(99), None);
    }
}
