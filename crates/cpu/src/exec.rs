//! Execute-phase microroutines: semantics plus cycle emission.
//!
//! Each opcode group shares a control-store *layout* (which offsets are
//! compute/read/write µops); each opcode owns its region with that layout.
//! Loops re-execute offsets, exactly as the 780's microcode loops re-execute
//! microinstructions — so histogram counts at loop addresses measure
//! data-dependent costs (the paper's "average character string is 36–44
//! characters" inference comes from such counts).

use upc_monitor::{MicroOp, Region};
use vax_arch::psl::AccessMode;
use vax_arch::{Instruction, Opcode, OpcodeGroup, Psl};
use vax_mem::trace::TraceEvent;
use vax_mem::VirtAddr;

use crate::ebox::{mask, Cpu, VEC_CHMK};
use crate::ipr::IprNum;
use crate::operand::EvaldOperand;

use MicroOp::{Compute as C, Read as R, Write as W};

/// Control-flow result of the execute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next instruction.
    Normal,
    /// Take the embedded branch displacement.
    TakenDisp,
    /// Jump to a computed target.
    Jump(u32),
    /// HALT executed.
    Halt,
}

/// Layout offsets for the SIMPLE group: `[entry, redirect, read, extra, write]`.
pub mod simple_off {
    /// The (single) execute cycle.
    pub const ENTRY: u16 = 0;
    /// IB-redirect cycle on taken branches.
    pub const REDIRECT: u16 = 1;
    /// Data read (case tables, RSB return address).
    pub const READ: u16 = 2;
    /// Additional computation.
    pub const EXTRA: u16 = 3;
    /// Data write (BSB/JSB return push, PUSHL).
    pub const WRITE: u16 = 4;
}

/// Layout offsets for the FIELD group.
pub mod field_off {
    /// First execute cycle.
    pub const ENTRY: u16 = 0;
    /// Field position/size arithmetic.
    pub const CALC1: u16 = 1;
    /// Field position/size arithmetic.
    pub const CALC2: u16 = 2;
    /// Extract/merge computation.
    pub const MERGE: u16 = 3;
    /// Field longword read.
    pub const READ: u16 = 4;
    /// Post-read computation.
    pub const POST: u16 = 5;
    /// Field longword write (INSV, BBSS and friends).
    pub const WRITE: u16 = 6;
    /// IB-redirect cycle for taken bit branches.
    pub const REDIRECT: u16 = 7;
}

/// Layout offsets for the CALL/RET group.
pub mod callret_off {
    /// Setup cycles 0..8.
    pub const SETUP: u16 = 0;
    /// Register/frame push.
    pub const PUSH: u16 = 8;
    /// Inter-push gap cycle (the microcode spaces pushes to soften write
    /// stalls).
    pub const PUSH_GAP: u16 = 9;
    /// Frame pop / entry-mask read.
    pub const POP: u16 = 10;
    /// Inter-pop gap cycle.
    pub const POP_GAP: u16 = 11;
    /// Finish cycles 12..16.
    pub const FINISH: u16 = 12;
}

/// Layout offsets for the SYSTEM group.
pub mod system_off {
    /// Setup cycles 0..10.
    pub const SETUP: u16 = 0;
    /// Data read.
    pub const READ: u16 = 10;
    /// Data write.
    pub const WRITE: u16 = 11;
    /// Finish cycles 12..14.
    pub const FINISH: u16 = 12;
}

/// Layout offsets for the CHARACTER group.
pub mod char_off {
    /// Setup cycles 0..8.
    pub const SETUP: u16 = 0;
    /// Source longword read.
    pub const READ: u16 = 8;
    /// Loop computation.
    pub const LOOP1: u16 = 9;
    /// Loop computation.
    pub const LOOP2: u16 = 10;
    /// Destination longword write.
    pub const WRITE: u16 = 11;
    /// Loop computation (the microcode writes only every sixth cycle to
    /// avoid write stalls — paper §4.3).
    pub const LOOP3: u16 = 12;
    /// Loop computation.
    pub const LOOP4: u16 = 13;
    /// Finish cycle.
    pub const FINISH: u16 = 14;
}

/// Layout offsets for the DECIMAL group.
pub mod decimal_off {
    /// Setup cycles 0..10.
    pub const SETUP: u16 = 0;
    /// Packed-operand longword read.
    pub const READ: u16 = 10;
    /// Digit-loop computation.
    pub const DIGIT1: u16 = 11;
    /// Digit-loop computation.
    pub const DIGIT2: u16 = 12;
    /// Digit-loop computation.
    pub const DIGIT3: u16 = 13;
    /// Result longword write.
    pub const WRITE: u16 = 14;
    /// Finish cycle.
    pub const FINISH: u16 = 15;
}

static SIMPLE_LAYOUT: &[MicroOp] = &[C, C, R, C, W];
static FIELD_LAYOUT: &[MicroOp] = &[C, C, C, C, R, C, W, C];
static FLOAT_LAYOUT: &[MicroOp] = &[C; 24];
static CALLRET_LAYOUT: &[MicroOp] = &[C, C, C, C, C, C, C, C, W, C, R, C, C, C, C, C];
static SYSTEM_LAYOUT: &[MicroOp] = &[C, C, C, C, C, C, C, C, C, C, R, W, C, C];
static CHAR_LAYOUT: &[MicroOp] = &[C, C, C, C, C, C, C, C, R, C, C, W, C, C, C];
static DECIMAL_LAYOUT: &[MicroOp] = &[C, C, C, C, C, C, C, C, C, C, R, C, C, C, W, C];

/// The shared execute-region layout of an opcode group.
pub fn group_layout(group: OpcodeGroup) -> &'static [MicroOp] {
    match group {
        OpcodeGroup::Simple => SIMPLE_LAYOUT,
        OpcodeGroup::Field => FIELD_LAYOUT,
        OpcodeGroup::Float => FLOAT_LAYOUT,
        OpcodeGroup::CallRet => CALLRET_LAYOUT,
        OpcodeGroup::System => SYSTEM_LAYOUT,
        OpcodeGroup::Character => CHAR_LAYOUT,
        OpcodeGroup::Decimal => DECIMAL_LAYOUT,
    }
}

/// Run the execute phase of `insn`. `ops` holds the evaluated operands;
/// results are stored back into `ops[i].value` for deferred write-back.
pub(crate) fn execute(
    cpu: &mut Cpu,
    insn: &Instruction,
    ops: &mut [EvaldOperand],
    fused: bool,
) -> Flow {
    let r = cpu.cs.exec_region(insn.opcode);
    match insn.opcode.group() {
        OpcodeGroup::Simple => exec_simple(cpu, r, insn, ops, fused),
        OpcodeGroup::Field => exec_field(cpu, r, insn, ops),
        OpcodeGroup::Float => exec_float(cpu, r, insn, ops),
        OpcodeGroup::CallRet => exec_callret(cpu, r, insn, ops),
        OpcodeGroup::System => exec_system(cpu, r, insn, ops),
        OpcodeGroup::Character => exec_character(cpu, r, insn, ops),
        OpcodeGroup::Decimal => exec_decimal(cpu, r, insn, ops),
    }
}

// ---- condition-code helpers ----

fn sign(v: u64, size: u32) -> bool {
    v & (1 << (8 * size - 1)) != 0
}

fn sext(v: u64, size: u32) -> i64 {
    let shift = 64 - 8 * size;
    ((v << shift) as i64) >> shift
}

fn cc_nz(psl: &mut Psl, v: u64, size: u32) {
    psl.n = sign(v & mask(size), size);
    psl.z = v & mask(size) == 0;
    psl.v = false;
}

fn cc_add(psl: &mut Psl, a: u64, b: u64, r: u64, size: u32) {
    let m = mask(size);
    psl.n = sign(r & m, size);
    psl.z = r & m == 0;
    psl.v = sign(a, size) == sign(b, size) && sign(r & m, size) != sign(a, size);
    psl.c = (a & m) as u128 + (b & m) as u128 > m as u128;
}

fn cc_sub(psl: &mut Psl, a: u64, b: u64, r: u64, size: u32) {
    // r = b - a (VAX SUBx subtracts operand 1 from operand 2).
    let m = mask(size);
    psl.n = sign(r & m, size);
    psl.z = r & m == 0;
    psl.v = sign(a, size) != sign(b, size) && sign(r & m, size) == sign(a, size);
    psl.c = (b & m) < (a & m);
}

fn cc_cmp(psl: &mut Psl, a: u64, b: u64, size: u32) {
    // CMP a, b: condition codes reflect a - b.
    let sa = sext(a, size);
    let sb = sext(b, size);
    psl.n = sa < sb;
    psl.z = sa == sb;
    psl.v = false;
    psl.c = (a & mask(size)) < (b & mask(size));
}

fn branch_condition(psl: &Psl, op: Opcode) -> bool {
    match op {
        Opcode::Bneq => !psl.z,
        Opcode::Beql => psl.z,
        Opcode::Bgtr => !(psl.n || psl.z),
        Opcode::Bleq => psl.n || psl.z,
        Opcode::Bgeq => !psl.n,
        Opcode::Blss => psl.n,
        Opcode::Bgtru => !(psl.c || psl.z),
        Opcode::Blequ => psl.c || psl.z,
        Opcode::Bvc => !psl.v,
        Opcode::Bvs => psl.v,
        Opcode::Bcc => !psl.c,
        Opcode::Bcs => psl.c,
        Opcode::Brb | Opcode::Brw => true,
        _ => unreachable!("not a condition branch: {op}"),
    }
}

// ---- SIMPLE ----

fn exec_simple(
    cpu: &mut Cpu,
    r: Region,
    insn: &Instruction,
    ops: &mut [EvaldOperand],
    fused: bool,
) -> Flow {
    use simple_off::*;
    let op = insn.opcode;
    // The one execute cycle (unless fused into the final specifier cycle —
    // the 780's literal/register operand optimization).
    let entry = |cpu: &mut Cpu| {
        if !fused {
            cpu.c(r.at(ENTRY));
        }
    };
    match op {
        // Moves.
        Opcode::Movb | Opcode::Movw | Opcode::Movl | Opcode::Movq => {
            entry(cpu);
            let v = ops[0].value;
            cc_nz(&mut cpu.psl, v, ops[0].size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Movab | Opcode::Movaw | Opcode::Moval | Opcode::Movaq => {
            entry(cpu);
            let v = ops[0].value;
            cc_nz(&mut cpu.psl, v, 4);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Pushl | Opcode::Pushab | Opcode::Pushaw | Opcode::Pushal | Opcode::Pushaq => {
            entry(cpu);
            let v = ops[0].value as u32;
            cc_nz(&mut cpu.psl, v as u64, 4);
            let sp = cpu.regs[14].wrapping_sub(4);
            cpu.regs[14] = sp;
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, v as u64);
            Flow::Normal
        }
        Opcode::Clrb | Opcode::Clrw | Opcode::Clrl | Opcode::Clrq => {
            entry(cpu);
            cc_nz(&mut cpu.psl, 0, ops[0].size);
            cpu.psl.z = true;
            ops[0].value = 0;
            Flow::Normal
        }
        Opcode::Mnegb | Opcode::Mnegw | Opcode::Mnegl => {
            entry(cpu);
            let size = ops[0].size;
            let v = (ops[0].value as i64).wrapping_neg() as u64 & mask(size);
            cc_sub(&mut cpu.psl, ops[0].value, 0, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Mcomb | Opcode::Mcomw | Opcode::Mcoml => {
            entry(cpu);
            let size = ops[0].size;
            let v = !ops[0].value & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Movzbw | Opcode::Movzbl | Opcode::Movzwl => {
            entry(cpu);
            let v = ops[0].value & mask(ops[0].size);
            cc_nz(&mut cpu.psl, v, ops[1].size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Cvtbw
        | Opcode::Cvtbl
        | Opcode::Cvtwb
        | Opcode::Cvtwl
        | Opcode::Cvtlb
        | Opcode::Cvtlw => {
            entry(cpu);
            let v = sext(ops[0].value, ops[0].size) as u64 & mask(ops[1].size);
            cc_nz(&mut cpu.psl, v, ops[1].size);
            ops[1].value = v;
            Flow::Normal
        }
        // Integer add/sub.
        Opcode::Addb2 | Opcode::Addw2 | Opcode::Addl2 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[0].value.wrapping_add(ops[1].value) & mask(size);
            cc_add(&mut cpu.psl, ops[0].value, ops[1].value, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Addb3 | Opcode::Addw3 | Opcode::Addl3 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[0].value.wrapping_add(ops[1].value) & mask(size);
            cc_add(&mut cpu.psl, ops[0].value, ops[1].value, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        Opcode::Subb2 | Opcode::Subw2 | Opcode::Subl2 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[1].value.wrapping_sub(ops[0].value) & mask(size);
            cc_sub(&mut cpu.psl, ops[0].value, ops[1].value, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Subb3 | Opcode::Subw3 | Opcode::Subl3 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[1].value.wrapping_sub(ops[0].value) & mask(size);
            cc_sub(&mut cpu.psl, ops[0].value, ops[1].value, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        Opcode::Incb | Opcode::Incw | Opcode::Incl => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[0].value.wrapping_add(1) & mask(size);
            cc_add(&mut cpu.psl, 1, ops[0].value, v, size);
            ops[0].value = v;
            Flow::Normal
        }
        Opcode::Decb | Opcode::Decw | Opcode::Decl => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[0].value.wrapping_sub(1) & mask(size);
            cc_sub(&mut cpu.psl, 1, ops[0].value, v, size);
            ops[0].value = v;
            Flow::Normal
        }
        Opcode::Ashl | Opcode::Ashq => {
            entry(cpu);
            cpu.c(r.at(EXTRA));
            let cnt = sext(ops[0].value, 1);
            let size = ops[1].size;
            let src = sext(ops[1].value, size);
            let v = if cnt >= 0 {
                (src as u64).wrapping_shl(cnt.min(63) as u32)
            } else {
                (src >> (-cnt).min(63)) as u64
            } & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        Opcode::Rotl => {
            entry(cpu);
            cpu.c(r.at(EXTRA));
            let cnt = (sext(ops[0].value, 1).rem_euclid(32)) as u32;
            let v = (ops[1].value as u32).rotate_left(cnt) as u64;
            cc_nz(&mut cpu.psl, v, 4);
            ops[2].value = v;
            Flow::Normal
        }
        // Boolean.
        Opcode::Bicb2 | Opcode::Bicw2 | Opcode::Bicl2 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[1].value & !ops[0].value & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Bicb3 | Opcode::Bicw3 | Opcode::Bicl3 => {
            entry(cpu);
            let size = ops[0].size;
            let v = ops[1].value & !ops[0].value & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        Opcode::Bisb2 | Opcode::Bisw2 | Opcode::Bisl2 => {
            entry(cpu);
            let size = ops[0].size;
            let v = (ops[1].value | ops[0].value) & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Bisb3 | Opcode::Bisw3 | Opcode::Bisl3 => {
            entry(cpu);
            let size = ops[0].size;
            let v = (ops[1].value | ops[0].value) & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        Opcode::Xorb2 | Opcode::Xorw2 | Opcode::Xorl2 => {
            entry(cpu);
            let size = ops[0].size;
            let v = (ops[1].value ^ ops[0].value) & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[1].value = v;
            Flow::Normal
        }
        Opcode::Xorb3 | Opcode::Xorw3 | Opcode::Xorl3 => {
            entry(cpu);
            let size = ops[0].size;
            let v = (ops[1].value ^ ops[0].value) & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[2].value = v;
            Flow::Normal
        }
        // Test / compare / bit test.
        Opcode::Tstb | Opcode::Tstw | Opcode::Tstl => {
            entry(cpu);
            cc_nz(&mut cpu.psl, ops[0].value, ops[0].size);
            cpu.psl.c = false;
            Flow::Normal
        }
        Opcode::Cmpb | Opcode::Cmpw | Opcode::Cmpl => {
            entry(cpu);
            cc_cmp(&mut cpu.psl, ops[0].value, ops[1].value, ops[0].size);
            Flow::Normal
        }
        Opcode::Bitb | Opcode::Bitw | Opcode::Bitl => {
            entry(cpu);
            let v = ops[0].value & ops[1].value;
            cc_nz(&mut cpu.psl, v, ops[0].size);
            Flow::Normal
        }
        // Conditional and unconditional displacement branches.
        Opcode::Bneq
        | Opcode::Beql
        | Opcode::Bgtr
        | Opcode::Bleq
        | Opcode::Bgeq
        | Opcode::Blss
        | Opcode::Bgtru
        | Opcode::Blequ
        | Opcode::Bvc
        | Opcode::Bvs
        | Opcode::Bcc
        | Opcode::Bcs
        | Opcode::Brb
        | Opcode::Brw => {
            cpu.c(r.at(ENTRY));
            if branch_condition(&cpu.psl, op) {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        Opcode::Jmp => {
            cpu.c(r.at(ENTRY));
            cpu.c(r.at(REDIRECT));
            Flow::Jump(ops[0].value as u32)
        }
        // Low-bit tests.
        Opcode::Blbs | Opcode::Blbc => {
            cpu.c(r.at(ENTRY));
            let bit = ops[0].value & 1 != 0;
            let taken = if op == Opcode::Blbs { bit } else { !bit };
            if taken {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        // Loop branches.
        Opcode::Sobgeq | Opcode::Sobgtr => {
            cpu.c(r.at(ENTRY));
            cpu.c(r.at(EXTRA));
            let v = (ops[0].as_i32()).wrapping_sub(1);
            ops[0].value = v as u32 as u64;
            cc_nz(&mut cpu.psl, v as u32 as u64, 4);
            let taken = if op == Opcode::Sobgeq { v >= 0 } else { v > 0 };
            if taken {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        Opcode::Aoblss | Opcode::Aobleq => {
            cpu.c(r.at(ENTRY));
            cpu.c(r.at(EXTRA));
            let limit = ops[0].as_i32();
            let v = ops[1].as_i32().wrapping_add(1);
            ops[1].value = v as u32 as u64;
            cc_nz(&mut cpu.psl, v as u32 as u64, 4);
            let taken = if op == Opcode::Aoblss {
                v < limit
            } else {
                v <= limit
            };
            if taken {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        Opcode::Acbb | Opcode::Acbw | Opcode::Acbl => {
            cpu.c(r.at(ENTRY));
            cpu.c(r.at(EXTRA));
            let size = ops[0].size;
            let limit = sext(ops[0].value, size);
            let add = sext(ops[1].value, size);
            let v = sext(ops[2].value, size).wrapping_add(add);
            ops[2].value = v as u64 & mask(size);
            cc_nz(&mut cpu.psl, v as u64, size);
            let taken = if add >= 0 { v <= limit } else { v >= limit };
            if taken {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        // Case branches. The word displacement table follows the
        // instruction in the I-stream.
        Opcode::Caseb | Opcode::Casew | Opcode::Casel => {
            cpu.c(r.at(ENTRY));
            let size = ops[0].size;
            let sel = ops[0].value & mask(size);
            let base = ops[1].value & mask(size);
            let limit = ops[2].value & mask(size);
            let table = cpu.regs[15]; // instruction end
            let i = sel.wrapping_sub(base) & mask(size);
            let target = if i <= limit {
                let disp = cpu.read_data(r.at(READ), VirtAddr(table.wrapping_add(2 * i as u32)), 2);
                table.wrapping_add(sext(disp, 2) as u32)
            } else {
                table.wrapping_add(2 * (limit as u32 + 1))
            };
            cpu.c(r.at(REDIRECT));
            Flow::Jump(target)
        }
        // Subroutine linkage (simple: just push/pop the PC).
        Opcode::Bsbb | Opcode::Bsbw => {
            cpu.c(r.at(ENTRY));
            let sp = cpu.regs[14].wrapping_sub(4);
            cpu.regs[14] = sp;
            let ret = cpu.regs[15];
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, ret as u64);
            cpu.c(r.at(REDIRECT));
            Flow::TakenDisp
        }
        Opcode::Jsb => {
            cpu.c(r.at(ENTRY));
            let sp = cpu.regs[14].wrapping_sub(4);
            cpu.regs[14] = sp;
            let ret = cpu.regs[15];
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, ret as u64);
            cpu.c(r.at(REDIRECT));
            Flow::Jump(ops[0].value as u32)
        }
        Opcode::Rsb => {
            cpu.c(r.at(ENTRY));
            let sp = cpu.regs[14];
            let ret = cpu.read_data(r.at(READ), VirtAddr(sp), 4) as u32;
            cpu.regs[14] = sp.wrapping_add(4);
            cpu.c(r.at(REDIRECT));
            Flow::Jump(ret)
        }
        other => unreachable!("{other} is not SIMPLE"),
    }
}

// ---- FIELD ----

/// Fetch a bit field of `size` bits at bit `pos` relative to `base`.
fn field_fetch(
    cpu: &mut Cpu,
    r: Region,
    pos: i64,
    size: u32,
    base: &EvaldOperand,
) -> (u64, Option<VirtAddr>) {
    use field_off::*;
    if size == 0 {
        return (0, None);
    }
    match base.loc {
        crate::operand::Loc::Reg(reg) => {
            cpu.c(r.at(CALC1));
            let v = cpu.get_reg(reg, 4) >> (pos & 31);
            (v & mask_bits(size), None)
        }
        _ => {
            cpu.c(r.at(CALC1));
            cpu.c(r.at(CALC2));
            let byte = VirtAddr((base.value as u32).wrapping_add((pos >> 3) as u32));
            let lw = VirtAddr(byte.0 & !3);
            let word = cpu.read_data(r.at(READ), lw, 4);
            let bit_in_lw = ((base.value as u32 as u64 * 8).wrapping_add(pos as u64) & 31) as u32;
            // Fields crossing the longword need the next one too.
            let v = if bit_in_lw + size > 32 {
                let hi = cpu.read_data(r.at(READ), lw.add(4), 4);
                (word | (hi << 32)) >> bit_in_lw
            } else {
                word >> bit_in_lw
            };
            (v & mask_bits(size), Some(lw))
        }
    }
}

fn mask_bits(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn exec_field(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    use field_off::*;
    let op = insn.opcode;
    cpu.c(r.at(ENTRY));
    match op {
        Opcode::Extv | Opcode::Extzv => {
            let pos = sext(ops[0].value, 4);
            let size = (ops[1].value & 0xFF) as u32;
            let (raw, _) = field_fetch(cpu, r, pos, size, &ops[2]);
            cpu.c_span(r, CALC1, 3);
            cpu.c(r.at(POST));
            cpu.c(r.at(POST));
            let v = if op == Opcode::Extv && size > 0 {
                sext(raw, 4).wrapping_shl(32 - size.min(32)) as u64 >> (32 - size.min(32))
                    | if raw & (1 << (size.saturating_sub(1))) != 0 && size < 32 {
                        !mask_bits(size) & mask(4)
                    } else {
                        0
                    }
            } else {
                raw
            };
            cc_nz(&mut cpu.psl, v, 4);
            ops[3].value = v & mask(4);
            Flow::Normal
        }
        Opcode::Cmpv | Opcode::Cmpzv => {
            let pos = sext(ops[0].value, 4);
            let size = (ops[1].value & 0xFF) as u32;
            let (raw, _) = field_fetch(cpu, r, pos, size, &ops[2]);
            cpu.c_span(r, CALC1, 3);
            cpu.c(r.at(POST));
            cc_cmp(&mut cpu.psl, raw, ops[3].value, 4);
            Flow::Normal
        }
        Opcode::Ffs | Opcode::Ffc => {
            let pos = sext(ops[0].value, 4);
            let size = (ops[1].value & 0xFF) as u32;
            let (raw, _) = field_fetch(cpu, r, pos, size, &ops[2]);
            cpu.c_span(r, CALC1, 3);
            cpu.c(r.at(POST));
            cpu.c(r.at(MERGE));
            let scan = if op == Opcode::Ffs {
                raw
            } else {
                !raw & mask_bits(size)
            };
            let found = scan.trailing_zeros().min(size);
            cpu.psl.z = found == size;
            ops[3].value = (pos as u64).wrapping_add(found as u64) & mask(4);
            Flow::Normal
        }
        Opcode::Insv => {
            let src = ops[0].value;
            let pos = sext(ops[1].value, 4);
            let size = (ops[2].value & 0xFF) as u32;
            if size == 0 {
                return Flow::Normal;
            }
            match ops[3].loc {
                crate::operand::Loc::Reg(reg) => {
                    cpu.c_span(r, CALC1, 3);
                    cpu.c(r.at(MERGE));
                    let shift = (pos & 31) as u32;
                    let old = cpu.get_reg(reg, 4);
                    let m = mask_bits(size) << shift;
                    let v = (old & !m) | ((src << shift) & m);
                    cpu.set_reg(reg, 4, v & mask(4));
                }
                _ => {
                    cpu.c_span(r, CALC1, 3);
                    let byte = VirtAddr((ops[3].value as u32).wrapping_add((pos >> 3) as u32));
                    let lw = VirtAddr(byte.0 & !3);
                    let old = cpu.read_data(r.at(READ), lw, 4);
                    cpu.c(r.at(MERGE));
                    cpu.c(r.at(MERGE));
                    let shift = ((ops[3].value * 8).wrapping_add(pos as u64) & 31) as u32;
                    if shift + size <= 32 {
                        let m = mask_bits(size) << shift;
                        let v = (old & !m) | ((src << shift) & m);
                        cpu.write_data(r.at(WRITE), lw, 4, v & mask(4));
                    } else {
                        let hi_old = cpu.read_data(r.at(READ), lw.add(4), 4);
                        let both = old | (hi_old << 32);
                        let m = mask_bits(size) << shift;
                        let v = (both & !m) | ((src << shift) & m);
                        cpu.write_data(r.at(WRITE), lw, 4, v & mask(4));
                        cpu.write_data(r.at(WRITE), lw.add(4), 4, (v >> 32) & mask(4));
                    }
                }
            }
            Flow::Normal
        }
        // Bit branches (single-bit fields).
        Opcode::Bbs
        | Opcode::Bbc
        | Opcode::Bbss
        | Opcode::Bbcs
        | Opcode::Bbsc
        | Opcode::Bbcc
        | Opcode::Bbssi
        | Opcode::Bbcci => {
            let pos = sext(ops[0].value, 4);
            cpu.c(r.at(CALC2));
            let (bitval, written) = match ops[1].loc {
                crate::operand::Loc::Reg(reg) => {
                    cpu.c(r.at(CALC1));
                    let old = cpu.get_reg(reg, 4);
                    let bit = (old >> (pos & 31)) & 1;
                    let newbit = match op {
                        Opcode::Bbss | Opcode::Bbcs | Opcode::Bbssi => Some(1u64),
                        Opcode::Bbsc | Opcode::Bbcc | Opcode::Bbcci => Some(0),
                        _ => None,
                    };
                    if let Some(nb) = newbit {
                        cpu.c(r.at(MERGE));
                        let m = 1u64 << (pos & 31);
                        let v = (old & !m) | (nb << (pos & 31));
                        cpu.set_reg(reg, 4, v & mask(4));
                    }
                    (bit, false)
                }
                _ => {
                    cpu.c(r.at(CALC1));
                    let byte = VirtAddr((ops[1].value as u32).wrapping_add((pos >> 3) as u32));
                    let old = cpu.read_data(r.at(READ), byte, 1);
                    let bit = (old >> (pos & 7)) & 1;
                    let newbit = match op {
                        Opcode::Bbss | Opcode::Bbcs | Opcode::Bbssi => Some(1u64),
                        Opcode::Bbsc | Opcode::Bbcc | Opcode::Bbcci => Some(0),
                        _ => None,
                    };
                    if let Some(nb) = newbit {
                        cpu.c(r.at(MERGE));
                        let m = 1u64 << (pos & 7);
                        let v = (old & !m) | (nb << (pos & 7));
                        cpu.write_data(r.at(WRITE), byte, 1, v);
                        (bit, true)
                    } else {
                        (bit, false)
                    }
                }
            };
            let _ = written;
            let on_set = matches!(
                op,
                Opcode::Bbs | Opcode::Bbss | Opcode::Bbsc | Opcode::Bbssi
            );
            let taken = (bitval != 0) == on_set;
            if taken {
                cpu.c(r.at(REDIRECT));
                Flow::TakenDisp
            } else {
                Flow::Normal
            }
        }
        other => unreachable!("{other} is not FIELD"),
    }
}

// ---- FLOAT ----

fn f32_of(v: u64) -> f32 {
    f32::from_bits(v as u32)
}
fn f64_of(v: u64) -> f64 {
    f64::from_bits(v)
}

fn float_cycles(op: Opcode) -> u16 {
    match op {
        Opcode::Movf | Opcode::Tstf | Opcode::Mnegf | Opcode::Movd | Opcode::Tstd => 2,
        Opcode::Cmpf | Opcode::Cmpd => 4,
        Opcode::Addf2 | Opcode::Addf3 | Opcode::Subf2 | Opcode::Subf3 => 6,
        Opcode::Addd2 | Opcode::Addd3 | Opcode::Subd2 | Opcode::Subd3 => 8,
        Opcode::Mulf2 | Opcode::Mulf3 => 8,
        Opcode::Muld2 | Opcode::Muld3 => 13,
        Opcode::Divf2 | Opcode::Divf3 => 15,
        Opcode::Divd2 | Opcode::Divd3 => 23,
        Opcode::Cvtfl | Opcode::Cvtlf | Opcode::Cvtfd | Opcode::Cvtdl | Opcode::Cvtld => 5,
        Opcode::Mulb2 | Opcode::Mulb3 | Opcode::Mulw2 | Opcode::Mulw3 => 10,
        Opcode::Mull2 | Opcode::Mull3 => 13,
        Opcode::Divb2 | Opcode::Divb3 | Opcode::Divw2 | Opcode::Divw3 => 20,
        Opcode::Divl2 | Opcode::Divl3 => 24,
        Opcode::Emul => 14,
        Opcode::Ediv => 26,
        _ => 5,
    }
}

fn exec_float(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    let op = insn.opcode;
    cpu.c_span(r, 0, float_cycles(op));
    let dst = ops.len() - 1;
    match op {
        // F_floating arithmetic (2- and 3-operand forms share shape: the
        // destination is the last operand).
        Opcode::Addf2 | Opcode::Addf3 => {
            let v = f32_of(ops[0].value) + f32_of(ops[1].value);
            ops[dst].value = v.to_bits() as u64;
            set_float_cc(&mut cpu.psl, v as f64);
        }
        Opcode::Subf2 | Opcode::Subf3 => {
            let v = f32_of(ops[1].value) - f32_of(ops[0].value);
            ops[dst].value = v.to_bits() as u64;
            set_float_cc(&mut cpu.psl, v as f64);
        }
        Opcode::Mulf2 | Opcode::Mulf3 => {
            let v = f32_of(ops[0].value) * f32_of(ops[1].value);
            ops[dst].value = v.to_bits() as u64;
            set_float_cc(&mut cpu.psl, v as f64);
        }
        Opcode::Divf2 | Opcode::Divf3 => {
            let d = f32_of(ops[0].value);
            let v = if d == 0.0 {
                0.0
            } else {
                f32_of(ops[1].value) / d
            };
            ops[dst].value = v.to_bits() as u64;
            set_float_cc(&mut cpu.psl, v as f64);
        }
        Opcode::Addd2 | Opcode::Addd3 => {
            let v = f64_of(ops[0].value) + f64_of(ops[1].value);
            ops[dst].value = v.to_bits();
            set_float_cc(&mut cpu.psl, v);
        }
        Opcode::Subd2 | Opcode::Subd3 => {
            let v = f64_of(ops[1].value) - f64_of(ops[0].value);
            ops[dst].value = v.to_bits();
            set_float_cc(&mut cpu.psl, v);
        }
        Opcode::Muld2 | Opcode::Muld3 => {
            let v = f64_of(ops[0].value) * f64_of(ops[1].value);
            ops[dst].value = v.to_bits();
            set_float_cc(&mut cpu.psl, v);
        }
        Opcode::Divd2 | Opcode::Divd3 => {
            let d = f64_of(ops[0].value);
            let v = if d == 0.0 {
                0.0
            } else {
                f64_of(ops[1].value) / d
            };
            ops[dst].value = v.to_bits();
            set_float_cc(&mut cpu.psl, v);
        }
        Opcode::Movf | Opcode::Movd => {
            ops[dst].value = ops[0].value;
            set_float_cc(&mut cpu.psl, f64_of(ops[0].value));
        }
        Opcode::Mnegf => {
            let v = -f32_of(ops[0].value);
            ops[dst].value = v.to_bits() as u64;
            set_float_cc(&mut cpu.psl, v as f64);
        }
        Opcode::Tstf => set_float_cc(&mut cpu.psl, f32_of(ops[0].value) as f64),
        Opcode::Tstd => set_float_cc(&mut cpu.psl, f64_of(ops[0].value)),
        Opcode::Cmpf => {
            let (a, b) = (f32_of(ops[0].value), f32_of(ops[1].value));
            cpu.psl.n = a < b;
            cpu.psl.z = a == b;
            cpu.psl.v = false;
            cpu.psl.c = false;
        }
        Opcode::Cmpd => {
            let (a, b) = (f64_of(ops[0].value), f64_of(ops[1].value));
            cpu.psl.n = a < b;
            cpu.psl.z = a == b;
            cpu.psl.v = false;
            cpu.psl.c = false;
        }
        Opcode::Cvtfl => {
            let v = f32_of(ops[0].value) as i64 as u64 & mask(4);
            cc_nz(&mut cpu.psl, v, 4);
            ops[dst].value = v;
        }
        Opcode::Cvtdl => {
            let v = f64_of(ops[0].value) as i64 as u64 & mask(4);
            cc_nz(&mut cpu.psl, v, 4);
            ops[dst].value = v;
        }
        Opcode::Cvtlf => {
            let v = sext(ops[0].value, 4) as f32;
            set_float_cc(&mut cpu.psl, v as f64);
            ops[dst].value = v.to_bits() as u64;
        }
        Opcode::Cvtld => {
            let v = sext(ops[0].value, 4) as f64;
            set_float_cc(&mut cpu.psl, v);
            ops[dst].value = v.to_bits();
        }
        Opcode::Cvtfd => {
            let v = f32_of(ops[0].value) as f64;
            set_float_cc(&mut cpu.psl, v);
            ops[dst].value = v.to_bits();
        }
        // Integer multiply/divide (FLOAT group per Table 1).
        Opcode::Mulb2 | Opcode::Mulw2 | Opcode::Mull2 => {
            let size = ops[0].size;
            let v = (sext(ops[0].value, size).wrapping_mul(sext(ops[1].value, size))) as u64
                & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[dst].value = v;
        }
        Opcode::Mulb3 | Opcode::Mulw3 | Opcode::Mull3 => {
            let size = ops[0].size;
            let v = (sext(ops[0].value, size).wrapping_mul(sext(ops[1].value, size))) as u64
                & mask(size);
            cc_nz(&mut cpu.psl, v, size);
            ops[dst].value = v;
        }
        Opcode::Divb2
        | Opcode::Divw2
        | Opcode::Divl2
        | Opcode::Divb3
        | Opcode::Divw3
        | Opcode::Divl3 => {
            let size = ops[0].size;
            let d = sext(ops[0].value, size);
            let v = if d == 0 {
                cpu.psl.v = true;
                ops[1].value
            } else {
                (sext(ops[1].value, size).wrapping_div(d)) as u64 & mask(size)
            };
            cc_nz(&mut cpu.psl, v, size);
            ops[dst].value = v;
        }
        Opcode::Emul => {
            let v = (sext(ops[0].value, 4) as i128 * sext(ops[1].value, 4) as i128
                + sext(ops[2].value, 4) as i128) as u64;
            cc_nz(&mut cpu.psl, v, 8);
            ops[dst].value = v;
        }
        Opcode::Ediv => {
            let d = sext(ops[0].value, 4);
            let dividend = ops[1].value as i64;
            let (q, rem) = if d == 0 {
                cpu.psl.v = true;
                (0i64, 0i64)
            } else {
                (dividend.wrapping_div(d), dividend.wrapping_rem(d))
            };
            ops[2].value = q as u64 & mask(4);
            ops[3].value = rem as u64 & mask(4);
            cc_nz(&mut cpu.psl, q as u64 & mask(4), 4);
        }
        other => unreachable!("{other} is not FLOAT"),
    }
    Flow::Normal
}

fn set_float_cc(psl: &mut Psl, v: f64) {
    psl.n = v < 0.0;
    psl.z = v == 0.0;
    psl.v = false;
    psl.c = false;
}

// ---- CALL/RET ----

/// The CALLS flag bit in our saved mask/PSW longword.
const FRAME_CALLS: u32 = 1 << 29;

fn push32(cpu: &mut Cpu, r: Region, gaps: u16, value: u32) {
    use callret_off::*;
    let sp = cpu.regs[14].wrapping_sub(4);
    cpu.regs[14] = sp;
    cpu.write_data(r.at(PUSH), VirtAddr(sp), 4, value as u64);
    for _ in 0..gaps {
        cpu.c(r.at(PUSH_GAP));
    }
}

fn pop32(cpu: &mut Cpu, r: Region, gaps: u16) -> u32 {
    use callret_off::*;
    let sp = cpu.regs[14];
    let v = cpu.read_data(r.at(POP), VirtAddr(sp), 4) as u32;
    cpu.regs[14] = sp.wrapping_add(4);
    for _ in 0..gaps {
        cpu.c(r.at(POP_GAP));
    }
    v
}

fn exec_callret(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    use callret_off::*;
    match insn.opcode {
        Opcode::Calls | Opcode::Callg => {
            // Frame (ascending from the new FP, as on the real VAX):
            //   [handler=0][mask|flags][AP][FP][PC][saved regs r_lo..r_hi]
            //   [numarg][args...]           (numarg/args for CALLS only)
            let is_calls = insn.opcode == Opcode::Calls;
            let dst = ops[1].value as u32;
            cpu.c_span(r, SETUP, 8);
            let entry_mask = cpu.read_data(r.at(POP), VirtAddr(dst), 2) as u32 & 0x0FFF;
            let numarg = if is_calls {
                ops[0].value as u32 & 0xFF
            } else {
                0
            };
            if is_calls {
                push32(cpu, r, 3, numarg);
            }
            let ap_val = if is_calls {
                cpu.regs[14]
            } else {
                ops[0].value as u32
            };
            // Saved registers, highest first so they end up ascending.
            for reg in (0..12u8).rev() {
                if entry_mask & (1 << reg) != 0 {
                    let v = cpu.regs[reg as usize];
                    push32(cpu, r, 3, v);
                }
            }
            let ret_pc = cpu.regs[15];
            push32(cpu, r, 3, ret_pc);
            push32(cpu, r, 3, cpu.regs[13]);
            push32(cpu, r, 3, cpu.regs[12]);
            let mask_word = entry_mask | if is_calls { FRAME_CALLS } else { 0 };
            push32(cpu, r, 3, mask_word);
            push32(cpu, r, 2, 0); // condition handler
            cpu.regs[13] = cpu.regs[14]; // FP
            cpu.regs[12] = ap_val; // AP
            cpu.c_span(r, FINISH, 4);
            Flow::Jump(dst.wrapping_add(2))
        }
        Opcode::Ret => {
            cpu.c_span(r, SETUP, 5);
            cpu.regs[14] = cpu.regs[13]; // SP <- FP
            let _handler = pop32(cpu, r, 2);
            let mask_word = pop32(cpu, r, 2);
            let entry_mask = mask_word & 0x0FFF;
            cpu.regs[12] = pop32(cpu, r, 2); // AP
            cpu.regs[13] = pop32(cpu, r, 2); // FP
            let ret_pc = pop32(cpu, r, 2);
            for reg in 0..12u8 {
                if entry_mask & (1 << reg) != 0 {
                    let v = pop32(cpu, r, 2);
                    cpu.regs[reg as usize] = v;
                }
            }
            if mask_word & FRAME_CALLS != 0 {
                let numarg = cpu.read_data(r.at(POP), VirtAddr(cpu.regs[14]), 4) as u32 & 0xFF;
                cpu.regs[14] = cpu.regs[14].wrapping_add(4 + 4 * numarg);
            }
            cpu.c_span(r, FINISH, 3);
            Flow::Jump(ret_pc)
        }
        Opcode::Pushr => {
            cpu.c_span(r, SETUP, 2);
            let m = ops[0].value as u32 & 0x7FFF;
            for reg in (0..15u8).rev() {
                if m & (1 << reg) != 0 {
                    let v = cpu.regs[reg as usize];
                    push32(cpu, r, 1, v);
                }
            }
            Flow::Normal
        }
        Opcode::Popr => {
            cpu.c_span(r, SETUP, 2);
            let m = ops[0].value as u32 & 0x7FFF;
            for reg in 0..15u8 {
                if m & (1 << reg) != 0 {
                    let v = pop32(cpu, r, 1);
                    cpu.regs[reg as usize] = v;
                }
            }
            Flow::Normal
        }
        other => unreachable!("{other} is not CALL/RET"),
    }
}

// ---- SYSTEM ----

fn exec_system(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    use system_off::*;
    match insn.opcode {
        Opcode::Nop => {
            cpu.c(r.at(SETUP));
            Flow::Normal
        }
        Opcode::Halt => {
            cpu.c(r.at(SETUP));
            Flow::Halt
        }
        Opcode::Bpt => {
            cpu.c_span(r, SETUP, 4);
            cpu.stats.exceptions += 1;
            let (pc, cycle) = (cpu.regs[15], cpu.cycle);
            cpu.mem.trace.emit_with(|| TraceEvent::Exception {
                pc,
                kind: "bpt",
                cycle,
            });
            // A breakpoint is the debugging entry point: dump the flight
            // recorder so the trap site comes with its instruction history.
            cpu.flight.dump_stderr();
            Flow::Normal
        }
        Opcode::Chmk | Opcode::Chme | Opcode::Chms | Opcode::Chmu => {
            let kind = match insn.opcode {
                Opcode::Chmk => "chmk",
                Opcode::Chme => "chme",
                Opcode::Chms => "chms",
                _ => "chmu",
            };
            let (pc, cycle) = (cpu.regs[15], cpu.cycle);
            cpu.mem
                .trace
                .emit_with(|| TraceEvent::Exception { pc, kind, cycle });
            cpu.c_span(r, SETUP, 10);
            let code = ops[0].value as u32;
            // Push PSL, PC, then the change-mode code.
            let psl_word = cpu.psl.to_u32();
            let pc = cpu.regs[15];
            let mut sp = cpu.regs[14];
            sp = sp.wrapping_sub(4);
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, psl_word as u64);
            sp = sp.wrapping_sub(4);
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, pc as u64);
            sp = sp.wrapping_sub(4);
            cpu.write_data(r.at(WRITE), VirtAddr(sp), 4, code as u64);
            cpu.regs[14] = sp;
            let vec_va = cpu.config.scb_base.add(VEC_CHMK * 4);
            let target = cpu.read_data(r.at(READ), vec_va, 4) as u32;
            cpu.psl.cur_mode = AccessMode::Kernel;
            cpu.c_span(r, FINISH, 2);
            Flow::Jump(target)
        }
        Opcode::Rei => {
            cpu.c_span(r, SETUP, 6);
            let mut sp = cpu.regs[14];
            let pc = cpu.read_data(r.at(READ), VirtAddr(sp), 4) as u32;
            sp = sp.wrapping_add(4);
            let psl_word = cpu.read_data(r.at(READ), VirtAddr(sp), 4) as u32;
            sp = sp.wrapping_add(4);
            cpu.regs[14] = sp;
            cpu.psl = Psl::from_u32(psl_word);
            cpu.c_span(r, FINISH, 2);
            Flow::Jump(pc)
        }
        Opcode::Svpctx => {
            cpu.c_span(r, SETUP, 2);
            // Pop the PC/PSL the interrupt pushed, then save state to PCB.
            let mut sp = cpu.regs[14];
            let pc = cpu.read_data(r.at(READ), VirtAddr(sp), 4) as u32;
            sp = sp.wrapping_add(4);
            let psl_word = cpu.read_data(r.at(READ), VirtAddr(sp), 4) as u32;
            sp = sp.wrapping_add(4);
            cpu.regs[14] = sp;
            let pcb = VirtAddr(cpu.iprs.pcbb);
            for i in 0..14u32 {
                let v = cpu.regs[i as usize];
                cpu.write_data(r.at(WRITE), pcb.add(i * 4), 4, v as u64);
                cpu.c(r.at(FINISH));
            }
            let sp_now = cpu.regs[14];
            cpu.write_data(r.at(WRITE), pcb.add(56), 4, sp_now as u64);
            cpu.write_data(r.at(WRITE), pcb.add(60), 4, pc as u64);
            cpu.write_data(r.at(WRITE), pcb.add(64), 4, psl_word as u64);
            cpu.c_span(r, FINISH, 2);
            Flow::Normal
        }
        Opcode::Ldpctx => {
            cpu.c_span(r, SETUP, 2);
            let pcb = VirtAddr(cpu.iprs.pcbb);
            for i in 0..14u32 {
                let v = cpu.read_data(r.at(READ), pcb.add(i * 4), 4) as u32;
                cpu.regs[i as usize] = v;
                cpu.c(r.at(FINISH));
            }
            let sp = cpu.read_data(r.at(READ), pcb.add(56), 4) as u32;
            let pc = cpu.read_data(r.at(READ), pcb.add(60), 4) as u32;
            let psl_word = cpu.read_data(r.at(READ), pcb.add(64), 4) as u32;
            let p0br = cpu.read_data(r.at(READ), pcb.add(68), 4) as u32;
            let p0lr = cpu.read_data(r.at(READ), pcb.add(72), 4) as u32;
            let p1br = cpu.read_data(r.at(READ), pcb.add(76), 4) as u32;
            let p1lr = cpu.read_data(r.at(READ), pcb.add(80), 4) as u32;
            cpu.mem.tables.p0br = VirtAddr(p0br);
            cpu.mem.tables.p0lr = p0lr;
            cpu.mem.tables.p1br = VirtAddr(p1br);
            cpu.mem.tables.p1lr = p1lr;
            cpu.mem.tb_mut().invalidate_process();
            // The decode cache needs no invalidate here: its entries are
            // keyed by the page-table tuple just loaded, and PTE rewrites
            // made while this process slept are caught by the code watch
            // (cached code's PTE bytes are watched).
            // Switch to the new process's stack, then push its PC/PSL so
            // the following REI resumes it with a balanced stack.
            let s1 = sp.wrapping_sub(4);
            cpu.write_data(r.at(WRITE), VirtAddr(s1), 4, psl_word as u64);
            let s2 = s1.wrapping_sub(4);
            cpu.write_data(r.at(WRITE), VirtAddr(s2), 4, pc as u64);
            cpu.regs[14] = s2;
            cpu.c_span(r, FINISH, 2);
            Flow::Normal
        }
        Opcode::Mtpr => {
            cpu.c_span(r, SETUP, 3);
            let v = ops[0].value as u32;
            let which = ops[1].value as u32;
            match IprNum::from_u32(which) {
                Some(IprNum::Sirr) => {
                    cpu.iprs.request_soft(v as u8);
                    cpu.stats.sw_interrupt_requests += 1;
                }
                Some(IprNum::Ipl) => cpu.psl.ipl = (v & 0x1F) as u8,
                Some(IprNum::Pcbb) => cpu.iprs.pcbb = v,
                Some(IprNum::Scbb) => cpu.iprs.scbb = v,
                Some(IprNum::Ksp) => cpu.iprs.ksp = v,
                Some(IprNum::Iccs) => cpu.iprs.iccs = v,
                Some(IprNum::P0br) => cpu.mem.tables.p0br = VirtAddr(v),
                Some(IprNum::P0lr) => cpu.mem.tables.p0lr = v,
                Some(IprNum::P1br) => cpu.mem.tables.p1br = VirtAddr(v),
                Some(IprNum::P1lr) => cpu.mem.tables.p1lr = v,
                Some(IprNum::Sbr) => cpu.mem.tables.sbr = vax_mem::PhysAddr(v),
                Some(IprNum::Slr) => cpu.mem.tables.slr = v,
                Some(IprNum::Tbia) => cpu.mem.tb_mut().invalidate_all(),
                Some(IprNum::Tbis) => cpu.mem.tb_mut().invalidate_page(VirtAddr(v)),
                Some(IprNum::Sisr) => cpu.iprs.sisr = v as u16,
                None => {}
            }
            // A TB invalidate is how the guest announces PTE rewrites for
            // the running context; cached decodes made under the old
            // translations must go too. (Base/length register writes need
            // nothing here: they change the page-table tuple, which is part
            // of the decode cache's key.)
            if matches!(IprNum::from_u32(which), Some(IprNum::Tbia | IprNum::Tbis)) {
                cpu.flush_decode_cache();
            }
            Flow::Normal
        }
        Opcode::Mfpr => {
            cpu.c_span(r, SETUP, 3);
            let which = ops[0].value as u32;
            let v = match IprNum::from_u32(which) {
                Some(IprNum::Ipl) => cpu.psl.ipl as u32,
                Some(IprNum::Pcbb) => cpu.iprs.pcbb,
                Some(IprNum::Scbb) => cpu.iprs.scbb,
                Some(IprNum::Ksp) => cpu.iprs.ksp,
                Some(IprNum::Sisr) => cpu.iprs.sisr as u32,
                Some(IprNum::Iccs) => cpu.iprs.iccs,
                Some(IprNum::P0br) => cpu.mem.tables.p0br.0,
                Some(IprNum::P0lr) => cpu.mem.tables.p0lr,
                Some(IprNum::P1br) => cpu.mem.tables.p1br.0,
                Some(IprNum::P1lr) => cpu.mem.tables.p1lr,
                Some(IprNum::Sbr) => cpu.mem.tables.sbr.0,
                Some(IprNum::Slr) => cpu.mem.tables.slr,
                _ => 0,
            };
            ops[1].value = v as u64;
            Flow::Normal
        }
        Opcode::Insque => {
            cpu.c_span(r, SETUP, 4);
            let entry = ops[0].value as u32;
            let pred = ops[1].value as u32;
            let succ = cpu.read_data(r.at(READ), VirtAddr(pred), 4) as u32;
            let _pred_blink = cpu.read_data(r.at(READ), VirtAddr(pred.wrapping_add(4)), 4);
            cpu.write_data(r.at(WRITE), VirtAddr(entry), 4, succ as u64);
            cpu.write_data(r.at(WRITE), VirtAddr(entry.wrapping_add(4)), 4, pred as u64);
            cpu.write_data(r.at(WRITE), VirtAddr(pred), 4, entry as u64);
            cpu.write_data(r.at(WRITE), VirtAddr(succ.wrapping_add(4)), 4, entry as u64);
            cpu.psl.z = succ == pred; // queue was empty
            cpu.c_span(r, FINISH, 2);
            Flow::Normal
        }
        Opcode::Remque => {
            cpu.c_span(r, SETUP, 4);
            let entry = ops[0].value as u32;
            let flink = cpu.read_data(r.at(READ), VirtAddr(entry), 4) as u32;
            let blink = cpu.read_data(r.at(READ), VirtAddr(entry.wrapping_add(4)), 4) as u32;
            cpu.write_data(r.at(WRITE), VirtAddr(blink), 4, flink as u64);
            cpu.write_data(
                r.at(WRITE),
                VirtAddr(flink.wrapping_add(4)),
                4,
                blink as u64,
            );
            ops[1].value = entry as u64;
            cpu.psl.z = flink == blink; // queue now empty
            cpu.c_span(r, FINISH, 2);
            Flow::Normal
        }
        Opcode::Prober | Opcode::Probew => {
            cpu.c_span(r, SETUP, 4);
            cpu.psl.z = false; // accessible
            Flow::Normal
        }
        Opcode::Bispsw => {
            cpu.c_span(r, SETUP, 2);
            let m = ops[0].value as u32;
            let cur = cpu.psl.to_u32() | (m & 0xF);
            cpu.psl = Psl::from_u32(cur);
            Flow::Normal
        }
        Opcode::Bicpsw => {
            cpu.c_span(r, SETUP, 2);
            let m = ops[0].value as u32;
            let cur = cpu.psl.to_u32() & !(m & 0xF);
            cpu.psl = Psl::from_u32(cur);
            Flow::Normal
        }
        other => unreachable!("{other} is not SYSTEM"),
    }
}

// ---- CHARACTER ----

/// One string-loop iteration: read a source longword and two bookkeeping
/// cycles (the read-only string ops).
fn char_read_iter(cpu: &mut Cpu, r: Region, va: VirtAddr) -> u64 {
    use char_off::*;
    let v = cpu.read_data(r.at(READ), VirtAddr(va.0 & !3), 4);
    cpu.c(r.at(LOOP1));
    cpu.c(r.at(LOOP2));
    v
}

fn exec_character(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    use char_off::*;
    cpu.c_span(r, SETUP, 8);
    match insn.opcode {
        Opcode::Movc3 | Opcode::Movc5 => {
            let (srclen, srcaddr, fill, dstlen, dstaddr) = if insn.opcode == Opcode::Movc3 {
                let len = ops[0].value as u32 & 0xFFFF;
                (len, ops[1].as_va(), 0u8, len, ops[2].as_va())
            } else {
                (
                    ops[0].value as u32 & 0xFFFF,
                    ops[1].as_va(),
                    ops[2].value as u8,
                    ops[3].value as u32 & 0xFFFF,
                    ops[4].as_va(),
                )
            };
            // Timing: longword loop; the microcode writes only every sixth
            // cycle to avoid write stalls (paper §4.3).
            let lws = dstlen.div_ceil(4);
            for i in 0..lws {
                let _ = cpu.read_data(r.at(READ), VirtAddr((srcaddr.0 + i * 4) & !3), 4);
                cpu.c(r.at(LOOP1));
                cpu.c(r.at(LOOP2));
                cpu.c(r.at(LOOP1));
                cpu.write_data(r.at(WRITE), VirtAddr((dstaddr.0 + i * 4) & !3), 4, 0);
                cpu.c(r.at(LOOP3));
                cpu.c(r.at(LOOP4));
                cpu.c(r.at(LOOP3));
            }
            cpu.c(r.at(FINISH));
            // Semantics: byte-accurate copy + fill (after the timed loop so
            // its placeholder writes don't clobber the data).
            let n = srclen.min(dstlen);
            for i in 0..n {
                let b = cpu.read_value(srcaddr.add(i), 1);
                cpu.write_value(dstaddr.add(i), 1, b);
            }
            for i in n..dstlen {
                cpu.write_value(dstaddr.add(i), 1, fill as u64);
            }
            cpu.regs[0] = srclen.saturating_sub(dstlen);
            cpu.regs[1] = srcaddr.add(n).0;
            cpu.regs[2] = 0;
            cpu.regs[3] = dstaddr.add(dstlen).0;
            cpu.regs[4] = 0;
            cpu.regs[5] = 0;
            cpu.psl.z = srclen == dstlen;
            Flow::Normal
        }
        Opcode::Cmpc3 | Opcode::Cmpc5 => {
            let (len1, a1, len2, a2) = if insn.opcode == Opcode::Cmpc3 {
                let len = ops[0].value as u32 & 0xFFFF;
                (len, ops[1].as_va(), len, ops[2].as_va())
            } else {
                (
                    ops[0].value as u32 & 0xFFFF,
                    ops[1].as_va(),
                    ops[3].value as u32 & 0xFFFF,
                    ops[4].as_va(),
                )
            };
            let n = len1.min(len2);
            let mut diff_at = n;
            let mut ca = 0u64;
            let mut cb = 0u64;
            for i in 0..n {
                ca = cpu.read_value(a1.add(i), 1);
                cb = cpu.read_value(a2.add(i), 1);
                if ca != cb {
                    diff_at = i;
                    break;
                }
            }
            let scanned = if diff_at == n { n } else { diff_at + 1 };
            let lws = scanned.div_ceil(4).max(1);
            for i in 0..lws {
                let _ = cpu.read_data(r.at(READ), VirtAddr((a1.0 + i * 4) & !3), 4);
                let _ = cpu.read_data(r.at(READ), VirtAddr((a2.0 + i * 4) & !3), 4);
                cpu.c(r.at(LOOP1));
                cpu.c(r.at(LOOP2));
            }
            cpu.c(r.at(FINISH));
            cc_cmp(&mut cpu.psl, ca, cb, 1);
            if diff_at == n {
                cpu.psl.z = len1 == len2;
            }
            cpu.regs[0] = len1 - diff_at.min(len1);
            cpu.regs[1] = a1.add(diff_at).0;
            cpu.regs[2] = len2 - diff_at.min(len2);
            cpu.regs[3] = a2.add(diff_at).0;
            Flow::Normal
        }
        Opcode::Locc | Opcode::Skpc => {
            let ch = ops[0].value as u8;
            let len = ops[1].value as u32 & 0xFFFF;
            let addr = ops[2].as_va();
            let mut found = len;
            for i in 0..len {
                let b = cpu.read_value(addr.add(i), 1) as u8;
                let hit = if insn.opcode == Opcode::Locc {
                    b == ch
                } else {
                    b != ch
                };
                if hit {
                    found = i;
                    break;
                }
            }
            let scanned = if found == len { len } else { found + 1 };
            let lws = scanned.div_ceil(4).max(1);
            for i in 0..lws {
                let _ = char_read_iter(cpu, r, addr.add(i * 4));
            }
            cpu.c(r.at(FINISH));
            cpu.psl.z = found == len;
            cpu.regs[0] = len - found.min(len);
            cpu.regs[1] = addr.add(found.min(len)).0;
            Flow::Normal
        }
        Opcode::Scanc | Opcode::Spanc => {
            let len = ops[0].value as u32 & 0xFFFF;
            let addr = ops[1].as_va();
            let table = ops[2].as_va();
            let m = ops[3].value as u8;
            let mut found = len;
            for i in 0..len {
                let b = cpu.read_value(addr.add(i), 1) as u8;
                let t = cpu.read_value(table.add(b as u32), 1) as u8;
                let hit = if insn.opcode == Opcode::Scanc {
                    t & m != 0
                } else {
                    t & m == 0
                };
                if hit {
                    found = i;
                    break;
                }
            }
            let scanned = if found == len { len } else { found + 1 };
            let lws = scanned.div_ceil(4).max(1);
            for i in 0..lws {
                let _ = char_read_iter(cpu, r, addr.add(i * 4));
                // Table lookups: one reference per longword of string, a
                // coarse model of the per-byte table probes.
                let _ = cpu.read_data(r.at(READ), VirtAddr(table.0 & !3), 4);
            }
            cpu.c(r.at(FINISH));
            cpu.psl.z = found == len;
            cpu.regs[0] = len - found.min(len);
            cpu.regs[1] = addr.add(found.min(len)).0;
            cpu.regs[2] = 0;
            cpu.regs[3] = table.0;
            Flow::Normal
        }
        Opcode::Matchc => {
            let len1 = ops[0].value as u32 & 0xFFFF;
            let a1 = ops[1].as_va();
            let len2 = ops[2].value as u32 & 0xFFFF;
            let a2 = ops[3].as_va();
            // Naive substring search (pattern a1 within a2).
            let mut at = None;
            if len1 <= len2 {
                'outer: for s in 0..=(len2 - len1) {
                    for i in 0..len1 {
                        let p = cpu.read_value(a1.add(i), 1);
                        let t = cpu.read_value(a2.add(s + i), 1);
                        if p != t {
                            continue 'outer;
                        }
                    }
                    at = Some(s);
                    break;
                }
            }
            let scanned = at.map(|s| s + len1).unwrap_or(len2);
            let lws = scanned.div_ceil(4).max(1);
            for i in 0..lws {
                let _ = char_read_iter(cpu, r, a2.add(i * 4));
            }
            cpu.c(r.at(FINISH));
            cpu.psl.z = at.is_some();
            cpu.regs[0] = if at.is_some() { 0 } else { len1 };
            cpu.regs[3] = a2.add(at.map(|s| s + len1).unwrap_or(len2)).0;
            Flow::Normal
        }
        other => unreachable!("{other} is not CHARACTER"),
    }
}

// ---- DECIMAL ----

/// Packed-decimal byte length for a digit count.
fn packed_bytes(digits: u32) -> u32 {
    digits / 2 + 1
}

fn read_packed(cpu: &Cpu, addr: VirtAddr, digits: u32) -> i128 {
    let bytes = packed_bytes(digits.min(31));
    let mut v: i128 = 0;
    for i in 0..bytes {
        let b = cpu.read_value(addr.add(i), 1) as u8;
        if i == bytes - 1 {
            v = v * 10 + (b >> 4) as i128;
            if b & 0x0F == 0x0D {
                v = -v;
            }
        } else {
            v = v * 100 + ((b >> 4) * 10 + (b & 0x0F)) as i128;
        }
    }
    v
}

fn write_packed(cpu: &mut Cpu, addr: VirtAddr, digits: u32, value: i128) {
    let digits = digits.min(31);
    let bytes = packed_bytes(digits);
    let neg = value < 0;
    let mut mag = value.unsigned_abs();
    // Build digits least-significant first.
    let mut ds = [0u8; 32];
    for d in ds.iter_mut().take(digits as usize) {
        *d = (mag % 10) as u8;
        mag /= 10;
    }
    // Pack: last byte holds the lowest digit + sign nibble.
    for i in 0..bytes {
        let byte = if i == bytes - 1 {
            (ds[0] << 4) | if neg { 0x0D } else { 0x0C }
        } else {
            let hi_idx = (2 * (bytes - 1 - i) - 1) as usize;
            let lo_idx = (2 * (bytes - 1 - i)) as usize;
            (ds[lo_idx.min(31)] << 4) | ds[hi_idx.min(31)]
        };
        cpu.write_value(addr.add(i), 1, byte as u64);
    }
}

/// Timed packed-operand read: longword references plus digit cycles.
fn dec_read_timed(cpu: &mut Cpu, r: Region, addr: VirtAddr, digits: u32) {
    use decimal_off::*;
    let lws = packed_bytes(digits).div_ceil(4);
    for i in 0..lws {
        let _ = cpu.read_data(r.at(READ), VirtAddr((addr.0 + i * 4) & !3), 4);
        cpu.c(r.at(DIGIT1));
    }
}

fn dec_write_timed(cpu: &mut Cpu, r: Region, addr: VirtAddr, digits: u32) {
    use decimal_off::*;
    let lws = packed_bytes(digits).div_ceil(4);
    for i in 0..lws {
        cpu.write_data(r.at(WRITE), VirtAddr((addr.0 + i * 4) & !3), 4, 0);
        cpu.c(r.at(FINISH));
        cpu.c(r.at(DIGIT2));
    }
}

fn dec_digit_loop(cpu: &mut Cpu, r: Region, digits: u32, heavy: bool) {
    use decimal_off::*;
    for _ in 0..digits {
        cpu.c(r.at(DIGIT1));
        cpu.c(r.at(DIGIT2));
        cpu.c(r.at(DIGIT3));
        if heavy {
            cpu.c(r.at(DIGIT1));
            cpu.c(r.at(DIGIT2));
            cpu.c(r.at(DIGIT3));
        }
    }
}

fn ten_pow(digits: u32) -> i128 {
    10i128.saturating_pow(digits.min(31))
}

fn exec_decimal(cpu: &mut Cpu, r: Region, insn: &Instruction, ops: &mut [EvaldOperand]) -> Flow {
    use decimal_off::*;
    cpu.c_span(r, SETUP, 10);
    let op = insn.opcode;
    match op {
        Opcode::Addp4 | Opcode::Subp4 => {
            let srclen = ops[0].value as u32 & 0x1F;
            let src = ops[1].as_va();
            let dstlen = ops[2].value as u32 & 0x1F;
            let dst = ops[3].as_va();
            dec_read_timed(cpu, r, src, srclen);
            dec_read_timed(cpu, r, dst, dstlen);
            dec_digit_loop(cpu, r, dstlen.max(srclen), false);
            let a = read_packed(cpu, src, srclen);
            let b = read_packed(cpu, dst, dstlen);
            let v = if op == Opcode::Addp4 { b + a } else { b - a } % ten_pow(dstlen);
            dec_write_timed(cpu, r, dst, dstlen);
            write_packed(cpu, dst, dstlen, v);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Addp6 | Opcode::Subp6 => {
            let l1 = ops[0].value as u32 & 0x1F;
            let a1 = ops[1].as_va();
            let l2 = ops[2].value as u32 & 0x1F;
            let a2 = ops[3].as_va();
            let l3 = ops[4].value as u32 & 0x1F;
            let a3 = ops[5].as_va();
            dec_read_timed(cpu, r, a1, l1);
            dec_read_timed(cpu, r, a2, l2);
            dec_digit_loop(cpu, r, l3.max(l1).max(l2), false);
            let x = read_packed(cpu, a1, l1);
            let y = read_packed(cpu, a2, l2);
            let v = if op == Opcode::Addp6 { y + x } else { y - x } % ten_pow(l3);
            dec_write_timed(cpu, r, a3, l3);
            write_packed(cpu, a3, l3, v);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Mulp | Opcode::Divp => {
            let l1 = ops[0].value as u32 & 0x1F;
            let a1 = ops[1].as_va();
            let l2 = ops[2].value as u32 & 0x1F;
            let a2 = ops[3].as_va();
            let l3 = ops[4].value as u32 & 0x1F;
            let a3 = ops[5].as_va();
            dec_read_timed(cpu, r, a1, l1);
            dec_read_timed(cpu, r, a2, l2);
            dec_digit_loop(cpu, r, l3.max(l1).max(l2), true);
            let x = read_packed(cpu, a1, l1);
            let y = read_packed(cpu, a2, l2);
            let v = if op == Opcode::Mulp {
                (y.saturating_mul(x)) % ten_pow(l3)
            } else if x == 0 {
                cpu.psl.v = true;
                0
            } else {
                (y / x) % ten_pow(l3)
            };
            dec_write_timed(cpu, r, a3, l3);
            write_packed(cpu, a3, l3, v);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Movp => {
            let len = ops[0].value as u32 & 0x1F;
            let src = ops[1].as_va();
            let dst = ops[2].as_va();
            dec_read_timed(cpu, r, src, len);
            let v = read_packed(cpu, src, len);
            dec_write_timed(cpu, r, dst, len);
            write_packed(cpu, dst, len, v);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Cmpp3 | Opcode::Cmpp4 => {
            let (l1, a1, l2, a2) = if op == Opcode::Cmpp3 {
                let len = ops[0].value as u32 & 0x1F;
                (len, ops[1].as_va(), len, ops[2].as_va())
            } else {
                (
                    ops[0].value as u32 & 0x1F,
                    ops[1].as_va(),
                    ops[2].value as u32 & 0x1F,
                    ops[3].as_va(),
                )
            };
            dec_read_timed(cpu, r, a1, l1);
            dec_read_timed(cpu, r, a2, l2);
            dec_digit_loop(cpu, r, l1.max(l2) / 2, false);
            let x = read_packed(cpu, a1, l1);
            let y = read_packed(cpu, a2, l2);
            cpu.psl.n = x < y;
            cpu.psl.z = x == y;
            Flow::Normal
        }
        Opcode::Cvtlp => {
            let v = sext(ops[0].value, 4) as i128;
            let len = ops[1].value as u32 & 0x1F;
            let dst = ops[2].as_va();
            dec_digit_loop(cpu, r, len, false);
            dec_write_timed(cpu, r, dst, len);
            write_packed(cpu, dst, len, v % ten_pow(len));
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Cvtpl => {
            let len = ops[0].value as u32 & 0x1F;
            let src = ops[1].as_va();
            dec_read_timed(cpu, r, src, len);
            dec_digit_loop(cpu, r, len, false);
            let v = read_packed(cpu, src, len);
            ops[2].value = v as i64 as u64 & mask(4);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        Opcode::Ashp => {
            let shift = sext(ops[0].value, 1);
            let srclen = ops[1].value as u32 & 0x1F;
            let src = ops[2].as_va();
            let _round = ops[3].value;
            let dstlen = ops[4].value as u32 & 0x1F;
            let dst = ops[5].as_va();
            dec_read_timed(cpu, r, src, srclen);
            dec_digit_loop(cpu, r, dstlen, false);
            let x = read_packed(cpu, src, srclen);
            let v = if shift >= 0 {
                x.saturating_mul(ten_pow(shift as u32))
            } else {
                x / ten_pow((-shift) as u32)
            } % ten_pow(dstlen);
            dec_write_timed(cpu, r, dst, dstlen);
            write_packed(cpu, dst, dstlen, v);
            cpu.psl.n = v < 0;
            cpu.psl.z = v == 0;
            Flow::Normal
        }
        other => unreachable!("{other} is not DECIMAL"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_offsets() {
        assert_eq!(SIMPLE_LAYOUT[simple_off::READ as usize], R);
        assert_eq!(SIMPLE_LAYOUT[simple_off::WRITE as usize], W);
        assert_eq!(FIELD_LAYOUT[field_off::READ as usize], R);
        assert_eq!(FIELD_LAYOUT[field_off::WRITE as usize], W);
        assert_eq!(CALLRET_LAYOUT[callret_off::PUSH as usize], W);
        assert_eq!(CALLRET_LAYOUT[callret_off::POP as usize], R);
        assert_eq!(SYSTEM_LAYOUT[system_off::READ as usize], R);
        assert_eq!(SYSTEM_LAYOUT[system_off::WRITE as usize], W);
        assert_eq!(CHAR_LAYOUT[char_off::READ as usize], R);
        assert_eq!(CHAR_LAYOUT[char_off::WRITE as usize], W);
        assert_eq!(DECIMAL_LAYOUT[decimal_off::READ as usize], R);
        assert_eq!(DECIMAL_LAYOUT[decimal_off::WRITE as usize], W);
    }

    #[test]
    fn packed_decimal_roundtrip_helpers() {
        // Pure helpers (no CPU needed).
        assert_eq!(packed_bytes(5), 3);
        assert_eq!(packed_bytes(0), 1);
        assert_eq!(ten_pow(3), 1000);
        assert_eq!(mask_bits(4), 0xF);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0xFF, 1), -1);
        assert_eq!(sext(0x7F, 1), 127);
        assert_eq!(sext(0xFFFF_FFFF, 4), -1);
    }
}
