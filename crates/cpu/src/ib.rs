//! The I-Fetch unit and its 8-byte instruction buffer (IB).
//!
//! The IB issues a cache reference "whenever one or more bytes are empty"
//! (paper §4.1). A fill targets the aligned longword containing the next
//! fetch address and delivers at most the bytes from that address to the end
//! of the longword, bounded by the free room — so the same longword may be
//! referenced more than once (the paper measured ~2.2 references per
//! instruction delivering ~1.7 bytes each).
//!
//! An I-stream TB miss does not trap immediately: a flag is set, fetching
//! stops, and the miss is serviced by the EBOX when decode actually starves
//! (paper §2.1).

use vax_mem::{MemorySystem, PhysAddr, RefClass, VirtAddr};

/// IB capacity in bytes.
pub const IB_BYTES: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct PendingFill {
    avail_at: u64,
    nbytes: u32,
}

/// The instruction buffer state.
#[derive(Debug, Clone)]
pub struct Ib {
    /// Virtual address of the next byte to *fetch* (ahead of decode).
    vpc: u32,
    /// Bytes currently buffered and not yet consumed.
    valid: u32,
    /// At most one outstanding fill.
    pending: Option<PendingFill>,
    /// Fetch blocked on an I-stream TB miss at this address.
    itb_miss: Option<VirtAddr>,
}

impl Ib {
    /// An empty IB fetching from nowhere; call [`Ib::flush`] first.
    pub fn new() -> Ib {
        Ib {
            vpc: 0,
            valid: 0,
            pending: None,
            itb_miss: None,
        }
    }

    /// Number of buffered bytes.
    pub fn valid_bytes(&self) -> u32 {
        self.valid
    }

    /// Redirect fetching to `new_pc`, discarding buffered bytes (taken
    /// branches, interrupts, context switches).
    pub fn flush(&mut self, new_pc: u32) {
        self.vpc = new_pc;
        self.valid = 0;
        self.pending = None;
        self.itb_miss = None;
    }

    /// The blocked-fetch address, if fetch hit an I-stream TB miss.
    pub fn itb_miss(&self) -> Option<VirtAddr> {
        self.itb_miss
    }

    /// Clear the TB-miss flag after the EBOX has serviced it.
    pub fn clear_itb_miss(&mut self) {
        self.itb_miss = None;
    }

    /// Advance the I-Fetch unit to time `now`: complete an arrived fill and
    /// issue a new one if there is room.
    pub fn sync(&mut self, now: u64, mem: &mut MemorySystem) {
        if let Some(p) = self.pending {
            if p.avail_at <= now {
                self.valid += p.nbytes;
                self.pending = None;
            }
        }
        if self.pending.is_none() && self.itb_miss.is_none() && self.valid < IB_BYTES {
            let va = VirtAddr(self.vpc);
            match mem.probe_tb_at(va, RefClass::IStream, now) {
                None => self.itb_miss = Some(va),
                Some(pa) => {
                    let lw_pa = PhysAddr(pa.0 & !3);
                    let fill = mem.ifetch_cycle(lw_pa, now);
                    let lw_remaining = va.remaining_in(4);
                    let room = IB_BYTES - self.valid;
                    let take = lw_remaining.min(room);
                    self.pending = Some(PendingFill {
                        avail_at: fill.avail_at,
                        nbytes: take,
                    });
                    self.vpc = self.vpc.wrapping_add(take);
                }
            }
        }
    }

    /// Consume `n` buffered bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes are buffered — the EBOX must wait
    /// (recording IB-stall cycles) until [`Ib::valid_bytes`] suffices.
    pub fn consume(&mut self, n: u32) {
        assert!(
            self.valid >= n,
            "IB underflow: consuming {n} with {} buffered",
            self.valid
        );
        self.valid -= n;
    }
}

impl Default for Ib {
    fn default() -> Self {
        Ib::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_mem::{PageTables, Pte};

    fn mem_with_code() -> MemorySystem {
        let mut ms = MemorySystem::new_780();
        ms.tables = PageTables {
            sbr: PhysAddr(0x10000),
            slr: 64,
            p0br: VirtAddr(0x8000_0000),
            p0lr: 16,
            p1br: VirtAddr(0x8000_0200),
            p1lr: 16,
        };
        for vpn in 0..64u32 {
            let pfn = (0x40000 >> 9) + vpn;
            ms.phys_mut()
                .write(PhysAddr(0x10000 + vpn * 4), 4, Pte::valid(pfn).0 as u64);
        }
        for vpn in 0..16u32 {
            let pfn = (0x80000 >> 9) + vpn;
            ms.phys_mut()
                .write(PhysAddr(0x40000 + vpn * 4), 4, Pte::valid(pfn).0 as u64);
        }
        ms
    }

    #[test]
    fn fills_after_flush() {
        let mut ms = mem_with_code();
        // Pre-fill the TB so fetch does not miss.
        ms.tb_fill(VirtAddr(0x200), 0).unwrap();
        let mut ib = Ib::new();
        ib.flush(0x200);
        // First sync issues the fill; it misses the cache and queues behind
        // the TB fill's PTE traffic on the SBI.
        ib.sync(0, &mut ms);
        assert_eq!(ib.valid_bytes(), 0);
        for t in 1..40 {
            ib.sync(t, &mut ms);
        }
        assert_eq!(ib.valid_bytes(), 8, "IB fills to capacity given time");
    }

    #[test]
    fn itb_miss_blocks_fetch() {
        let mut ms = mem_with_code();
        let mut ib = Ib::new();
        ib.flush(0x200); // not in TB
        ib.sync(0, &mut ms);
        assert_eq!(ib.itb_miss(), Some(VirtAddr(0x200)));
        assert_eq!(ib.valid_bytes(), 0);
        assert_eq!(ms.stats.tb_miss_i, 1);
        // Service and resume.
        ms.tb_fill(VirtAddr(0x200), 0).unwrap();
        ib.clear_itb_miss();
        ib.sync(10, &mut ms);
        ib.sync(20, &mut ms);
        assert!(ib.valid_bytes() > 0);
    }

    #[test]
    fn misaligned_start_takes_partial_longword() {
        let mut ms = mem_with_code();
        ms.tb_fill(VirtAddr(0x200), 0).unwrap();
        let mut ib = Ib::new();
        ib.flush(0x203); // one byte left in this longword
        ib.sync(0, &mut ms);
        let mut t = 1;
        while ib.valid_bytes() == 0 && t < 40 {
            ib.sync(t, &mut ms);
            t += 1;
        }
        assert_eq!(
            ib.valid_bytes(),
            1,
            "first fill delivers the partial longword"
        );
    }

    #[test]
    fn consume_and_underflow() {
        let mut ms = mem_with_code();
        ms.tb_fill(VirtAddr(0x200), 0).unwrap();
        let mut ib = Ib::new();
        ib.flush(0x200);
        for t in 0..20 {
            ib.sync(t, &mut ms);
        }
        assert_eq!(ib.valid_bytes(), 8);
        ib.consume(3);
        assert_eq!(ib.valid_bytes(), 5);
    }

    #[test]
    #[should_panic(expected = "IB underflow")]
    fn underflow_panics() {
        let mut ib = Ib::new();
        ib.consume(1);
    }
}
