//! Evaluated operand values and write-back destinations.

use upc_monitor::MicroPc;
use vax_arch::Reg;
use vax_mem::VirtAddr;

/// Where an operand's datum lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A general register (and `Rn+1` for quad data).
    Reg(Reg),
    /// A memory address.
    Mem(VirtAddr),
    /// No location (literal/immediate operands).
    None,
}

/// One evaluated operand.
#[derive(Debug, Clone, Copy)]
pub struct EvaldOperand {
    /// The operand's value (reads/modifies), or the computed address for
    /// address-access operands.
    pub value: u64,
    /// Where the datum lives (write-back destination for write/modify).
    pub loc: Loc,
    /// Operand size in bytes.
    pub size: u32,
}

impl EvaldOperand {
    /// The value as a signed 32-bit integer (low longword).
    pub fn as_i32(&self) -> i32 {
        self.value as u32 as i32
    }

    /// The value as an unsigned 32-bit integer (low longword).
    pub fn as_u32(&self) -> u32 {
        self.value as u32
    }

    /// The value as a virtual address (for address-access operands).
    pub fn as_va(&self) -> VirtAddr {
        VirtAddr(self.value as u32)
    }
}

/// A deferred write-back: performed after the execute phase, charged to the
/// specifier routine's final microinstruction.
#[derive(Debug, Clone, Copy)]
pub struct PendingWb {
    /// Index of the operand in the instruction's operand list.
    pub operand_index: usize,
    /// µPC of the write-back microinstruction (`None` for register-modify,
    /// whose write-back is folded into the execute cycle).
    pub upc: Option<MicroPc>,
    /// Destination.
    pub loc: Loc,
    /// Size in bytes.
    pub size: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let op = EvaldOperand {
            value: 0xFFFF_FFFF,
            loc: Loc::None,
            size: 4,
        };
        assert_eq!(op.as_i32(), -1);
        assert_eq!(op.as_u32(), u32::MAX);
        assert_eq!(op.as_va(), VirtAddr(u32::MAX));
    }
}
