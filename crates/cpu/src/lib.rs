//! # vax-cpu
//!
//! A microcycle-accurate behavioural model of the VAX-11/780 CPU pipeline:
//! the microcoded **EBOX**, the **I-Decode** stage, and the **I-Fetch** unit
//! with its 8-byte instruction buffer (IB).
//!
//! Every VAX instruction executes as a sequence of microcycles. Each
//! microcycle carries a micro-PC drawn from a synthetic control store whose
//! *organization* mirrors the real 780 microcode: an instruction-decode
//! routine, per-addressing-mode operand-specifier routines (separate copies
//! for the first and for subsequent specifiers, as in the real machine),
//! branch-displacement processing, per-opcode execute routines, the TB-miss
//! service routine, interrupt dispatch, unaligned-reference microcode, and
//! abort cycles. A [`upc_monitor::Histogram`] attached to the CPU observes
//! `(µPC, plane)` each cycle — the measurement instrument of the paper.
//!
//! Timing anchors (paper §2.1, §4.3):
//! * decode takes exactly one non-overlapped cycle per instruction;
//! * a read hitting TB and cache takes one cycle; a cache miss read-stalls
//!   the EBOX ~6 cycles (more under SBI contention);
//! * a write takes one cycle, with a 6-cycle drain; a second write inside
//!   the window write-stalls;
//! * IB starvation shows up as executions of the "insufficient bytes"
//!   dispatch microaddress (IB stall);
//! * a TB miss microtraps (one abort cycle) into a service routine that
//!   fetches the PTE through the cache.

pub mod config;
pub mod ebox;
pub mod exec;
pub mod flight;
pub mod ib;
pub mod icache;
pub mod ipr;
pub mod operand;
pub mod stats;
pub mod store;

pub use config::CpuConfig;
pub use ebox::{Cpu, StepOutcome};
pub use flight::{FlightEntry, FlightRecorder, SharedFlightRecorder};
pub use icache::{DecodeCache, DecodeCacheStats};
pub use ipr::Ipr;
pub use stats::CpuStats;
pub use store::ControlStore;
