//! The synthetic control store.
//!
//! The 780's microcode is organized as an instruction-decode dispatch,
//! per-addressing-mode specifier routines (with separate copies used for the
//! first specifier of an instruction versus later specifiers), branch
//! displacement processing, per-opcode execute routines, and service code
//! (TB miss, unaligned data, interrupts). We allocate a µPC region per
//! routine through the [`ControlStoreMap`], so the monitor's histogram can
//! be reduced *by address* exactly as the paper's analysts did against the
//! microcode listings.

use upc_monitor::{Activity, ControlStoreMap, MicroOp, MicroPc, Region};
use vax_arch::{AddressingMode, Opcode, OpcodeGroup};

use crate::config::CpuConfig;
use crate::exec::group_layout;

/// Access flavor of a specifier evaluation, determining its microroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFlavor {
    /// Operand is read at specifier time.
    Read,
    /// Operand address is computed; datum written at write-back.
    Write,
    /// Operand is read at specifier time and written at write-back.
    Modify,
    /// Only the address is computed (MOVAx, string bases, bit-field bases).
    Address,
}

impl SpecFlavor {
    /// Dense index for table storage.
    pub const fn index(self) -> usize {
        match self {
            SpecFlavor::Read => 0,
            SpecFlavor::Write => 1,
            SpecFlavor::Modify => 2,
            SpecFlavor::Address => 3,
        }
    }

    const ALL: [SpecFlavor; 4] = [
        SpecFlavor::Read,
        SpecFlavor::Write,
        SpecFlavor::Modify,
        SpecFlavor::Address,
    ];
}

/// Microroutine shape for a (mode, flavor) pair, or `None` if the
/// combination is architecturally impossible / unused by our workloads.
///
/// Conventions interpreted by the EBOX:
/// * ops before the final `Write` run at specifier-evaluation time;
/// * a final `Write` (Write/Modify flavors, memory modes) runs at
///   write-back time, after execute;
/// * for Write flavor with register mode, the single `Compute` is the
///   write-back move into the register;
/// * quad-width data repeats the data-reference µop at the same address.
fn spec_ops(mode: AddressingMode, flavor: SpecFlavor) -> Option<&'static [MicroOp]> {
    use AddressingMode::*;
    use MicroOp::{Compute as C, Read as R, Write as W};
    let ops: &'static [MicroOp] = match (mode, flavor) {
        (Literal, SpecFlavor::Read) => &[C],
        (Literal, _) => return None,

        (Register, SpecFlavor::Read) => &[C],
        (Register, SpecFlavor::Write) => &[C],
        (Register, SpecFlavor::Modify) => &[C],
        // "address of a register" faults architecturally; bit-field bases in
        // register mode are handled as a register read.
        (Register, SpecFlavor::Address) => &[C],

        (RegisterDeferred, SpecFlavor::Read) => &[R],
        (RegisterDeferred, SpecFlavor::Write) => &[W],
        (RegisterDeferred, SpecFlavor::Modify) => &[R, W],
        (RegisterDeferred, SpecFlavor::Address) => &[C],

        (Autoincrement, SpecFlavor::Read) => &[R, C],
        (Autoincrement, SpecFlavor::Write) => &[C, W],
        (Autoincrement, SpecFlavor::Modify) => &[R, C, W],
        (Autoincrement, SpecFlavor::Address) => &[C, C],

        (Autodecrement, SpecFlavor::Read) => &[C, R],
        (Autodecrement, SpecFlavor::Write) => &[C, W],
        (Autodecrement, SpecFlavor::Modify) => &[C, R, W],
        (Autodecrement, SpecFlavor::Address) => &[C, C],

        (AutoincrementDeferred, SpecFlavor::Read) => &[R, C, R],
        (AutoincrementDeferred, SpecFlavor::Write) => &[R, C, W],
        (AutoincrementDeferred, SpecFlavor::Modify) => &[R, C, R, W],
        (AutoincrementDeferred, SpecFlavor::Address) => &[R, C],

        (ByteDisp | WordDisp | LongDisp, SpecFlavor::Read) => &[C, R],
        (ByteDisp | WordDisp | LongDisp, SpecFlavor::Write) => &[C, W],
        (ByteDisp | WordDisp | LongDisp, SpecFlavor::Modify) => &[C, R, W],
        (ByteDisp | WordDisp | LongDisp, SpecFlavor::Address) => &[C],

        (ByteDispDeferred | WordDispDeferred | LongDispDeferred, SpecFlavor::Read) => &[C, R, R],
        (ByteDispDeferred | WordDispDeferred | LongDispDeferred, SpecFlavor::Write) => &[C, R, W],
        (ByteDispDeferred | WordDispDeferred | LongDispDeferred, SpecFlavor::Modify) => {
            &[C, R, R, W]
        }
        (ByteDispDeferred | WordDispDeferred | LongDispDeferred, SpecFlavor::Address) => &[C, R],

        (Immediate, SpecFlavor::Read) => &[C],
        (Immediate, _) => return None,

        (Absolute, SpecFlavor::Read) => &[C, R],
        (Absolute, SpecFlavor::Write) => &[C, W],
        (Absolute, SpecFlavor::Modify) => &[C, R, W],
        (Absolute, SpecFlavor::Address) => &[C],

        (PcRelative, SpecFlavor::Read) => &[C, R],
        (PcRelative, SpecFlavor::Write) => &[C, W],
        (PcRelative, SpecFlavor::Modify) => &[C, R, W],
        (PcRelative, SpecFlavor::Address) => &[C],

        (PcRelativeDeferred, SpecFlavor::Read) => &[C, R, R],
        (PcRelativeDeferred, SpecFlavor::Write) => &[C, R, W],
        (PcRelativeDeferred, SpecFlavor::Modify) => &[C, R, R, W],
        (PcRelativeDeferred, SpecFlavor::Address) => &[C, R],
    };
    Some(ops)
}

/// The specifier microroutine set for one position class (SPEC1 or
/// SPEC2-6).
#[derive(Debug, Clone)]
pub struct SpecRegions {
    regions: [[Option<Region>; 4]; 16],
    /// The "insufficient bytes" dispatch target for this position class.
    pub ib_wait: MicroPc,
    /// The index-prefix base-address computation cycle.
    pub index_prefix: Region,
}

impl SpecRegions {
    fn build(map: &mut ControlStoreMap, activity: Activity, prefix: &str) -> SpecRegions {
        let mut regions: [[Option<Region>; 4]; 16] = Default::default();
        for &mode in AddressingMode::ALL.iter() {
            for flavor in SpecFlavor::ALL {
                if let Some(ops) = spec_ops(mode, flavor) {
                    let name = format!("{prefix}.{:?}.{:?}", mode, flavor);
                    regions[mode.index()][flavor.index()] = Some(map.alloc(&name, activity, ops));
                }
            }
        }
        let ib_wait = map
            .alloc(&format!("{prefix}.IBWAIT"), activity, &[MicroOp::IbWait])
            .entry();
        let index_prefix = map.alloc(&format!("{prefix}.INDEX"), activity, &[MicroOp::Compute]);
        SpecRegions {
            regions,
            ib_wait,
            index_prefix,
        }
    }

    /// The routine for a (mode, flavor) pair.
    ///
    /// # Panics
    /// Panics for impossible combinations (e.g. writing a literal).
    #[inline]
    pub fn routine(&self, mode: AddressingMode, flavor: SpecFlavor) -> Region {
        self.regions[mode.index()][flavor.index()]
            .unwrap_or_else(|| panic!("no specifier routine for {mode:?} {flavor:?}"))
    }

    /// The µop shape of the routine (same convention as the map).
    pub fn ops(
        &self,
        map: &ControlStoreMap,
        mode: AddressingMode,
        flavor: SpecFlavor,
    ) -> Vec<MicroOp> {
        let r = self.routine(mode, flavor);
        (0..r.len).map(|i| map.op(r.at(i))).collect()
    }
}

/// The fully laid-out control store.
#[derive(Debug, Clone)]
pub struct ControlStore {
    /// The reduction key (shared with the analysis crate).
    pub map: ControlStoreMap,
    /// Instruction decode: offset 0 = the one decode cycle, offset 1 = the
    /// decode-time IB-wait dispatch.
    pub ird: Region,
    /// First-specifier routines.
    pub spec1: SpecRegions,
    /// Later-specifier routines.
    pub spec26: SpecRegions,
    /// Branch displacement: offset 0 = target computation, offset 1 =
    /// displacement-byte IB wait.
    pub bdisp: Region,
    /// Execute routine per opcode (indexed by `Opcode as usize`).
    pub exec: Vec<Region>,
    /// TB-miss service (MemMgmt): `overhead` compute cycles then a PTE-read
    /// µop at offset `overhead`.
    pub tb_miss: Region,
    /// Offset of the PTE read within `tb_miss`.
    pub tb_miss_read_off: u16,
    /// Unaligned-reference microcode (MemMgmt): two compute cycles and the
    /// extra physical read at offset 2 (write at offset 3).
    pub unaligned: Region,
    /// Interrupt dispatch (IntExcept).
    pub interrupt: Region,
    /// Offsets of the vector read and the two pushes within `interrupt`.
    pub interrupt_read_off: u16,
    /// Offset of the first push (PC) in `interrupt`.
    pub interrupt_push_off: u16,
    /// The abort cycle (microtraps and patches).
    pub abort: Region,
}

impl ControlStore {
    /// Lay out the control store for a CPU configuration.
    pub fn new(config: &CpuConfig) -> ControlStore {
        use MicroOp::{Compute as C, IbWait, Read as R, Write as W};
        let mut map = ControlStoreMap::new();

        let ird = map.alloc("IRD", Activity::Decode, &[C, IbWait]);
        let spec1 = SpecRegions::build(&mut map, Activity::Spec1, "SPEC1");
        let spec26 = SpecRegions::build(&mut map, Activity::Spec26, "SPEC26");
        let bdisp = map.alloc("BDISP", Activity::BDisp, &[C, IbWait]);

        let mut exec = Vec::with_capacity(Opcode::COUNT);
        for info in vax_arch::opcode::OPCODE_TABLE {
            let layout = group_layout(info.group);
            let activity = match info.group {
                OpcodeGroup::Simple => Activity::ExecSimple,
                OpcodeGroup::Field => Activity::ExecField,
                OpcodeGroup::Float => Activity::ExecFloat,
                OpcodeGroup::CallRet => Activity::ExecCallRet,
                OpcodeGroup::System => Activity::ExecSystem,
                OpcodeGroup::Character => Activity::ExecCharacter,
                OpcodeGroup::Decimal => Activity::ExecDecimal,
            };
            exec.push(map.alloc(&format!("EXEC.{}", info.mnemonic), activity, layout));
        }

        let overhead = config.tb_miss_overhead as usize;
        let mut tb_ops = vec![C; overhead];
        tb_ops.push(R);
        tb_ops.push(C);
        let tb_miss = map.alloc("TBMISS", Activity::MemMgmt, &tb_ops);
        let tb_miss_read_off = overhead as u16;

        let unaligned = map.alloc("UNALIGNED", Activity::MemMgmt, &[C, C, R, W]);

        // Interrupt dispatch: ~26 cycles of state sequencing, the vector
        // read, two pushes, and cleanup.
        let mut int_ops = vec![C; 26];
        let interrupt_read_off = int_ops.len() as u16;
        int_ops.push(R);
        let interrupt_push_off = int_ops.len() as u16;
        int_ops.push(W);
        int_ops.push(W);
        int_ops.extend_from_slice(&[C; 4]);
        let interrupt = map.alloc("INT.DISPATCH", Activity::IntExcept, &int_ops);

        let abort = map.alloc("ABORT", Activity::Abort, &[C]);

        ControlStore {
            map,
            ird,
            spec1,
            spec26,
            bdisp,
            exec,
            tb_miss,
            tb_miss_read_off,
            unaligned,
            interrupt,
            interrupt_read_off,
            interrupt_push_off,
            abort,
        }
    }

    /// Execute region of an opcode.
    #[inline]
    pub fn exec_region(&self, op: Opcode) -> Region {
        self.exec[op as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_within_16k() {
        let cs = ControlStore::new(&CpuConfig::default());
        assert!(cs.map.len() <= upc_monitor::BOARD_BUCKETS);
        assert!(cs.map.len() > 500, "control store should be substantial");
    }

    #[test]
    fn decode_region_shape() {
        let cs = ControlStore::new(&CpuConfig::default());
        assert_eq!(cs.map.op(cs.ird.at(0)), MicroOp::Compute);
        assert_eq!(cs.map.op(cs.ird.at(1)), MicroOp::IbWait);
        assert_eq!(cs.map.activity(cs.ird.at(0)), Activity::Decode);
    }

    #[test]
    fn spec_routines_exist() {
        let cs = ControlStore::new(&CpuConfig::default());
        let r = cs.spec1.routine(AddressingMode::ByteDisp, SpecFlavor::Read);
        assert_eq!(r.len, 2);
        assert_eq!(cs.map.op(r.at(0)), MicroOp::Compute);
        assert_eq!(cs.map.op(r.at(1)), MicroOp::Read);
        assert_eq!(cs.map.activity(r.at(1)), Activity::Spec1);
        let w = cs
            .spec26
            .routine(AddressingMode::Register, SpecFlavor::Write);
        assert_eq!(w.len, 1);
        assert_eq!(cs.map.activity(w.at(0)), Activity::Spec26);
    }

    #[test]
    #[should_panic(expected = "no specifier routine")]
    fn literal_write_impossible() {
        let cs = ControlStore::new(&CpuConfig::default());
        let _ = cs.spec1.routine(AddressingMode::Literal, SpecFlavor::Write);
    }

    #[test]
    fn exec_regions_cover_all_opcodes() {
        let cs = ControlStore::new(&CpuConfig::default());
        assert_eq!(cs.exec.len(), Opcode::COUNT);
        let r = cs.exec_region(Opcode::Movc3);
        assert_eq!(cs.map.activity(r.entry()), Activity::ExecCharacter);
        assert!(cs.map.routine(r.entry()).contains("MOVC3"));
    }

    #[test]
    fn tb_miss_shape() {
        let config = CpuConfig::default();
        let cs = ControlStore::new(&config);
        assert_eq!(cs.map.op(cs.tb_miss.at(cs.tb_miss_read_off)), MicroOp::Read);
        assert_eq!(cs.tb_miss.len as u32, config.tb_miss_overhead + 2);
        assert_eq!(cs.map.activity(cs.tb_miss.entry()), Activity::MemMgmt);
    }

    #[test]
    fn interrupt_shape() {
        let cs = ControlStore::new(&CpuConfig::default());
        assert_eq!(
            cs.map.op(cs.interrupt.at(cs.interrupt_read_off)),
            MicroOp::Read
        );
        assert_eq!(
            cs.map.op(cs.interrupt.at(cs.interrupt_push_off)),
            MicroOp::Write
        );
    }
}
