//! CPU-side event counters.
//!
//! Most of the paper's tables are reduced from the µPC histogram; these
//! counters cover the few quantities the paper obtained from other sources
//! (instruction sizes, Table 6) or that cross-check the reduction
//! (per-branch-class taken rates, Table 2; interrupt headway, Table 7).

use vax_arch::{BranchKind, Opcode};

/// Counters accumulated by the CPU while stepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total I-stream bytes of retired instructions (Table 6).
    pub istream_bytes: u64,
    /// Dynamic count per opcode.
    pub opcode_counts: Vec<u64>,
    /// PC-changing instructions executed, by class (Table 2).
    pub branch_executed: [u64; 10],
    /// PC-changing instructions that actually changed the PC, by class.
    pub branch_taken: [u64; 10],
    /// Hardware interrupts delivered.
    pub hw_interrupts: u64,
    /// Software interrupts delivered.
    pub sw_interrupts: u64,
    /// Software interrupt *requests* (MTPR to SIRR).
    pub sw_interrupt_requests: u64,
    /// Machine checks delivered (latched parity faults turned into
    /// high-IPL interrupts through the SCB machine-check slot).
    pub machine_checks: u64,
    /// Context switches (LDPCTX executions).
    pub context_switches: u64,
    /// Exceptions dispatched (arithmetic traps etc.).
    pub exceptions: u64,
    /// Operand specifiers evaluated in first position.
    pub spec1_count: u64,
    /// Operand specifiers evaluated in positions 2–6.
    pub spec26_count: u64,
    /// Quad-width first-specifier evaluations whose repeated data µop lands
    /// on the routine's entry address (RegisterDeferred and Autoincrement
    /// data-at-entry routines). The histogram's entry count exceeds
    /// `spec1_count` by exactly this amount; the validation pass uses it to
    /// reconcile the two instruments.
    pub spec1_quad_repeats: u64,
    /// Same for specifiers in positions 2–6.
    pub spec26_quad_repeats: u64,
    /// Branch displacements present on retired instructions.
    pub branch_disps: u64,
}

impl CpuStats {
    /// Zeroed counters.
    pub fn new() -> CpuStats {
        CpuStats {
            instructions: 0,
            istream_bytes: 0,
            opcode_counts: vec![0; Opcode::COUNT],
            branch_executed: [0; 10],
            branch_taken: [0; 10],
            hw_interrupts: 0,
            sw_interrupts: 0,
            sw_interrupt_requests: 0,
            machine_checks: 0,
            context_switches: 0,
            exceptions: 0,
            spec1_count: 0,
            spec26_count: 0,
            spec1_quad_repeats: 0,
            spec26_quad_repeats: 0,
            branch_disps: 0,
        }
    }

    /// Dense index of a branch kind for the per-class arrays.
    pub fn branch_index(kind: BranchKind) -> usize {
        match kind {
            BranchKind::None => 0,
            BranchKind::SimpleCond => 1,
            BranchKind::Loop => 2,
            BranchKind::LowBit => 3,
            BranchKind::Subroutine => 4,
            BranchKind::Unconditional => 5,
            BranchKind::Case => 6,
            BranchKind::BitBranch => 7,
            BranchKind::ProcCall => 8,
            BranchKind::SystemBranch => 9,
        }
    }

    /// Record a retired PC-changing instruction.
    pub fn record_branch(&mut self, kind: BranchKind, taken: bool) {
        let i = Self::branch_index(kind);
        self.branch_executed[i] += 1;
        if taken {
            self.branch_taken[i] += 1;
        }
    }

    /// Executed count for a branch class.
    pub fn branch_executed_of(&self, kind: BranchKind) -> u64 {
        self.branch_executed[Self::branch_index(kind)]
    }

    /// Taken count for a branch class.
    pub fn branch_taken_of(&self, kind: BranchKind) -> u64 {
        self.branch_taken[Self::branch_index(kind)]
    }

    /// All interrupts delivered (Table 7's "hardware and software").
    pub fn total_interrupts(&self) -> u64 {
        self.hw_interrupts + self.sw_interrupts
    }

    /// Average instruction size in bytes (Table 6).
    pub fn avg_instruction_bytes(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.istream_bytes as f64 / self.instructions as f64
    }

    /// Every scalar counter, in declaration order — the single field list
    /// shared by [`CpuStats::merge`] and [`CpuStats::diff`], so a newly
    /// added counter cannot be summed but not diffed (or vice versa). The
    /// per-opcode and per-branch-class arrays are handled alongside.
    fn scalars(&self) -> [u64; 13] {
        [
            self.instructions,
            self.istream_bytes,
            self.hw_interrupts,
            self.sw_interrupts,
            self.sw_interrupt_requests,
            self.machine_checks,
            self.context_switches,
            self.exceptions,
            self.spec1_count,
            self.spec26_count,
            self.spec1_quad_repeats,
            self.spec26_quad_repeats,
            self.branch_disps,
        ]
    }

    fn scalars_mut(&mut self) -> [&mut u64; 13] {
        [
            &mut self.instructions,
            &mut self.istream_bytes,
            &mut self.hw_interrupts,
            &mut self.sw_interrupts,
            &mut self.sw_interrupt_requests,
            &mut self.machine_checks,
            &mut self.context_switches,
            &mut self.exceptions,
            &mut self.spec1_count,
            &mut self.spec26_count,
            &mut self.spec1_quad_repeats,
            &mut self.spec26_quad_repeats,
            &mut self.branch_disps,
        ]
    }

    /// Merge another stats block (composite workloads).
    pub fn merge(&mut self, other: &CpuStats) {
        for (a, b) in self.scalars_mut().into_iter().zip(other.scalars()) {
            *a += b;
        }
        for (a, b) in self.opcode_counts.iter_mut().zip(&other.opcode_counts) {
            *a += b;
        }
        for i in 0..10 {
            self.branch_executed[i] += other.branch_executed[i];
            self.branch_taken[i] += other.branch_taken[i];
        }
    }

    /// Counter-wise `self - earlier` (interval sampling).
    ///
    /// # Panics
    /// Panics if any counter in `earlier` exceeds its value in `self` — the
    /// snapshots were taken out of order or from different machines.
    pub fn diff(&self, earlier: &CpuStats) -> CpuStats {
        fn sub(a: u64, b: u64) -> u64 {
            a.checked_sub(b)
                .expect("CpuStats::diff: counter ran backwards")
        }
        let mut out = self.clone();
        for (o, b) in out.scalars_mut().into_iter().zip(earlier.scalars()) {
            *o = sub(*o, b);
        }
        for (o, (a, b)) in out
            .opcode_counts
            .iter_mut()
            .zip(self.opcode_counts.iter().zip(&earlier.opcode_counts))
        {
            *o = sub(*a, *b);
        }
        for i in 0..10 {
            out.branch_executed[i] = sub(self.branch_executed[i], earlier.branch_executed[i]);
            out.branch_taken[i] = sub(self.branch_taken[i], earlier.branch_taken[i]);
        }
        out
    }
}

impl Default for CpuStats {
    fn default() -> Self {
        CpuStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_recording() {
        let mut s = CpuStats::new();
        s.record_branch(BranchKind::Loop, true);
        s.record_branch(BranchKind::Loop, false);
        assert_eq!(s.branch_executed_of(BranchKind::Loop), 2);
        assert_eq!(s.branch_taken_of(BranchKind::Loop), 1);
    }

    #[test]
    fn averages_and_merge() {
        let mut a = CpuStats::new();
        a.instructions = 10;
        a.istream_bytes = 38;
        assert!((a.avg_instruction_bytes() - 3.8).abs() < 1e-9);
        let mut b = CpuStats::new();
        b.instructions = 10;
        b.istream_bytes = 42;
        b.hw_interrupts = 3;
        a.merge(&b);
        assert_eq!(a.instructions, 20);
        assert_eq!(a.istream_bytes, 80);
        assert_eq!(a.total_interrupts(), 3);
    }

    #[test]
    fn zero_instructions_safe() {
        assert_eq!(CpuStats::new().avg_instruction_bytes(), 0.0);
    }
}
