//! The flight recorder: a bounded ring of the last K retired instructions.
//!
//! When the simulator dies — an unhandled page fault, an illegal
//! instruction, an unmapped reference — the raw panic message rarely says
//! *how the machine got there*. The flight recorder keeps the last K
//! retired instructions (PC, cycle, disassembly) in a fixed-size ring and
//! dumps them to stderr just before the panic, giving every fatal error a
//! short instruction-level backtrace of simulated time.
//!
//! Disabled (capacity 0) by default: recording disassembles every retired
//! instruction into a `String`, which is far too expensive for measurement
//! runs. Enable it with [`FlightRecorder::with_capacity`] when debugging a
//! workload.

use std::collections::VecDeque;

use vax_arch::Instruction;

/// One retired instruction as remembered by the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// PC of the instruction.
    pub pc: u32,
    /// Cycle at retirement.
    pub cycle: u64,
    /// Disassembled form, e.g. `MOVL R1, R2`.
    pub disasm: String,
}

/// Bounded ring buffer of recently retired instructions.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEntry>,
}

impl FlightRecorder {
    /// A disabled recorder (capacity 0; recording is a no-op).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder keeping the most recent `capacity` instructions.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record a retirement. No-op when disabled.
    #[inline]
    pub fn record(&mut self, pc: u32, cycle: u64, insn: &Instruction) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEntry {
            pc,
            cycle,
            disasm: insn.to_string(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.ring.iter()
    }

    /// Number of retained entries (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the ring as a human-readable report (oldest first).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last {} retired instruction(s)",
            self.ring.len()
        );
        for e in &self.ring {
            let _ = writeln!(
                out,
                "  cycle {:>12}  pc {:#010x}  {}",
                e.cycle, e.pc, e.disasm
            );
        }
        out
    }

    /// Dump the report to stderr (called on fatal simulation errors).
    pub fn dump_stderr(&self) {
        if !self.ring.is_empty() {
            eprintln!("{}", self.report());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::{Opcode, Reg, Specifier};

    fn movl() -> Instruction {
        Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::register(Reg::new(1)),
                Specifier::register(Reg::new(2)),
            ],
            None,
        )
    }

    #[test]
    fn caps_at_capacity() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            fr.record(0x200 + i, i as u64, &movl());
        }
        assert_eq!(fr.len(), 4);
        let pcs: Vec<u32> = fr.entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0x206, 0x207, 0x208, 0x209], "keeps the newest");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut fr = FlightRecorder::disabled();
        fr.record(0x200, 1, &movl());
        assert!(fr.is_empty());
        assert!(!fr.is_enabled());
    }

    #[test]
    fn report_contains_disassembly() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.record(0x200, 42, &movl());
        let rep = fr.report();
        assert!(rep.contains("MOVL"), "{rep}");
        assert!(rep.contains("0x00000200"), "{rep}");
    }
}
