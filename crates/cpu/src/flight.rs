//! The flight recorder: a bounded ring of the last K retired instructions.
//!
//! When the simulator dies — an unhandled page fault, an illegal
//! instruction, an unmapped reference — the raw panic message rarely says
//! *how the machine got there*. The flight recorder keeps the last K
//! retired instructions (PC, cycle, disassembly) in a fixed-size ring and
//! dumps them to stderr just before the panic, giving every fatal error a
//! short instruction-level backtrace of simulated time.
//!
//! Disabled (capacity 0) by default: recording disassembles every retired
//! instruction into a `String`, which is far too expensive for measurement
//! runs. Enable it with [`SharedFlightRecorder::with_capacity`] when
//! debugging a workload.
//!
//! The CPU holds a [`SharedFlightRecorder`] — a handle to a shared ring —
//! so the same recorder can also be registered with a process-wide panic
//! hook ([`SharedFlightRecorder::register_panic_dump`]): if the simulator
//! panics anywhere (not only through the CPU's own fatal-error path), the
//! hook dumps the ring to stderr before the process unwinds.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, Once};

use vax_arch::Instruction;

/// One retired instruction as remembered by the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// PC of the instruction.
    pub pc: u32,
    /// Cycle at retirement.
    pub cycle: u64,
    /// Disassembled form, e.g. `MOVL R1, R2`.
    pub disasm: String,
}

/// Bounded ring buffer of recently retired instructions.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEntry>,
}

impl FlightRecorder {
    /// A disabled recorder (capacity 0; recording is a no-op).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder keeping the most recent `capacity` instructions.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record a retirement. No-op when disabled.
    #[inline]
    pub fn record(&mut self, pc: u32, cycle: u64, insn: &Instruction) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEntry {
            pc,
            cycle,
            disasm: insn.to_string(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.ring.iter()
    }

    /// Number of retained entries (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the ring as a human-readable report (oldest first).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last {} retired instruction(s)",
            self.ring.len()
        );
        for e in &self.ring {
            let _ = writeln!(
                out,
                "  cycle {:>12}  pc {:#010x}  {}",
                e.cycle, e.pc, e.disasm
            );
        }
        out
    }

    /// Dump the report to stderr (called on fatal simulation errors).
    pub fn dump_stderr(&self) {
        if !self.ring.is_empty() {
            eprintln!("{}", self.report());
        }
    }
}

/// A shareable handle to a [`FlightRecorder`].
///
/// The CPU records through this handle on every retirement; a clone of the
/// same handle can be registered with the process panic hook, so the ring
/// is dumped even when the failure is a plain Rust panic rather than a
/// simulated fatal error. The `enabled` flag is cached outside the lock:
/// a disabled recorder (the default) costs one branch per retirement.
#[derive(Debug, Clone, Default)]
pub struct SharedFlightRecorder {
    enabled: bool,
    inner: Arc<Mutex<FlightRecorder>>,
}

impl SharedFlightRecorder {
    /// A disabled recorder (recording is a no-op).
    pub fn disabled() -> SharedFlightRecorder {
        SharedFlightRecorder::default()
    }

    /// A recorder keeping the most recent `capacity` instructions.
    pub fn with_capacity(capacity: usize) -> SharedFlightRecorder {
        SharedFlightRecorder {
            enabled: capacity > 0,
            inner: Arc::new(Mutex::new(FlightRecorder::with_capacity(capacity))),
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a retirement. No-op when disabled.
    #[inline]
    pub fn record(&self, pc: u32, cycle: u64, insn: &Instruction) {
        if !self.enabled {
            return;
        }
        self.inner.lock().unwrap().record(pc, cycle, insn);
    }

    /// Number of retained entries (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// A copy of the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        self.inner.lock().unwrap().entries().cloned().collect()
    }

    /// Render the ring as a human-readable report (oldest first).
    pub fn report(&self) -> String {
        self.inner.lock().unwrap().report()
    }

    /// Dump the report to stderr (called on fatal simulation errors).
    pub fn dump_stderr(&self) {
        self.inner.lock().unwrap().dump_stderr();
    }

    /// Make this recorder the one the process panic hook dumps. The hook is
    /// installed once per process (chaining to the previous hook); the most
    /// recently registered recorder wins, so a harness running several
    /// systems in sequence registers each one as it starts.
    pub fn register_panic_dump(&self) {
        *panic_target().lock().unwrap() = Some(self.inner.clone());
        PANIC_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                prev(info);
                if let Some(report) = panic_dump() {
                    eprintln!("{report}");
                }
            }));
        });
    }
}

static PANIC_HOOK: Once = Once::new();

fn panic_target() -> &'static Mutex<Option<Arc<Mutex<FlightRecorder>>>> {
    static TARGET: Mutex<Option<Arc<Mutex<FlightRecorder>>>> = Mutex::new(None);
    &TARGET
}

fn last_panic_report() -> &'static Mutex<Option<String>> {
    static LAST: Mutex<Option<String>> = Mutex::new(None);
    &LAST
}

/// Render the registered recorder's report, remembering it for
/// [`take_last_panic_report`]. Returns `None` when no recorder is
/// registered, the ring is empty, or a lock is unavailable (`try_lock`:
/// the panic may have happened while the recorder was mid-update, and the
/// hook must never deadlock).
pub fn panic_dump() -> Option<String> {
    let target = panic_target().try_lock().ok()?.clone()?;
    let recorder = target.try_lock().ok()?;
    if recorder.is_empty() {
        return None;
    }
    let report = recorder.report();
    if let Ok(mut last) = last_panic_report().try_lock() {
        *last = Some(report.clone());
    }
    Some(report)
}

/// Take the report produced by the most recent [`panic_dump`], if any.
/// Lets tests observe what the panic hook printed to stderr.
pub fn take_last_panic_report() -> Option<String> {
    last_panic_report().lock().unwrap().take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::{Opcode, Reg, Specifier};

    fn movl() -> Instruction {
        Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::register(Reg::new(1)),
                Specifier::register(Reg::new(2)),
            ],
            None,
        )
    }

    #[test]
    fn caps_at_capacity() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            fr.record(0x200 + i, i as u64, &movl());
        }
        assert_eq!(fr.len(), 4);
        let pcs: Vec<u32> = fr.entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0x206, 0x207, 0x208, 0x209], "keeps the newest");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut fr = FlightRecorder::disabled();
        fr.record(0x200, 1, &movl());
        assert!(fr.is_empty());
        assert!(!fr.is_enabled());
    }

    #[test]
    fn report_contains_disassembly() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.record(0x200, 42, &movl());
        let rep = fr.report();
        assert!(rep.contains("MOVL"), "{rep}");
        assert!(rep.contains("0x00000200"), "{rep}");
    }

    #[test]
    fn shared_handle_clones_share_the_ring() {
        let a = SharedFlightRecorder::with_capacity(4);
        let b = a.clone();
        a.record(0x200, 1, &movl());
        assert_eq!(b.len(), 1);
        assert_eq!(b.snapshot()[0].pc, 0x200);
        let disabled = SharedFlightRecorder::disabled();
        disabled.record(0x200, 1, &movl());
        assert!(disabled.is_empty() && !disabled.is_enabled());
    }

    #[test]
    fn panic_dump_reports_registered_recorder() {
        let fr = SharedFlightRecorder::with_capacity(2);
        fr.register_panic_dump();
        assert_eq!(panic_dump(), None, "empty ring produces no report");
        fr.record(0x300, 7, &movl());
        let report = panic_dump().expect("non-empty ring must report");
        assert!(report.contains("MOVL"), "{report}");
        assert_eq!(take_last_panic_report().as_deref(), Some(report.as_str()));
        assert_eq!(take_last_panic_report(), None, "take drains the slot");
        // An actual panic (even a caught one) runs the hook.
        let _ = std::panic::catch_unwind(|| panic!("injected test panic"));
        let hooked = take_last_panic_report().expect("hook must have dumped");
        assert!(hooked.contains("0x00000300"), "{hooked}");
    }
}
