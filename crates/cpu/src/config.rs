//! CPU configuration knobs.

use vax_mem::VirtAddr;

/// Configuration of the simulated 11/780 CPU.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Base virtual address (system space) of the system control block; the
    /// kernel writes service-routine addresses here. See [`crate::ebox`]
    /// vector constants.
    pub scb_base: VirtAddr,
    /// Interval-timer period in cycles; `None` disables the clock.
    /// 10 ms on the real machine ≈ 50 000 cycles at 200 ns; timesharing
    /// simulations usually use a shorter quantum to reach the paper's
    /// interrupt headway on feasible run lengths.
    pub timer_interval: Option<u64>,
    /// IPL of the interval timer interrupt.
    pub timer_ipl: u8,
    /// One abort cycle is charged every `patch_interval` cycles, modelling
    /// the field-installed microcode patches ("one [abort] for each
    /// microcode patch"). `None` disables.
    pub patch_interval: Option<u64>,
    /// Model the 780's literal/register operand optimization, which fuses
    /// the first execute cycle into the last specifier cycle for SIMPLE and
    /// FIELD instructions.
    pub fusion: bool,
    /// Overhead compute cycles in the TB-miss service routine (the paper's
    /// 21.6-cycle average is this, plus PTE reads and their stalls).
    pub tb_miss_overhead: u32,
    /// Enable the host-side decoded-instruction cache
    /// ([`crate::icache::DecodeCache`]). Fetch/decode is untimed, so this
    /// changes no simulated behaviour — only wall-clock speed. Off is kept
    /// as a test oracle for the equivalence property.
    pub decode_cache: bool,
}

impl CpuConfig {
    /// The configuration used for the paper-reproduction experiments.
    pub const VAX_780: CpuConfig = CpuConfig {
        scb_base: VirtAddr(0x8000_0000),
        timer_interval: Some(9000),
        timer_ipl: 22,
        patch_interval: Some(133),
        fusion: true,
        tb_miss_overhead: 18,
        decode_cache: true,
    };
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::VAX_780
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = CpuConfig::default();
        assert!(c.fusion);
        assert_eq!(c.timer_ipl, 22);
        assert!(c.scb_base.is_system());
    }
}
