//! The decoded-instruction cache (predecode cache).
//!
//! `Cpu::step` used to re-fetch and re-decode every instruction from
//! simulated memory; for straight-line and looping code that work is
//! identical step after step. This cache memoizes [`vax_arch::decode`]
//! results keyed by virtual PC, in the style of dynamic-translation
//! simulators' predecode tables. It is a pure *host-side* accelerator:
//! fetch/decode in this simulator is untimed (I-stream timing is carried by
//! the IB model), so a hit changes no histogram bucket, stat counter, or
//! trace event — simulated behaviour is bit-for-bit identical with the
//! cache on or off, which `CpuConfig::decode_cache` lets tests prove.
//!
//! # Validity
//!
//! A cached decode is served only while both of these hold:
//!
//! * **The instruction bytes are unchanged.** On insert, the CPU registers
//!   the bytes' physical range with the memory system's
//!   [`vax_mem::CodeWatch`]; any overlapping store (self-modifying code),
//!   page remap, or untracked physical write advances the *code epoch*, and
//!   [`DecodeCache::lookup`] flushes everything on epoch mismatch.
//! * **The PC still translates the same way.** Entries are tagged with a
//!   *mapping context*: an id for the page-table register tuple
//!   ([`vax_mem::PageTables`]) in force when the decode was cached. A
//!   context switch changes the tuple, so process A's entries are never
//!   served to process B — and survive B's run, because switching *away*
//!   does not flush them. Rewriting a PTE under cached code is caught by
//!   the code watch too: the fill path translates through
//!   `MemorySystem::raw_translate_watched`, which watches the PTE bytes it
//!   consults, so a store into page-table memory bumps the epoch exactly
//!   like a store into the code itself. TBIA/TBIS additionally flush the
//!   cache outright (defense in depth; they are rare).
//!
//! Geometry: direct-mapped, byte-granular PC index. Conflict misses only
//! cost a re-decode, never correctness.

use vax_arch::Instruction;
use vax_mem::PageTables;

/// Slots in the direct-mapped cache (power of two). Sized for several
/// processes' working sets at once: contexts share the same virtual PC
/// ranges, so the index mixes the context id to keep them from thrashing
/// one another's slots (~2 MB of host memory at 16 K slots).
pub const DECODE_CACHE_SLOTS: usize = 16384;

/// Most mapping contexts remembered at once; beyond this the registry and
/// cache reset (a backstop — real runs hold one context per process).
const MAX_CONTEXTS: usize = 64;

/// An empty slot. Valid tags always have a nonzero context field above
/// bit 32, so 0 can never match.
const NO_TAG: u64 = 0;

/// Host-side hit/miss/flush counters (not part of any simulated
/// measurement — these never appear in exports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the decoder.
    pub misses: u64,
    /// Whole-cache invalidations (epoch changes + explicit flushes).
    pub flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// `(context id + 1) << 32 | pc`, or [`NO_TAG`].
    tag: u64,
    insn: Instruction,
}

/// A direct-mapped cache of decoded instructions keyed by virtual PC and
/// mapping context.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    slots: Vec<Slot>,
    /// The memory system's code epoch this cache's contents are valid for.
    epoch: u64,
    /// Registry of page-table tuples; a tuple's index is its context id.
    ctxs: Vec<PageTables>,
    /// Context id resolved for `cur_tables` (one-entry memo: table tuples
    /// change only at context switches, so this compare is the per-step
    /// fast path).
    cur_ctx: u32,
    cur_tables: Option<PageTables>,
    stats: DecodeCacheStats,
}

impl DecodeCache {
    /// An empty cache, valid for epoch 0.
    pub fn new() -> DecodeCache {
        let empty = Slot {
            tag: NO_TAG,
            // Placeholder body; never read while the tag is NO_TAG.
            insn: Instruction {
                opcode: vax_arch::Opcode::Nop,
                specifiers: vax_arch::SpecList::new(),
                branch_disp: None,
                len: 1,
            },
        };
        DecodeCache {
            slots: vec![empty; DECODE_CACHE_SLOTS],
            epoch: 0,
            ctxs: Vec::new(),
            cur_ctx: 0,
            cur_tables: None,
            stats: DecodeCacheStats::default(),
        }
    }

    /// Resolve the context id for `tables`, registering it if new.
    fn context(&mut self, tables: &PageTables) -> u32 {
        if self.cur_tables.as_ref() == Some(tables) {
            return self.cur_ctx;
        }
        let id = match self.ctxs.iter().position(|t| t == tables) {
            Some(i) => i as u32,
            None => {
                if self.ctxs.len() >= MAX_CONTEXTS {
                    self.flush();
                    self.ctxs.clear();
                }
                self.ctxs.push(*tables);
                (self.ctxs.len() - 1) as u32
            }
        };
        self.cur_ctx = id;
        self.cur_tables = Some(*tables);
        id
    }

    #[inline]
    fn tag(ctx: u32, pc: u32) -> u64 {
        ((ctx as u64 + 1) << 32) | pc as u64
    }

    /// Slot index: byte-granular PC, perturbed per context so that
    /// processes sharing a virtual code range don't contend for the same
    /// slots.
    #[inline]
    fn index(ctx: u32, pc: u32) -> usize {
        (pc as usize ^ (ctx as usize).wrapping_mul(0x9E37_79B1)) & (DECODE_CACHE_SLOTS - 1)
    }

    /// Look up the decode for `pc` under the current `tables`, first
    /// syncing with the memory system's code epoch: on mismatch the whole
    /// cache flushes (watched bytes may have changed) before the probe.
    #[inline]
    pub fn lookup(&mut self, pc: u32, code_epoch: u64, tables: &PageTables) -> Option<Instruction> {
        if self.epoch != code_epoch {
            self.flush();
            self.epoch = code_epoch;
        }
        let ctx = self.context(tables);
        let slot = &self.slots[Self::index(ctx, pc)];
        if slot.tag == Self::tag(ctx, pc) {
            self.stats.hits += 1;
            Some(slot.insn)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Install the decode for `pc` under the context of the immediately
    /// preceding [`DecodeCache::lookup`]. The caller must have registered
    /// the instruction's byte range with the memory system's code watch
    /// first.
    #[inline]
    pub fn insert(&mut self, pc: u32, insn: Instruction) {
        self.slots[Self::index(self.cur_ctx, pc)] = Slot {
            tag: Self::tag(self.cur_ctx, pc),
            insn,
        };
    }

    /// Drop every cached decode, for every context.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.tag = NO_TAG;
        }
        self.stats.flushes += 1;
    }

    /// Host-side counters.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

impl Default for DecodeCache {
    fn default() -> DecodeCache {
        DecodeCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::{decode, Opcode};
    use vax_mem::{PhysAddr, VirtAddr};

    fn movl() -> Instruction {
        decode(&[0xD0, 0x51, 0x52]).unwrap()
    }

    fn tables(p0br: u32) -> PageTables {
        PageTables {
            sbr: PhysAddr(0x10000),
            slr: 64,
            p0br: VirtAddr(p0br),
            p0lr: 16,
            p1br: VirtAddr(0x8000_0200),
            p1lr: 16,
        }
    }

    #[test]
    fn miss_insert_hit() {
        let mut c = DecodeCache::new();
        let t = tables(0x8000_0000);
        assert_eq!(c.lookup(0x200, 0, &t), None);
        c.insert(0x200, movl());
        let hit = c.lookup(0x200, 0, &t).expect("hit after insert");
        assert_eq!(hit.opcode, Opcode::Movl);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn epoch_change_flushes() {
        let mut c = DecodeCache::new();
        let t = tables(0x8000_0000);
        c.lookup(0x200, 0, &t);
        c.insert(0x200, movl());
        assert!(c.lookup(0x200, 0, &t).is_some());
        assert_eq!(c.lookup(0x200, 1, &t), None, "new epoch drops the entry");
        assert!(c.stats().flushes >= 1);
        // Same epoch again: still gone until reinserted.
        assert_eq!(c.lookup(0x200, 1, &t), None);
    }

    #[test]
    fn contexts_do_not_cross_serve() {
        let mut c = DecodeCache::new();
        let (ta, tb) = (tables(0x8000_0000), tables(0x8000_1000));
        c.lookup(0x200, 0, &ta);
        c.insert(0x200, movl());
        // Same PC under a different page-table tuple: miss, not A's decode.
        assert_eq!(c.lookup(0x200, 0, &tb), None);
        // A's entry survived B's run.
        assert!(c.lookup(0x200, 0, &ta).is_some());
    }

    #[test]
    fn distinct_pcs_do_not_alias() {
        let mut c = DecodeCache::new();
        let t = tables(0x8000_0000);
        c.lookup(0x200, 0, &t);
        c.insert(0x200, movl());
        // Same slot index (0x200 + SLOTS), different tag.
        let other = 0x200 + DECODE_CACHE_SLOTS as u32;
        assert_eq!(c.lookup(other, 0, &t), None);
        c.insert(other, movl());
        assert_eq!(c.lookup(0x200, 0, &t), None, "conflict eviction, not a hit");
    }

    #[test]
    fn context_registry_overflow_resets() {
        let mut c = DecodeCache::new();
        let t0 = tables(0);
        c.lookup(0x200, 0, &t0);
        c.insert(0x200, movl());
        for i in 1..=MAX_CONTEXTS as u32 {
            c.lookup(0x200, 0, &tables(i * 0x1000));
        }
        // The registry reset flushed everything; no stale cross-context hit.
        assert_eq!(c.lookup(0x200, 0, &t0), None);
    }
}
