//! # vax-arch
//!
//! Definitions of the VAX instruction-set architecture as needed to reproduce
//! Emer & Clark, *A Characterization of Processor Performance in the
//! VAX-11/780* (ISCA 1984).
//!
//! This crate is the architectural substrate of the reproduction: it knows
//! what a VAX instruction *is* — opcodes and their operand signatures,
//! operand-specifier addressing modes, data types, the register file and the
//! processor status longword — and how instructions are encoded into and
//! decoded from the instruction stream. It deliberately knows nothing about
//! *time*; timing is the business of the `vax-cpu` crate.
//!
//! The opcode inventory covers every instruction group the paper's Table 1
//! reports (SIMPLE, FIELD, FLOAT, CALL/RET, SYSTEM, CHARACTER, DECIMAL) with
//! the real VAX opcode byte values, so that generated workloads are genuine
//! VAX machine code.
//!
//! ## Example
//!
//! ```
//! use vax_arch::{decode, Opcode};
//!
//! // MOVL R1, R2  ==  D0 51 52
//! let bytes = [0xD0, 0x51, 0x52];
//! let insn = decode(&bytes).unwrap();
//! assert_eq!(insn.opcode, Opcode::Movl);
//! assert_eq!(insn.len, 3);
//! ```

pub mod datatype;
pub mod decode;
pub mod encode;
pub mod group;
pub mod insn;
pub mod mode;
pub mod opcode;
pub mod psl;
pub mod regs;
pub mod specifier;
pub mod speclist;

pub use datatype::{AccessType, DataType, OperandKind};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use group::{BranchKind, OpcodeGroup};
pub use insn::Instruction;
pub use mode::AddressingMode;
pub use opcode::{Opcode, OpcodeInfo};
pub use psl::Psl;
pub use regs::Reg;
pub use specifier::Specifier;
pub use speclist::{SpecList, MAX_SPECIFIERS};
