//! The VAX general register file names.

use std::fmt;

/// A general register number (R0–R15, with the architectural aliases
/// AP=R12, FP=R13, SP=R14, PC=R15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Argument pointer, R12.
    pub const AP: Reg = Reg(12);
    /// Frame pointer, R13.
    pub const FP: Reg = Reg(13);
    /// Stack pointer, R14.
    pub const SP: Reg = Reg(14);
    /// Program counter, R15.
    pub const PC: Reg = Reg(15);

    /// Construct from a register number.
    ///
    /// # Panics
    /// Panics if `n > 15`.
    pub const fn new(n: u8) -> Reg {
        assert!(n < 16, "register number out of range");
        Reg(n)
    }

    /// The register number, 0–15.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// True for R15.
    pub const fn is_pc(self) -> bool {
        self.0 == 15
    }

    /// True for R14.
    pub const fn is_sp(self) -> bool {
        self.0 == 14
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            12 => f.write_str("AP"),
            13 => f.write_str("FP"),
            14 => f.write_str("SP"),
            15 => f.write_str("PC"),
            n => write!(f, "R{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases() {
        assert_eq!(Reg::AP.number(), 12);
        assert_eq!(Reg::FP.number(), 13);
        assert_eq!(Reg::SP.number(), 14);
        assert_eq!(Reg::PC.number(), 15);
        assert!(Reg::PC.is_pc());
        assert!(Reg::SP.is_sp());
        assert!(!Reg::new(3).is_pc());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(5).to_string(), "R5");
        assert_eq!(Reg::SP.to_string(), "SP");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(16);
    }
}
