//! VAX data types and operand access types.
//!
//! Every operand specifier of a VAX instruction has a *data type* (how many
//! bytes it names) and an *access type* (what the instruction does with it),
//! both defined by the opcode. These drive instruction-stream size accounting
//! (paper Table 6) and read/write frequency accounting (paper Table 5).

use std::fmt;

/// The data type of an instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 8-bit integer.
    Byte,
    /// 16-bit integer.
    Word,
    /// 32-bit integer (the natural VAX unit).
    Long,
    /// 64-bit integer.
    Quad,
    /// 32-bit F_floating.
    FFloat,
    /// 64-bit D_floating.
    DFloat,
}

impl DataType {
    /// Size of the type in bytes.
    ///
    /// ```
    /// use vax_arch::DataType;
    /// assert_eq!(DataType::Long.size(), 4);
    /// assert_eq!(DataType::DFloat.size(), 8);
    /// ```
    pub const fn size(self) -> u32 {
        match self {
            DataType::Byte => 1,
            DataType::Word => 2,
            DataType::Long | DataType::FFloat => 4,
            DataType::Quad | DataType::DFloat => 8,
        }
    }

    /// Number of aligned-longword memory references needed to move a datum of
    /// this type (the 780 datapath is 32 bits wide; quad/D-float take two).
    pub const fn longwords(self) -> u32 {
        match self.size() {
            1 | 2 | 4 => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Byte => "byte",
            DataType::Word => "word",
            DataType::Long => "long",
            DataType::Quad => "quad",
            DataType::FFloat => "f_float",
            DataType::DFloat => "d_float",
        };
        f.write_str(s)
    }
}

/// What an instruction does with an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Operand is read.
    Read,
    /// Operand is written.
    Write,
    /// Operand is read then written (modify).
    Modify,
    /// The *address* of the operand is computed but the data is not
    /// touched by specifier microcode (e.g. `MOVAL`, string base addresses).
    Address,
    /// A variable-length bit field base (FIELD group); address calculation
    /// only, the field data is handled by execute microcode.
    Field,
}

/// The full operand signature element: access plus data type, or a branch
/// displacement of a given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// General operand specifier with access and data type.
    Spec(AccessType, DataType),
    /// A PC-relative branch displacement embedded in the instruction stream
    /// (1 or 2 bytes). Not an operand specifier (paper Table 3 counts these
    /// separately).
    Branch(BranchWidth),
}

/// Width of an embedded branch displacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchWidth {
    /// Signed 8-bit displacement.
    Byte,
    /// Signed 16-bit displacement.
    Word,
}

impl BranchWidth {
    /// Size in bytes of the displacement in the instruction stream.
    pub const fn size(self) -> u32 {
        match self {
            BranchWidth::Byte => 1,
            BranchWidth::Word => 2,
        }
    }
}

impl OperandKind {
    /// Convenience constructor: read operand.
    pub const fn r(dt: DataType) -> Self {
        OperandKind::Spec(AccessType::Read, dt)
    }
    /// Convenience constructor: write operand.
    pub const fn w(dt: DataType) -> Self {
        OperandKind::Spec(AccessType::Write, dt)
    }
    /// Convenience constructor: modify operand.
    pub const fn m(dt: DataType) -> Self {
        OperandKind::Spec(AccessType::Modify, dt)
    }
    /// Convenience constructor: address operand.
    pub const fn a(dt: DataType) -> Self {
        OperandKind::Spec(AccessType::Address, dt)
    }
    /// Convenience constructor: bit-field base operand.
    pub const fn v(dt: DataType) -> Self {
        OperandKind::Spec(AccessType::Field, dt)
    }
    /// Convenience constructor: byte branch displacement.
    pub const fn bb() -> Self {
        OperandKind::Branch(BranchWidth::Byte)
    }
    /// Convenience constructor: word branch displacement.
    pub const fn bw() -> Self {
        OperandKind::Branch(BranchWidth::Word)
    }

    /// True if this operand is an embedded branch displacement.
    pub const fn is_branch_disp(self) -> bool {
        matches!(self, OperandKind::Branch(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::Byte.size(), 1);
        assert_eq!(DataType::Word.size(), 2);
        assert_eq!(DataType::Long.size(), 4);
        assert_eq!(DataType::Quad.size(), 8);
        assert_eq!(DataType::FFloat.size(), 4);
        assert_eq!(DataType::DFloat.size(), 8);
    }

    #[test]
    fn longword_counts() {
        assert_eq!(DataType::Byte.longwords(), 1);
        assert_eq!(DataType::Long.longwords(), 1);
        assert_eq!(DataType::Quad.longwords(), 2);
        assert_eq!(DataType::DFloat.longwords(), 2);
    }

    #[test]
    fn branch_widths() {
        assert_eq!(BranchWidth::Byte.size(), 1);
        assert_eq!(BranchWidth::Word.size(), 2);
        assert!(OperandKind::bb().is_branch_disp());
        assert!(!OperandKind::r(DataType::Long).is_branch_disp());
    }

    #[test]
    fn display() {
        assert_eq!(DataType::FFloat.to_string(), "f_float");
    }
}
