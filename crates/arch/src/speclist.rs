//! Inline specifier storage for decoded instructions.
//!
//! A VAX instruction carries at most six operand specifiers
//! ([`crate::Opcode::specifier_count`] is bounded by the architecture), so a
//! decoded instruction can hold them in a fixed inline array instead of a
//! heap `Vec`. This makes [`crate::Instruction`] `Copy` and the decoder
//! allocation-free — the property the simulator's hot step loop (and its
//! decoded-instruction cache) relies on.

use crate::mode::AddressingMode;
use crate::regs::Reg;
use crate::specifier::Specifier;
use std::fmt;
use std::ops::Deref;

/// Maximum operand specifiers in one VAX instruction (ADDP6 et al.).
pub const MAX_SPECIFIERS: usize = 6;

const EMPTY: Specifier = Specifier {
    mode: AddressingMode::Literal,
    reg: Reg::new(0),
    value: 0,
    index: None,
};

/// A fixed-capacity inline list of operand specifiers.
///
/// Dereferences to `[Specifier]`, so indexing, iteration, and `len()` work
/// exactly as they did when [`crate::Instruction::specifiers`] was a `Vec`.
#[derive(Clone, Copy)]
pub struct SpecList {
    items: [Specifier; MAX_SPECIFIERS],
    len: u8,
}

impl SpecList {
    /// An empty list.
    pub const fn new() -> SpecList {
        SpecList {
            items: [EMPTY; MAX_SPECIFIERS],
            len: 0,
        }
    }

    /// Append a specifier.
    ///
    /// # Panics
    /// Panics if the list already holds [`MAX_SPECIFIERS`] entries.
    #[inline]
    pub fn push(&mut self, spec: Specifier) {
        assert!(
            (self.len as usize) < MAX_SPECIFIERS,
            "more than {MAX_SPECIFIERS} specifiers in one instruction"
        );
        self.items[self.len as usize] = spec;
        self.len += 1;
    }

    /// The specifiers as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Specifier] {
        &self.items[..self.len as usize]
    }
}

impl Default for SpecList {
    fn default() -> SpecList {
        SpecList::new()
    }
}

impl Deref for SpecList {
    type Target = [Specifier];

    #[inline]
    fn deref(&self) -> &[Specifier] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a SpecList {
    type Item = &'a Specifier;
    type IntoIter = std::slice::Iter<'a, Specifier>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for SpecList {
    fn eq(&self, other: &SpecList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SpecList {}

impl fmt::Debug for SpecList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[Specifier]> for SpecList {
    fn from(specs: &[Specifier]) -> SpecList {
        let mut list = SpecList::new();
        for &s in specs {
            list.push(s);
        }
        list
    }
}

impl From<Vec<Specifier>> for SpecList {
    fn from(specs: Vec<Specifier>) -> SpecList {
        SpecList::from(specs.as_slice())
    }
}

impl<const N: usize> From<[Specifier; N]> for SpecList {
    fn from(specs: [Specifier; N]) -> SpecList {
        SpecList::from(specs.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iterate() {
        let mut l = SpecList::new();
        assert!(l.is_empty());
        l.push(Specifier::literal(5));
        l.push(Specifier::register(Reg::new(3)));
        assert_eq!(l.len(), 2);
        assert_eq!(l[1], Specifier::register(Reg::new(3)));
        assert_eq!(l.iter().count(), 2);
        let same = SpecList::from(vec![
            Specifier::literal(5),
            Specifier::register(Reg::new(3)),
        ]);
        assert_eq!(l, same);
    }

    #[test]
    fn equality_ignores_unused_slots() {
        let mut a = SpecList::new();
        a.push(Specifier::literal(1));
        a.push(Specifier::literal(2));
        // Different construction history, same visible contents.
        let b = SpecList::from([Specifier::literal(1), Specifier::literal(2)]);
        assert_eq!(a, b);
        a.push(Specifier::literal(3));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "more than 6 specifiers")]
    fn overflow_panics() {
        let mut l = SpecList::new();
        for _ in 0..7 {
            l.push(Specifier::literal(0));
        }
    }
}
