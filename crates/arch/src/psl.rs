//! The processor status longword (condition codes, IPL, access modes).

/// Processor access modes, most to least privileged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessMode {
    /// Kernel mode (VMS executive core).
    Kernel = 0,
    /// Executive mode.
    Executive = 1,
    /// Supervisor mode.
    Supervisor = 2,
    /// User mode.
    User = 3,
}

impl AccessMode {
    /// Decode from the 2-bit PSL field.
    pub const fn from_bits(bits: u32) -> AccessMode {
        match bits & 3 {
            0 => AccessMode::Kernel,
            1 => AccessMode::Executive,
            2 => AccessMode::Supervisor,
            _ => AccessMode::User,
        }
    }
}

/// The processor status longword.
///
/// Only the fields the simulation needs are modelled: the four condition
/// codes, the interrupt priority level, the current access mode, and the
/// interrupt-stack flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Psl {
    /// Negative condition code.
    pub n: bool,
    /// Zero condition code.
    pub z: bool,
    /// Overflow condition code.
    pub v: bool,
    /// Carry condition code.
    pub c: bool,
    /// Interrupt priority level, 0–31.
    pub ipl: u8,
    /// Current access mode.
    pub cur_mode: AccessMode,
    /// Executing on the interrupt stack.
    pub is: bool,
}

impl Psl {
    /// A fresh user-mode PSL with all condition codes clear.
    pub const fn new_user() -> Psl {
        Psl {
            n: false,
            z: false,
            v: false,
            c: false,
            ipl: 0,
            cur_mode: AccessMode::User,
            is: false,
        }
    }

    /// A fresh kernel-mode PSL at the given IPL.
    pub const fn new_kernel(ipl: u8) -> Psl {
        Psl {
            n: false,
            z: false,
            v: false,
            c: false,
            ipl,
            cur_mode: AccessMode::Kernel,
            is: false,
        }
    }

    /// Pack into the architectural 32-bit representation.
    pub fn to_u32(self) -> u32 {
        (self.c as u32)
            | (self.v as u32) << 1
            | (self.z as u32) << 2
            | (self.n as u32) << 3
            | (self.ipl as u32 & 0x1F) << 16
            | (self.cur_mode as u32) << 24
            | (self.is as u32) << 26
    }

    /// Unpack from the architectural 32-bit representation.
    pub fn from_u32(raw: u32) -> Psl {
        Psl {
            c: raw & 1 != 0,
            v: raw & 2 != 0,
            z: raw & 4 != 0,
            n: raw & 8 != 0,
            ipl: ((raw >> 16) & 0x1F) as u8,
            cur_mode: AccessMode::from_bits(raw >> 24),
            is: raw & (1 << 26) != 0,
        }
    }

    /// Set N and Z from a signed 32-bit result; clears V and C.
    pub fn set_nz(&mut self, value: i32) {
        self.n = value < 0;
        self.z = value == 0;
        self.v = false;
        self.c = false;
    }
}

impl Default for Psl {
    fn default() -> Self {
        Psl::new_user()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut psl = Psl::new_kernel(24);
        psl.n = true;
        psl.c = true;
        psl.is = true;
        let packed = psl.to_u32();
        assert_eq!(Psl::from_u32(packed), psl);
    }

    #[test]
    fn set_nz() {
        let mut psl = Psl::new_user();
        psl.set_nz(-5);
        assert!(psl.n && !psl.z);
        psl.set_nz(0);
        assert!(!psl.n && psl.z);
        psl.set_nz(7);
        assert!(!psl.n && !psl.z);
    }

    #[test]
    fn mode_bits() {
        assert_eq!(AccessMode::from_bits(0), AccessMode::Kernel);
        assert_eq!(AccessMode::from_bits(3), AccessMode::User);
        let psl = Psl::new_user();
        assert_eq!(Psl::from_u32(psl.to_u32()).cur_mode, AccessMode::User);
    }
}
