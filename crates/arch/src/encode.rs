//! Instruction encoder: turns [`Instruction`]s into VAX machine code bytes.

use crate::datatype::{BranchWidth, OperandKind};
use crate::insn::Instruction;
use crate::mode::AddressingMode;
use crate::specifier::Specifier;

/// Encode one instruction, appending to `out`. Returns the number of bytes
/// emitted (always equal to `insn.len`).
///
/// # Panics
/// Panics if a specifier's `value` does not fit its mode's extension width
/// (e.g. a byte displacement outside −128..=127); construct specifiers with
/// [`Specifier::displacement`] to get automatic width selection.
pub fn encode_into(insn: &Instruction, out: &mut Vec<u8>) -> u32 {
    let start = out.len();
    out.push(insn.opcode.byte());
    let mut spec_i = 0;
    for op in insn.opcode.operands() {
        match op {
            OperandKind::Spec(_, dt) => {
                encode_specifier(&insn.specifiers[spec_i], dt.size(), out);
                spec_i += 1;
            }
            OperandKind::Branch(BranchWidth::Byte) => {
                let disp = insn.branch_disp.expect("missing branch displacement");
                assert!(
                    (-128..=127).contains(&disp),
                    "byte branch displacement {disp} out of range"
                );
                out.push(disp as i8 as u8);
            }
            OperandKind::Branch(BranchWidth::Word) => {
                let disp = insn.branch_disp.expect("missing branch displacement");
                assert!(
                    (-32768..=32767).contains(&disp),
                    "word branch displacement {disp} out of range"
                );
                out.extend_from_slice(&(disp as i16).to_le_bytes());
            }
        }
    }
    let emitted = (out.len() - start) as u32;
    debug_assert_eq!(emitted, insn.len, "encoded length mismatch for {insn}");
    emitted
}

/// Encode one instruction into a fresh byte vector.
///
/// ```
/// use vax_arch::{encode, Instruction, Opcode, Specifier, Reg};
/// let insn = Instruction::new(
///     Opcode::Movl,
///     vec![Specifier::register(Reg::new(1)), Specifier::register(Reg::new(2))],
///     None,
/// );
/// assert_eq!(encode(&insn), vec![0xD0, 0x51, 0x52]);
/// ```
pub fn encode(insn: &Instruction) -> Vec<u8> {
    let mut out = Vec::with_capacity(insn.len as usize);
    encode_into(insn, &mut out);
    out
}

fn encode_specifier(spec: &Specifier, operand_size: u32, out: &mut Vec<u8>) {
    use AddressingMode::*;
    if let Some(ix) = spec.index {
        out.push(0x40 | ix.number());
    }
    let reg = spec.reg.number();
    match spec.mode {
        Literal => {
            assert!(spec.index.is_none(), "literal cannot be indexed");
            assert!((0..64).contains(&spec.value), "literal out of range");
            out.push(spec.value as u8);
        }
        Register => out.push(0x50 | reg),
        RegisterDeferred => out.push(0x60 | reg),
        Autodecrement => out.push(0x70 | reg),
        Autoincrement => out.push(0x80 | reg),
        AutoincrementDeferred => out.push(0x90 | reg),
        ByteDisp | ByteDispDeferred => {
            let base = if spec.mode == ByteDisp { 0xA0 } else { 0xB0 };
            let disp = i8::try_from(spec.value).expect("byte displacement out of range");
            out.push(base | reg);
            out.push(disp as u8);
        }
        WordDisp | WordDispDeferred => {
            let base = if spec.mode == WordDisp { 0xC0 } else { 0xD0 };
            let disp = i16::try_from(spec.value).expect("word displacement out of range");
            out.push(base | reg);
            out.extend_from_slice(&disp.to_le_bytes());
        }
        LongDisp | LongDispDeferred => {
            let base = if spec.mode == LongDisp { 0xE0 } else { 0xF0 };
            let disp = i32::try_from(spec.value).expect("long displacement out of range");
            out.push(base | reg);
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Immediate => {
            assert!(spec.index.is_none(), "immediate cannot be indexed");
            out.push(0x8F);
            let bytes = (spec.value as u64).to_le_bytes();
            out.extend_from_slice(&bytes[..operand_size as usize]);
        }
        Absolute => {
            out.push(0x9F);
            out.extend_from_slice(&(spec.value as u32).to_le_bytes());
        }
        PcRelative => {
            // Canonically encode as longword-displacement PC mode.
            out.push(0xEF);
            let disp = i32::try_from(spec.value).expect("pc-relative displacement out of range");
            out.extend_from_slice(&disp.to_le_bytes());
        }
        PcRelativeDeferred => {
            out.push(0xFF);
            let disp = i32::try_from(spec.value).expect("pc-relative displacement out of range");
            out.extend_from_slice(&disp.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::regs::Reg;

    #[test]
    fn movl_register_register() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::register(Reg::new(1)),
                Specifier::register(Reg::new(2)),
            ],
            None,
        );
        assert_eq!(encode(&insn), vec![0xD0, 0x51, 0x52]);
    }

    #[test]
    fn movl_displacement() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::displacement(8, Reg::new(2)),
                Specifier::register(Reg::new(3)),
            ],
            None,
        );
        assert_eq!(encode(&insn), vec![0xD0, 0xA2, 0x08, 0x53]);
    }

    #[test]
    fn negative_byte_displacement() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::displacement(-4, Reg::FP),
                Specifier::register(Reg::new(0)),
            ],
            None,
        );
        assert_eq!(encode(&insn), vec![0xD0, 0xAD, 0xFC, 0x50]);
    }

    #[test]
    fn branch_byte() {
        let insn = Instruction::new(Opcode::Bneq, vec![], Some(-6));
        assert_eq!(encode(&insn), vec![0x12, 0xFA]);
    }

    #[test]
    fn branch_word() {
        let insn = Instruction::new(Opcode::Brw, vec![], Some(0x1234));
        assert_eq!(encode(&insn), vec![0x31, 0x34, 0x12]);
    }

    #[test]
    fn immediate_longword() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::immediate(0xDEADBEEF),
                Specifier::register(Reg::new(5)),
            ],
            None,
        );
        assert_eq!(
            encode(&insn),
            vec![0xD0, 0x8F, 0xEF, 0xBE, 0xAD, 0xDE, 0x55]
        );
    }

    #[test]
    fn indexed_specifier() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::deferred(Reg::new(1)).indexed(Reg::new(4)),
                Specifier::register(Reg::new(0)),
            ],
            None,
        );
        assert_eq!(encode(&insn), vec![0xD0, 0x44, 0x61, 0x50]);
    }

    #[test]
    fn short_literal() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![Specifier::literal(5), Specifier::register(Reg::new(0))],
            None,
        );
        assert_eq!(encode(&insn), vec![0xD0, 0x05, 0x50]);
    }
}
