//! Opcode grouping and PC-changing classification.
//!
//! [`OpcodeGroup`] is the seven-way partition of the paper's Table 1;
//! [`BranchKind`] is the nine-way partition of PC-changing instructions in
//! Table 2.

use std::fmt;

/// The instruction groups of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpcodeGroup {
    /// Moves, simple arithmetic/boolean ops, simple and loop branches,
    /// subroutine call and return.
    Simple,
    /// Bit-field operations (and bit branches).
    Field,
    /// Floating point and integer multiply/divide.
    Float,
    /// Procedure call/return and multi-register push/pop.
    CallRet,
    /// Privileged operations, context switches, system service requests,
    /// queue manipulation, protection probes.
    System,
    /// Character-string instructions.
    Character,
    /// Packed-decimal instructions.
    Decimal,
}

impl OpcodeGroup {
    /// All groups in Table 1 order.
    pub const ALL: [OpcodeGroup; 7] = [
        OpcodeGroup::Simple,
        OpcodeGroup::Field,
        OpcodeGroup::Float,
        OpcodeGroup::CallRet,
        OpcodeGroup::System,
        OpcodeGroup::Character,
        OpcodeGroup::Decimal,
    ];

    /// Table-1 style display name.
    pub const fn name(self) -> &'static str {
        match self {
            OpcodeGroup::Simple => "SIMPLE",
            OpcodeGroup::Field => "FIELD",
            OpcodeGroup::Float => "FLOAT",
            OpcodeGroup::CallRet => "CALL/RET",
            OpcodeGroup::System => "SYSTEM",
            OpcodeGroup::Character => "CHARACTER",
            OpcodeGroup::Decimal => "DECIMAL",
        }
    }

    /// Stable dense index (Table 1 order) for array-indexed statistics.
    pub const fn index(self) -> usize {
        match self {
            OpcodeGroup::Simple => 0,
            OpcodeGroup::Field => 1,
            OpcodeGroup::Float => 2,
            OpcodeGroup::CallRet => 3,
            OpcodeGroup::System => 4,
            OpcodeGroup::Character => 5,
            OpcodeGroup::Decimal => 6,
        }
    }
}

impl fmt::Display for OpcodeGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The PC-changing instruction classes of paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// Not a PC-changing instruction.
    None,
    /// Simple conditional branches, plus BRB/BRW (grouped by microcode
    /// sharing, as in the paper).
    SimpleCond,
    /// Loop branches: SOB/AOB/ACB.
    Loop,
    /// Low-bit tests: BLBS/BLBC.
    LowBit,
    /// Subroutine call and return: BSB/JSB/RSB.
    Subroutine,
    /// Unconditional JMP.
    Unconditional,
    /// Case branches: CASEB/W/L.
    Case,
    /// Bit branches: BBS/BBC and set/clear variants.
    BitBranch,
    /// Procedure call and return: CALLG/CALLS/RET.
    ProcCall,
    /// System branches: CHMx/REI.
    SystemBranch,
}

impl BranchKind {
    /// The PC-changing classes in Table 2 row order.
    pub const TABLE2_ROWS: [BranchKind; 9] = [
        BranchKind::SimpleCond,
        BranchKind::Loop,
        BranchKind::LowBit,
        BranchKind::Subroutine,
        BranchKind::Unconditional,
        BranchKind::Case,
        BranchKind::BitBranch,
        BranchKind::ProcCall,
        BranchKind::SystemBranch,
    ];

    /// Table-2 style row label.
    pub const fn name(self) -> &'static str {
        match self {
            BranchKind::None => "(not PC-changing)",
            BranchKind::SimpleCond => "Simple cond., plus BRB, BRW",
            BranchKind::Loop => "Loop branches",
            BranchKind::LowBit => "Low-bit tests",
            BranchKind::Subroutine => "Subroutine call and return",
            BranchKind::Unconditional => "Unconditional (JMP)",
            BranchKind::Case => "Case branch (CASEx)",
            BranchKind::BitBranch => "Bit branches",
            BranchKind::ProcCall => "Procedure call and return",
            BranchKind::SystemBranch => "System branches (CHMx, REI)",
        }
    }

    /// True if this instruction class *always* changes the PC when executed
    /// (taken rate 100% in Table 2).
    pub const fn always_taken(self) -> bool {
        matches!(
            self,
            BranchKind::Subroutine
                | BranchKind::Unconditional
                | BranchKind::Case
                | BranchKind::ProcCall
                | BranchKind::SystemBranch
        )
    }

    /// True for any PC-changing class.
    pub const fn is_pc_changing(self) -> bool {
        !matches!(self, BranchKind::None)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_indices_are_dense_and_ordered() {
        for (i, g) in OpcodeGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn always_taken_classes() {
        assert!(BranchKind::ProcCall.always_taken());
        assert!(BranchKind::Case.always_taken());
        assert!(!BranchKind::SimpleCond.always_taken());
        assert!(!BranchKind::Loop.always_taken());
    }

    #[test]
    fn pc_changing() {
        assert!(!BranchKind::None.is_pc_changing());
        for k in BranchKind::TABLE2_ROWS {
            assert!(k.is_pc_changing());
        }
    }

    #[test]
    fn names_nonempty() {
        for g in OpcodeGroup::ALL {
            assert!(!g.name().is_empty());
        }
    }
}
