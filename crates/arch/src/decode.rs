//! Instruction decoder: parses VAX machine code into [`Instruction`]s.

use crate::datatype::{BranchWidth, OperandKind};
use crate::insn::Instruction;
use crate::mode::AddressingMode;
use crate::opcode::Opcode;
use crate::regs::Reg;
use crate::specifier::Specifier;
use std::fmt;

/// Errors produced while decoding an instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not an opcode this crate defines.
    UnknownOpcode(u8),
    /// The byte stream ended inside an instruction.
    Truncated,
    /// A specifier byte is illegal in context (e.g. register mode with PC,
    /// double index prefix, index on a literal).
    IllegalSpecifier(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::Truncated => f.write_str("instruction stream truncated"),
            DecodeError::IllegalSpecifier(b) => {
                write!(f, "illegal operand specifier byte {b:#04x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn i8(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u8()? as i8 as i32)
    }

    fn i16(&mut self) -> Result<i32, DecodeError> {
        let b = self.bytes(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]) as i32)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Decode one instruction from the front of `bytes`.
///
/// # Errors
/// Returns [`DecodeError`] if the opcode is unknown, the stream is truncated,
/// or a specifier is architecturally illegal.
///
/// ```
/// use vax_arch::{decode, Opcode};
/// let insn = decode(&[0xD0, 0x51, 0x52]).unwrap(); // MOVL R1, R2
/// assert_eq!(insn.opcode, Opcode::Movl);
/// ```
pub fn decode(bytes: &[u8]) -> Result<Instruction, DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let op_byte = cur.u8()?;
    let opcode = Opcode::from_byte(op_byte).ok_or(DecodeError::UnknownOpcode(op_byte))?;
    let mut specifiers = crate::speclist::SpecList::new();
    let mut branch_disp = None;
    for op in opcode.operands() {
        match op {
            OperandKind::Spec(_, dt) => {
                specifiers.push(decode_specifier(&mut cur, dt.size())?);
            }
            OperandKind::Branch(BranchWidth::Byte) => branch_disp = Some(cur.i8()?),
            OperandKind::Branch(BranchWidth::Word) => branch_disp = Some(cur.i16()?),
        }
    }
    Ok(Instruction {
        opcode,
        specifiers,
        branch_disp,
        len: cur.pos as u32,
    })
}

fn decode_specifier(cur: &mut Cursor<'_>, operand_size: u32) -> Result<Specifier, DecodeError> {
    let mut byte = cur.u8()?;
    let mut index = None;
    if byte >> 4 == 4 {
        // Index prefix. The base specifier follows; PC may not index.
        let ix = byte & 0x0F;
        if ix == 15 {
            return Err(DecodeError::IllegalSpecifier(byte));
        }
        index = Some(Reg::new(ix));
        byte = cur.u8()?;
        // Base may not be literal, register, immediate, or another index.
        if byte >> 4 <= 5 || byte == 0x8F {
            return Err(DecodeError::IllegalSpecifier(byte));
        }
    }
    let mode = crate::mode::mode_of_byte(byte).ok_or(DecodeError::IllegalSpecifier(byte))?;
    // Literal mode has no register field — the low bits are literal value.
    let reg = if mode == AddressingMode::Literal {
        Reg::new(0)
    } else {
        Reg::new(byte & 0x0F)
    };
    let value: i64 = match mode {
        AddressingMode::Literal => (byte & 0x3F) as i64,
        AddressingMode::Register
        | AddressingMode::RegisterDeferred
        | AddressingMode::Autodecrement
        | AddressingMode::Autoincrement
        | AddressingMode::AutoincrementDeferred => 0,
        AddressingMode::ByteDisp | AddressingMode::ByteDispDeferred => cur.i8()? as i64,
        AddressingMode::WordDisp | AddressingMode::WordDispDeferred => cur.i16()? as i64,
        AddressingMode::LongDisp | AddressingMode::LongDispDeferred => cur.i32()? as i64,
        AddressingMode::Immediate => {
            let raw = cur.bytes(operand_size as usize)?;
            let mut buf = [0u8; 8];
            buf[..raw.len()].copy_from_slice(raw);
            u64::from_le_bytes(buf) as i64
        }
        AddressingMode::Absolute => cur.i32()? as u32 as i64,
        AddressingMode::PcRelative | AddressingMode::PcRelativeDeferred => match byte >> 4 {
            0xA | 0xB => cur.i8()? as i64,
            0xC | 0xD => cur.i16()? as i64,
            _ => cur.i32()? as i64,
        },
    };
    Ok(Specifier {
        mode,
        reg,
        value,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_movl() {
        let insn = decode(&[0xD0, 0x51, 0x52]).unwrap();
        assert_eq!(insn.opcode, Opcode::Movl);
        assert_eq!(insn.specifiers.len(), 2);
        assert_eq!(insn.specifiers[0], Specifier::register(Reg::new(1)));
        assert_eq!(insn.len, 3);
    }

    #[test]
    fn decode_branch() {
        let insn = decode(&[0x12, 0xFA]).unwrap();
        assert_eq!(insn.opcode, Opcode::Bneq);
        assert_eq!(insn.branch_disp, Some(-6));
    }

    #[test]
    fn decode_indexed() {
        let insn = decode(&[0xD0, 0x44, 0x61, 0x50]).unwrap();
        assert_eq!(insn.specifiers[0].index, Some(Reg::new(4)));
        assert_eq!(insn.specifiers[0].mode, AddressingMode::RegisterDeferred);
    }

    #[test]
    fn decode_immediate_quad() {
        // MOVQ #imm, R2 consumes 8 bytes of immediate.
        let mut bytes = vec![0x7D, 0x8F];
        bytes.extend_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        bytes.push(0x52);
        let insn = decode(&bytes).unwrap();
        assert_eq!(insn.opcode, Opcode::Movq);
        assert_eq!(insn.len, bytes.len() as u32);
        assert_eq!(insn.specifiers[0].value, 0x0123_4567_89AB_CDEFu64 as i64);
    }

    #[test]
    fn errors() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xFD]), Err(DecodeError::UnknownOpcode(0xFD)));
        assert_eq!(decode(&[0xD0, 0x51]), Err(DecodeError::Truncated));
        // register mode with PC
        assert_eq!(
            decode(&[0xD0, 0x5F, 0x50]),
            Err(DecodeError::IllegalSpecifier(0x5F))
        );
        // double index
        assert_eq!(
            decode(&[0xD0, 0x41, 0x42, 0x50]),
            Err(DecodeError::IllegalSpecifier(0x42))
        );
        // index on register mode
        assert_eq!(
            decode(&[0xD0, 0x41, 0x52, 0x50]),
            Err(DecodeError::IllegalSpecifier(0x52))
        );
        // PC as index register
        assert_eq!(
            decode(&[0xD0, 0x4F, 0x61, 0x50]),
            Err(DecodeError::IllegalSpecifier(0x4F))
        );
    }

    #[test]
    fn roundtrip_various() {
        let cases = vec![
            Instruction::new(
                Opcode::Addl3,
                vec![
                    Specifier::literal(5),
                    Specifier::displacement(-100, Reg::new(3)),
                    Specifier::register(Reg::new(0)),
                ],
                None,
            ),
            Instruction::new(
                Opcode::Calls,
                vec![
                    Specifier::literal(2),
                    Specifier::displacement(0x4000, Reg::new(9)),
                ],
                None,
            ),
            Instruction::new(
                Opcode::Sobgtr,
                vec![Specifier::register(Reg::new(6))],
                Some(-12),
            ),
            Instruction::new(
                Opcode::Movc3,
                vec![
                    Specifier::literal(36),
                    Specifier::deferred(Reg::new(1)),
                    Specifier::deferred(Reg::new(2)),
                ],
                None,
            ),
            Instruction::new(Opcode::Ret, vec![], None),
        ];
        for insn in cases {
            let bytes = encode(&insn);
            let decoded = decode(&bytes).unwrap();
            assert_eq!(decoded, insn, "roundtrip failed for {insn}");
        }
    }
}
