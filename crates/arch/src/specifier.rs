//! Decoded operand specifiers.

use crate::mode::AddressingMode;
use crate::regs::Reg;
use std::fmt;

/// One decoded operand specifier.
///
/// `value` carries the mode's variable content: the literal value for
/// short-literal mode, the sign-extended displacement for displacement and
/// PC-relative modes, the 32-bit datum for immediate mode (the low longword
/// for quad/D-float immediates), or the absolute address for absolute mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Specifier {
    /// Decoded addressing mode.
    pub mode: AddressingMode,
    /// Base register (meaningless for literal/immediate/absolute).
    pub reg: Reg,
    /// Mode-dependent extension value (see type-level docs).
    pub value: i64,
    /// Index register, if the specifier carried a mode-4 index prefix.
    pub index: Option<Reg>,
}

impl Specifier {
    /// A register-mode specifier for `reg`.
    pub fn register(reg: Reg) -> Specifier {
        Specifier {
            mode: AddressingMode::Register,
            reg,
            value: 0,
            index: None,
        }
    }

    /// A short-literal specifier (0–63).
    ///
    /// # Panics
    /// Panics if `value > 63`.
    pub fn literal(value: u8) -> Specifier {
        assert!(value < 64, "short literal out of range");
        Specifier {
            mode: AddressingMode::Literal,
            reg: Reg::new(0),
            value: value as i64,
            index: None,
        }
    }

    /// A displacement-mode specifier `disp(reg)`, choosing the narrowest
    /// displacement width that holds `disp`.
    pub fn displacement(disp: i32, reg: Reg) -> Specifier {
        let mode = if (-128..=127).contains(&disp) {
            AddressingMode::ByteDisp
        } else if (-32768..=32767).contains(&disp) {
            AddressingMode::WordDisp
        } else {
            AddressingMode::LongDisp
        };
        Specifier {
            mode,
            reg,
            value: disp as i64,
            index: None,
        }
    }

    /// A register-deferred specifier `(reg)`.
    pub fn deferred(reg: Reg) -> Specifier {
        Specifier {
            mode: AddressingMode::RegisterDeferred,
            reg,
            value: 0,
            index: None,
        }
    }

    /// An immediate specifier `#value`.
    pub fn immediate(value: u32) -> Specifier {
        Specifier {
            mode: AddressingMode::Immediate,
            reg: Reg::PC,
            value: value as i64,
            index: None,
        }
    }

    /// An absolute specifier `@#addr`.
    pub fn absolute(addr: u32) -> Specifier {
        Specifier {
            mode: AddressingMode::Absolute,
            reg: Reg::PC,
            value: addr as i64,
            index: None,
        }
    }

    /// Attach an index register (mode-4 prefix), returning the new specifier.
    ///
    /// # Panics
    /// Panics for literal/register/immediate base modes, which cannot be
    /// indexed on the VAX.
    pub fn indexed(mut self, index: Reg) -> Specifier {
        assert!(
            !matches!(
                self.mode,
                AddressingMode::Literal | AddressingMode::Register | AddressingMode::Immediate
            ),
            "mode {:?} cannot be indexed",
            self.mode
        );
        self.index = Some(index);
        self
    }

    /// True if this specifier carries an index prefix.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Total I-stream bytes this specifier occupies for an operand of
    /// `operand_size` bytes (specifier byte + extension + index prefix).
    pub fn encoded_len(&self, operand_size: u32) -> u32 {
        let prefix = if self.index.is_some() { 1 } else { 0 };
        prefix + 1 + self.mode.extension_size(operand_size)
    }
}

impl fmt::Display for Specifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AddressingMode::*;
        match self.mode {
            Literal => write!(f, "#{}", self.value)?,
            Register => write!(f, "{}", self.reg)?,
            RegisterDeferred => write!(f, "({})", self.reg)?,
            Autodecrement => write!(f, "-({})", self.reg)?,
            Autoincrement => write!(f, "({})+", self.reg)?,
            AutoincrementDeferred => write!(f, "@({})+", self.reg)?,
            ByteDisp | WordDisp | LongDisp => write!(f, "{}({})", self.value, self.reg)?,
            ByteDispDeferred | WordDispDeferred | LongDispDeferred => {
                write!(f, "@{}({})", self.value, self.reg)?
            }
            Immediate => write!(f, "#{}", self.value)?,
            Absolute => write!(f, "@#{:#x}", self.value)?,
            PcRelative => write!(f, "{}(PC)", self.value)?,
            PcRelativeDeferred => write!(f, "@{}(PC)", self.value)?,
        }
        if let Some(ix) = self.index {
            write!(f, "[{ix}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_width_selection() {
        assert_eq!(
            Specifier::displacement(100, Reg::new(2)).mode,
            AddressingMode::ByteDisp
        );
        assert_eq!(
            Specifier::displacement(1000, Reg::new(2)).mode,
            AddressingMode::WordDisp
        );
        assert_eq!(
            Specifier::displacement(100_000, Reg::new(2)).mode,
            AddressingMode::LongDisp
        );
        assert_eq!(
            Specifier::displacement(-128, Reg::new(2)).mode,
            AddressingMode::ByteDisp
        );
    }

    #[test]
    fn encoded_len() {
        assert_eq!(Specifier::register(Reg::new(1)).encoded_len(4), 1);
        assert_eq!(Specifier::literal(5).encoded_len(4), 1);
        assert_eq!(Specifier::displacement(4, Reg::new(1)).encoded_len(4), 2);
        assert_eq!(Specifier::displacement(400, Reg::new(1)).encoded_len(4), 3);
        assert_eq!(Specifier::immediate(7).encoded_len(4), 5);
        assert_eq!(Specifier::absolute(0x1000).encoded_len(4), 5);
        assert_eq!(
            Specifier::displacement(4, Reg::new(1))
                .indexed(Reg::new(2))
                .encoded_len(4),
            3
        );
    }

    #[test]
    #[should_panic(expected = "cannot be indexed")]
    fn register_mode_cannot_index() {
        let _ = Specifier::register(Reg::new(1)).indexed(Reg::new(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Specifier::register(Reg::new(3)).to_string(), "R3");
        assert_eq!(Specifier::displacement(8, Reg::FP).to_string(), "8(FP)");
        assert_eq!(
            Specifier::deferred(Reg::new(1))
                .indexed(Reg::new(4))
                .to_string(),
            "(R1)[R4]"
        );
    }
}
