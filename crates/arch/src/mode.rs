//! VAX operand-specifier addressing modes.
//!
//! A specifier's first byte holds a 4-bit mode and a 4-bit register number.
//! Modes 0–3 encode a 6-bit short literal; mode 4 is an index prefix; modes
//! 8, 9, A–F with register 15 (PC) become the program-counter modes
//! (immediate, absolute, and PC-relative displacements).
//!
//! [`AddressingMode`] is the *decoded* mode, with PC specializations already
//! applied — it corresponds one-to-one with the rows of the paper's Table 4.

use std::fmt;

/// Decoded addressing mode of one operand specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressingMode {
    /// 6-bit short literal (modes 0–3).
    Literal,
    /// Register mode `Rn` (mode 5).
    Register,
    /// Register deferred `(Rn)` (mode 6).
    RegisterDeferred,
    /// Autodecrement `-(Rn)` (mode 7).
    Autodecrement,
    /// Autoincrement `(Rn)+` (mode 8, Rn != PC).
    Autoincrement,
    /// Autoincrement deferred `@(Rn)+` (mode 9, Rn != PC).
    AutoincrementDeferred,
    /// Byte displacement `d8(Rn)` (mode A).
    ByteDisp,
    /// Byte displacement deferred `@d8(Rn)` (mode B).
    ByteDispDeferred,
    /// Word displacement `d16(Rn)` (mode C).
    WordDisp,
    /// Word displacement deferred `@d16(Rn)` (mode D).
    WordDispDeferred,
    /// Longword displacement `d32(Rn)` (mode E).
    LongDisp,
    /// Longword displacement deferred `@d32(Rn)` (mode F).
    LongDispDeferred,
    /// Immediate `(PC)+` — I-stream constant (mode 8 with PC).
    Immediate,
    /// Absolute `@(PC)+` — I-stream 32-bit address (mode 9 with PC).
    Absolute,
    /// PC-relative `d(PC)` (modes A/C/E with PC).
    PcRelative,
    /// PC-relative deferred `@d(PC)` (modes B/D/F with PC).
    PcRelativeDeferred,
}

impl AddressingMode {
    /// All modes, in a stable order for statistics tables.
    pub const ALL: [AddressingMode; 16] = [
        AddressingMode::Literal,
        AddressingMode::Register,
        AddressingMode::RegisterDeferred,
        AddressingMode::Autodecrement,
        AddressingMode::Autoincrement,
        AddressingMode::AutoincrementDeferred,
        AddressingMode::ByteDisp,
        AddressingMode::ByteDispDeferred,
        AddressingMode::WordDisp,
        AddressingMode::WordDispDeferred,
        AddressingMode::LongDisp,
        AddressingMode::LongDispDeferred,
        AddressingMode::Immediate,
        AddressingMode::Absolute,
        AddressingMode::PcRelative,
        AddressingMode::PcRelativeDeferred,
    ];

    /// Dense index of this mode, equal to its position in
    /// [`AddressingMode::ALL`] (the enum declares modes in `ALL` order, which
    /// `mode_index_matches_all` pins down). Lets per-mode tables be indexed
    /// directly instead of searched.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// True if evaluating this specifier references memory for the operand
    /// datum itself (given a Read/Write/Modify access).
    pub const fn is_memory(self) -> bool {
        !matches!(self, AddressingMode::Literal | AddressingMode::Register)
    }

    /// True if the mode has an extra indirection through a memory-resident
    /// pointer (the "deferred" modes).
    pub const fn is_deferred(self) -> bool {
        matches!(
            self,
            AddressingMode::AutoincrementDeferred
                | AddressingMode::ByteDispDeferred
                | AddressingMode::WordDispDeferred
                | AddressingMode::LongDispDeferred
                | AddressingMode::Absolute
                | AddressingMode::PcRelativeDeferred
        )
    }

    /// True if the mode consumes I-stream bytes beyond the specifier byte
    /// (displacement or immediate data), not counting index prefixes.
    pub const fn has_extension(self) -> bool {
        !matches!(
            self,
            AddressingMode::Literal
                | AddressingMode::Register
                | AddressingMode::RegisterDeferred
                | AddressingMode::Autodecrement
                | AddressingMode::Autoincrement
                | AddressingMode::AutoincrementDeferred
        )
    }

    /// Byte size of the I-stream extension for this mode, for an operand of
    /// `operand_size` bytes (immediate mode consumes the operand's size).
    pub const fn extension_size(self, operand_size: u32) -> u32 {
        match self {
            AddressingMode::ByteDisp | AddressingMode::ByteDispDeferred => 1,
            AddressingMode::WordDisp | AddressingMode::WordDispDeferred => 2,
            AddressingMode::LongDisp
            | AddressingMode::LongDispDeferred
            | AddressingMode::Absolute => 4,
            AddressingMode::PcRelative | AddressingMode::PcRelativeDeferred => 4,
            AddressingMode::Immediate => operand_size,
            _ => 0,
        }
    }

    /// Paper Table-4 row label.
    pub const fn name(self) -> &'static str {
        match self {
            AddressingMode::Literal => "Short literal",
            AddressingMode::Register => "Register",
            AddressingMode::RegisterDeferred => "Register deferred",
            AddressingMode::Autodecrement => "Autodecrement",
            AddressingMode::Autoincrement => "Autoincrement",
            AddressingMode::AutoincrementDeferred => "Autoincrement deferred",
            AddressingMode::ByteDisp => "Byte displacement",
            AddressingMode::ByteDispDeferred => "Byte disp. deferred",
            AddressingMode::WordDisp => "Word displacement",
            AddressingMode::WordDispDeferred => "Word disp. deferred",
            AddressingMode::LongDisp => "Long displacement",
            AddressingMode::LongDispDeferred => "Long disp. deferred",
            AddressingMode::Immediate => "Immediate (PC)+",
            AddressingMode::Absolute => "Absolute @(PC)+",
            AddressingMode::PcRelative => "PC-relative",
            AddressingMode::PcRelativeDeferred => "PC-relative deferred",
        }
    }
}

impl fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Decode the mode nibble + register nibble of a specifier byte into an
/// [`AddressingMode`] (PC specializations applied). Returns `None` for the
/// index prefix (mode 4), which is not itself an addressing mode, and for
/// illegal combinations (e.g. literal with index, mode 5/6/7 with PC).
pub fn mode_of_byte(byte: u8) -> Option<AddressingMode> {
    let mode = byte >> 4;
    let reg = byte & 0x0F;
    let pc = reg == 15;
    Some(match mode {
        0..=3 => AddressingMode::Literal,
        4 => return None, // index prefix
        5 => {
            if pc {
                return None;
            }
            AddressingMode::Register
        }
        6 => {
            if pc {
                return None;
            }
            AddressingMode::RegisterDeferred
        }
        7 => {
            if pc {
                return None;
            }
            AddressingMode::Autodecrement
        }
        8 => {
            if pc {
                AddressingMode::Immediate
            } else {
                AddressingMode::Autoincrement
            }
        }
        9 => {
            if pc {
                AddressingMode::Absolute
            } else {
                AddressingMode::AutoincrementDeferred
            }
        }
        0xA => {
            if pc {
                AddressingMode::PcRelative
            } else {
                AddressingMode::ByteDisp
            }
        }
        0xB => {
            if pc {
                AddressingMode::PcRelativeDeferred
            } else {
                AddressingMode::ByteDispDeferred
            }
        }
        0xC => {
            if pc {
                AddressingMode::PcRelative
            } else {
                AddressingMode::WordDisp
            }
        }
        0xD => {
            if pc {
                AddressingMode::PcRelativeDeferred
            } else {
                AddressingMode::WordDispDeferred
            }
        }
        0xE => {
            if pc {
                AddressingMode::PcRelative
            } else {
                AddressingMode::LongDisp
            }
        }
        0xF => {
            if pc {
                AddressingMode::PcRelativeDeferred
            } else {
                AddressingMode::LongDispDeferred
            }
        }
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_range() {
        for b in 0x00..=0x3F {
            assert_eq!(mode_of_byte(b), Some(AddressingMode::Literal));
        }
    }

    #[test]
    fn index_prefix_is_not_a_mode() {
        for b in 0x40..=0x4F {
            assert_eq!(mode_of_byte(b), None);
        }
    }

    #[test]
    fn register_modes() {
        assert_eq!(mode_of_byte(0x51), Some(AddressingMode::Register));
        assert_eq!(mode_of_byte(0x63), Some(AddressingMode::RegisterDeferred));
        assert_eq!(mode_of_byte(0x7E), Some(AddressingMode::Autodecrement));
        // PC is illegal for modes 5..7
        assert_eq!(mode_of_byte(0x5F), None);
        assert_eq!(mode_of_byte(0x6F), None);
        assert_eq!(mode_of_byte(0x7F), None);
    }

    #[test]
    fn pc_specializations() {
        assert_eq!(mode_of_byte(0x8F), Some(AddressingMode::Immediate));
        assert_eq!(mode_of_byte(0x9F), Some(AddressingMode::Absolute));
        assert_eq!(mode_of_byte(0xAF), Some(AddressingMode::PcRelative));
        assert_eq!(mode_of_byte(0xBF), Some(AddressingMode::PcRelativeDeferred));
        assert_eq!(mode_of_byte(0xCF), Some(AddressingMode::PcRelative));
        assert_eq!(mode_of_byte(0xEF), Some(AddressingMode::PcRelative));
    }

    #[test]
    fn displacement_modes() {
        assert_eq!(mode_of_byte(0xA3), Some(AddressingMode::ByteDisp));
        assert_eq!(mode_of_byte(0xB3), Some(AddressingMode::ByteDispDeferred));
        assert_eq!(mode_of_byte(0xC3), Some(AddressingMode::WordDisp));
        assert_eq!(mode_of_byte(0xE3), Some(AddressingMode::LongDisp));
        assert_eq!(mode_of_byte(0xF3), Some(AddressingMode::LongDispDeferred));
    }

    #[test]
    fn memory_classification() {
        assert!(!AddressingMode::Register.is_memory());
        assert!(!AddressingMode::Literal.is_memory());
        assert!(AddressingMode::ByteDisp.is_memory());
        assert!(AddressingMode::Immediate.is_memory()); // I-stream datum
    }

    #[test]
    fn extension_sizes() {
        assert_eq!(AddressingMode::ByteDisp.extension_size(4), 1);
        assert_eq!(AddressingMode::WordDisp.extension_size(4), 2);
        assert_eq!(AddressingMode::LongDisp.extension_size(4), 4);
        assert_eq!(AddressingMode::Immediate.extension_size(4), 4);
        assert_eq!(AddressingMode::Immediate.extension_size(8), 8);
        assert_eq!(AddressingMode::Register.extension_size(4), 0);
    }

    #[test]
    fn deferred_classification() {
        assert!(AddressingMode::ByteDispDeferred.is_deferred());
        assert!(AddressingMode::Absolute.is_deferred());
        assert!(!AddressingMode::ByteDisp.is_deferred());
    }

    #[test]
    fn mode_index_matches_all() {
        for (i, &mode) in AddressingMode::ALL.iter().enumerate() {
            assert_eq!(mode.index(), i, "{mode:?} out of ALL order");
        }
    }
}
