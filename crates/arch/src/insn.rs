//! Decoded instruction representation.

use crate::datatype::{DataType, OperandKind};
use crate::opcode::Opcode;
use crate::speclist::SpecList;
use std::fmt;

/// A fully decoded VAX instruction.
///
/// Specifiers live inline ([`SpecList`]), so an `Instruction` is `Copy`:
/// decoding allocates nothing and a cached decode can be handed out by
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The opcode.
    pub opcode: Opcode,
    /// Decoded operand specifiers (branch displacements excluded).
    pub specifiers: SpecList,
    /// Embedded branch displacement, sign-extended, if the opcode has one.
    pub branch_disp: Option<i32>,
    /// Total encoded length in bytes.
    pub len: u32,
}

impl Instruction {
    /// Build an instruction with operands; the encoded length is computed.
    ///
    /// # Panics
    /// Panics if the specifier count does not match the opcode signature, or
    /// if a branch displacement is supplied for/omitted from an opcode that
    /// lacks/requires one.
    pub fn new(opcode: Opcode, specifiers: impl Into<SpecList>, branch_disp: Option<i32>) -> Self {
        let specifiers = specifiers.into();
        assert_eq!(
            specifiers.len(),
            opcode.specifier_count(),
            "{}: wrong number of specifiers",
            opcode.mnemonic()
        );
        assert_eq!(
            branch_disp.is_some(),
            opcode.has_branch_disp(),
            "{}: branch displacement mismatch",
            opcode.mnemonic()
        );
        let mut insn = Instruction {
            opcode,
            specifiers,
            branch_disp,
            len: 0,
        };
        insn.len = insn.computed_len();
        insn
    }

    /// The data type of operand `i` per the opcode signature.
    pub fn operand_type(&self, i: usize) -> DataType {
        match self.opcode.operands()[i] {
            OperandKind::Spec(_, dt) => dt,
            OperandKind::Branch(_) => DataType::Byte,
        }
    }

    fn computed_len(&self) -> u32 {
        let mut len = 1; // opcode byte
        let mut spec_i = 0;
        for op in self.opcode.operands() {
            match op {
                OperandKind::Spec(_, dt) => {
                    len += self.specifiers[spec_i].encoded_len(dt.size());
                    spec_i += 1;
                }
                OperandKind::Branch(width) => len += width.size(),
            }
        }
        len
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        let mut first = true;
        for spec in &self.specifiers {
            if first {
                write!(f, " {spec}")?;
                first = false;
            } else {
                write!(f, ", {spec}")?;
            }
        }
        if let Some(disp) = self.branch_disp {
            if first {
                write!(f, " .{disp:+}")?;
            } else {
                write!(f, ", .{disp:+}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::Reg;
    use crate::specifier::Specifier;

    #[test]
    fn movl_len() {
        let insn = Instruction::new(
            Opcode::Movl,
            vec![
                Specifier::register(Reg::new(1)),
                Specifier::register(Reg::new(2)),
            ],
            None,
        );
        assert_eq!(insn.len, 3);
        assert_eq!(insn.to_string(), "MOVL R1, R2");
    }

    #[test]
    fn branch_len() {
        let insn = Instruction::new(Opcode::Beql, vec![], Some(-4));
        assert_eq!(insn.len, 2);
        assert_eq!(insn.to_string(), "BEQL .-4");
    }

    #[test]
    fn sob_len() {
        let insn = Instruction::new(
            Opcode::Sobgtr,
            vec![Specifier::register(Reg::new(3))],
            Some(-10),
        );
        assert_eq!(insn.len, 3);
    }

    #[test]
    #[should_panic(expected = "wrong number of specifiers")]
    fn wrong_spec_count_panics() {
        let _ = Instruction::new(Opcode::Movl, vec![], None);
    }

    #[test]
    #[should_panic(expected = "branch displacement mismatch")]
    fn missing_branch_disp_panics() {
        let _ = Instruction::new(Opcode::Beql, vec![], None);
    }
}
