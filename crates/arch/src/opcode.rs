//! The VAX opcode inventory.
//!
//! Each opcode carries its real VAX encoding byte, its mnemonic, its paper
//! Table-1 group, its paper Table-2 PC-changing class, and its operand
//! signature. The inventory covers the single-byte opcode space used by the
//! workloads in the paper: all of the SIMPLE/FIELD/FLOAT/CALL-RET/SYSTEM/
//! CHARACTER/DECIMAL groups are populated with their common members.

use crate::datatype::{DataType, OperandKind};
use crate::group::{BranchKind, OpcodeGroup};
use std::fmt;

use DataType::{Byte as B, DFloat as D, FFloat as F, Long as L, Quad as Q, Word as W};

/// Static description of one opcode.
#[derive(Debug, Clone, Copy)]
pub struct OpcodeInfo {
    /// The opcode enum value.
    pub opcode: Opcode,
    /// Encoding byte.
    pub byte: u8,
    /// Assembler mnemonic (upper case).
    pub mnemonic: &'static str,
    /// Paper Table-1 group.
    pub group: OpcodeGroup,
    /// Paper Table-2 PC-changing class.
    pub branch: BranchKind,
    /// Operand signature, in instruction-stream order.
    pub operands: &'static [OperandKind],
}

macro_rules! opcodes {
    ($( $variant:ident = $byte:expr, $mn:expr, $group:ident, $branch:ident, [$($op:expr),*]; )+) => {
        /// A VAX opcode.
        ///
        /// `Opcode as u8` is NOT the encoding byte (use [`Opcode::byte`]);
        /// the enum is dense so it can index tables.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $($variant,)+
        }

        /// Table of every opcode this crate defines, in declaration order.
        pub static OPCODE_TABLE: &[OpcodeInfo] = &[
            $(OpcodeInfo {
                opcode: Opcode::$variant,
                byte: $byte,
                mnemonic: $mn,
                group: OpcodeGroup::$group,
                branch: BranchKind::$branch,
                operands: &[$($op),*],
            },)+
        ];

        impl Opcode {
            /// Number of defined opcodes.
            pub const COUNT: usize = OPCODE_TABLE.len();
        }
    };
}

const fn r(dt: DataType) -> OperandKind {
    OperandKind::r(dt)
}
const fn w(dt: DataType) -> OperandKind {
    OperandKind::w(dt)
}
const fn m(dt: DataType) -> OperandKind {
    OperandKind::m(dt)
}
const fn a(dt: DataType) -> OperandKind {
    OperandKind::a(dt)
}
const fn v(dt: DataType) -> OperandKind {
    OperandKind::v(dt)
}
const BB: OperandKind = OperandKind::bb();
const BW: OperandKind = OperandKind::bw();

opcodes! {
    // ---- SIMPLE: moves ----
    Movb = 0x90, "MOVB", Simple, None, [r(B), w(B)];
    Movw = 0xB0, "MOVW", Simple, None, [r(W), w(W)];
    Movl = 0xD0, "MOVL", Simple, None, [r(L), w(L)];
    Movq = 0x7D, "MOVQ", Simple, None, [r(Q), w(Q)];
    Movab = 0x9E, "MOVAB", Simple, None, [a(B), w(L)];
    Movaw = 0x3E, "MOVAW", Simple, None, [a(W), w(L)];
    Moval = 0xDE, "MOVAL", Simple, None, [a(L), w(L)];
    Movaq = 0x7E, "MOVAQ", Simple, None, [a(Q), w(L)];
    Pushl = 0xDD, "PUSHL", Simple, None, [r(L)];
    Pushab = 0x9F, "PUSHAB", Simple, None, [a(B)];
    Pushaw = 0x3F, "PUSHAW", Simple, None, [a(W)];
    Pushal = 0xDF, "PUSHAL", Simple, None, [a(L)];
    Pushaq = 0x7F, "PUSHAQ", Simple, None, [a(Q)];
    Clrb = 0x94, "CLRB", Simple, None, [w(B)];
    Clrw = 0xB4, "CLRW", Simple, None, [w(W)];
    Clrl = 0xD4, "CLRL", Simple, None, [w(L)];
    Clrq = 0x7C, "CLRQ", Simple, None, [w(Q)];
    Mnegb = 0x8E, "MNEGB", Simple, None, [r(B), w(B)];
    Mnegw = 0xAE, "MNEGW", Simple, None, [r(W), w(W)];
    Mnegl = 0xCE, "MNEGL", Simple, None, [r(L), w(L)];
    Mcomb = 0x92, "MCOMB", Simple, None, [r(B), w(B)];
    Mcomw = 0xB2, "MCOMW", Simple, None, [r(W), w(W)];
    Mcoml = 0xD2, "MCOML", Simple, None, [r(L), w(L)];
    Movzbw = 0x9B, "MOVZBW", Simple, None, [r(B), w(W)];
    Movzbl = 0x9A, "MOVZBL", Simple, None, [r(B), w(L)];
    Movzwl = 0x3C, "MOVZWL", Simple, None, [r(W), w(L)];
    Cvtbw = 0x99, "CVTBW", Simple, None, [r(B), w(W)];
    Cvtbl = 0x98, "CVTBL", Simple, None, [r(B), w(L)];
    Cvtwb = 0x33, "CVTWB", Simple, None, [r(W), w(B)];
    Cvtwl = 0x32, "CVTWL", Simple, None, [r(W), w(L)];
    Cvtlb = 0xF6, "CVTLB", Simple, None, [r(L), w(B)];
    Cvtlw = 0xF7, "CVTLW", Simple, None, [r(L), w(W)];

    // ---- SIMPLE: integer arithmetic ----
    Addb2 = 0x80, "ADDB2", Simple, None, [r(B), m(B)];
    Addb3 = 0x81, "ADDB3", Simple, None, [r(B), r(B), w(B)];
    Addw2 = 0xA0, "ADDW2", Simple, None, [r(W), m(W)];
    Addw3 = 0xA1, "ADDW3", Simple, None, [r(W), r(W), w(W)];
    Addl2 = 0xC0, "ADDL2", Simple, None, [r(L), m(L)];
    Addl3 = 0xC1, "ADDL3", Simple, None, [r(L), r(L), w(L)];
    Subb2 = 0x82, "SUBB2", Simple, None, [r(B), m(B)];
    Subb3 = 0x83, "SUBB3", Simple, None, [r(B), r(B), w(B)];
    Subw2 = 0xA2, "SUBW2", Simple, None, [r(W), m(W)];
    Subw3 = 0xA3, "SUBW3", Simple, None, [r(W), r(W), w(W)];
    Subl2 = 0xC2, "SUBL2", Simple, None, [r(L), m(L)];
    Subl3 = 0xC3, "SUBL3", Simple, None, [r(L), r(L), w(L)];
    Incb = 0x96, "INCB", Simple, None, [m(B)];
    Incw = 0xB6, "INCW", Simple, None, [m(W)];
    Incl = 0xD6, "INCL", Simple, None, [m(L)];
    Decb = 0x97, "DECB", Simple, None, [m(B)];
    Decw = 0xB7, "DECW", Simple, None, [m(W)];
    Decl = 0xD7, "DECL", Simple, None, [m(L)];
    Ashl = 0x78, "ASHL", Simple, None, [r(B), r(L), w(L)];
    Ashq = 0x79, "ASHQ", Simple, None, [r(B), r(Q), w(Q)];
    Rotl = 0x9C, "ROTL", Simple, None, [r(B), r(L), w(L)];

    // ---- SIMPLE: boolean ----
    Bicb2 = 0x8A, "BICB2", Simple, None, [r(B), m(B)];
    Bicb3 = 0x8B, "BICB3", Simple, None, [r(B), r(B), w(B)];
    Bicw2 = 0xAA, "BICW2", Simple, None, [r(W), m(W)];
    Bicw3 = 0xAB, "BICW3", Simple, None, [r(W), r(W), w(W)];
    Bicl2 = 0xCA, "BICL2", Simple, None, [r(L), m(L)];
    Bicl3 = 0xCB, "BICL3", Simple, None, [r(L), r(L), w(L)];
    Bisb2 = 0x88, "BISB2", Simple, None, [r(B), m(B)];
    Bisb3 = 0x89, "BISB3", Simple, None, [r(B), r(B), w(B)];
    Bisw2 = 0xA8, "BISW2", Simple, None, [r(W), m(W)];
    Bisw3 = 0xA9, "BISW3", Simple, None, [r(W), r(W), w(W)];
    Bisl2 = 0xC8, "BISL2", Simple, None, [r(L), m(L)];
    Bisl3 = 0xC9, "BISL3", Simple, None, [r(L), r(L), w(L)];
    Xorb2 = 0x8C, "XORB2", Simple, None, [r(B), m(B)];
    Xorb3 = 0x8D, "XORB3", Simple, None, [r(B), r(B), w(B)];
    Xorw2 = 0xAC, "XORW2", Simple, None, [r(W), m(W)];
    Xorw3 = 0xAD, "XORW3", Simple, None, [r(W), r(W), w(W)];
    Xorl2 = 0xCC, "XORL2", Simple, None, [r(L), m(L)];
    Xorl3 = 0xCD, "XORL3", Simple, None, [r(L), r(L), w(L)];

    // ---- SIMPLE: test/compare ----
    Tstb = 0x95, "TSTB", Simple, None, [r(B)];
    Tstw = 0xB5, "TSTW", Simple, None, [r(W)];
    Tstl = 0xD5, "TSTL", Simple, None, [r(L)];
    Cmpb = 0x91, "CMPB", Simple, None, [r(B), r(B)];
    Cmpw = 0xB1, "CMPW", Simple, None, [r(W), r(W)];
    Cmpl = 0xD1, "CMPL", Simple, None, [r(L), r(L)];
    Bitb = 0x93, "BITB", Simple, None, [r(B), r(B)];
    Bitw = 0xB3, "BITW", Simple, None, [r(W), r(W)];
    Bitl = 0xD3, "BITL", Simple, None, [r(L), r(L)];

    // ---- SIMPLE: conditional branches (with BRB/BRW, microcode-shared) ----
    Bneq = 0x12, "BNEQ", Simple, SimpleCond, [BB];
    Beql = 0x13, "BEQL", Simple, SimpleCond, [BB];
    Bgtr = 0x14, "BGTR", Simple, SimpleCond, [BB];
    Bleq = 0x15, "BLEQ", Simple, SimpleCond, [BB];
    Bgeq = 0x18, "BGEQ", Simple, SimpleCond, [BB];
    Blss = 0x19, "BLSS", Simple, SimpleCond, [BB];
    Bgtru = 0x1A, "BGTRU", Simple, SimpleCond, [BB];
    Blequ = 0x1B, "BLEQU", Simple, SimpleCond, [BB];
    Bvc = 0x1C, "BVC", Simple, SimpleCond, [BB];
    Bvs = 0x1D, "BVS", Simple, SimpleCond, [BB];
    Bcc = 0x1E, "BCC", Simple, SimpleCond, [BB];
    Bcs = 0x1F, "BCS", Simple, SimpleCond, [BB];
    Brb = 0x11, "BRB", Simple, SimpleCond, [BB];
    Brw = 0x31, "BRW", Simple, SimpleCond, [BW];

    // ---- SIMPLE: unconditional JMP ----
    Jmp = 0x17, "JMP", Simple, Unconditional, [a(B)];

    // ---- SIMPLE: low-bit tests ----
    Blbs = 0xE8, "BLBS", Simple, LowBit, [r(L), BB];
    Blbc = 0xE9, "BLBC", Simple, LowBit, [r(L), BB];

    // ---- SIMPLE: loop branches ----
    Sobgeq = 0xF4, "SOBGEQ", Simple, Loop, [m(L), BB];
    Sobgtr = 0xF5, "SOBGTR", Simple, Loop, [m(L), BB];
    Aoblss = 0xF2, "AOBLSS", Simple, Loop, [r(L), m(L), BB];
    Aobleq = 0xF3, "AOBLEQ", Simple, Loop, [r(L), m(L), BB];
    Acbb = 0x9D, "ACBB", Simple, Loop, [r(B), r(B), m(B), BW];
    Acbw = 0x3D, "ACBW", Simple, Loop, [r(W), r(W), m(W), BW];
    Acbl = 0xF1, "ACBL", Simple, Loop, [r(L), r(L), m(L), BW];

    // ---- SIMPLE: case branches ----
    Caseb = 0x8F, "CASEB", Simple, Case, [r(B), r(B), r(B)];
    Casew = 0xAF, "CASEW", Simple, Case, [r(W), r(W), r(W)];
    Casel = 0xCF, "CASEL", Simple, Case, [r(L), r(L), r(L)];

    // ---- SIMPLE: subroutine call/return ----
    Bsbb = 0x10, "BSBB", Simple, Subroutine, [BB];
    Bsbw = 0x30, "BSBW", Simple, Subroutine, [BW];
    Jsb = 0x16, "JSB", Simple, Subroutine, [a(B)];
    Rsb = 0x05, "RSB", Simple, Subroutine, [];

    // ---- FIELD: bit-field operations ----
    Extv = 0xEE, "EXTV", Field, None, [r(L), r(B), v(B), w(L)];
    Extzv = 0xEF, "EXTZV", Field, None, [r(L), r(B), v(B), w(L)];
    Insv = 0xF0, "INSV", Field, None, [r(L), r(L), r(B), v(B)];
    Cmpv = 0xEC, "CMPV", Field, None, [r(L), r(B), v(B), r(L)];
    Cmpzv = 0xED, "CMPZV", Field, None, [r(L), r(B), v(B), r(L)];
    Ffs = 0xEA, "FFS", Field, None, [r(L), r(B), v(B), w(L)];
    Ffc = 0xEB, "FFC", Field, None, [r(L), r(B), v(B), w(L)];

    // ---- FIELD: bit branches ----
    Bbs = 0xE0, "BBS", Field, BitBranch, [r(L), v(B), BB];
    Bbc = 0xE1, "BBC", Field, BitBranch, [r(L), v(B), BB];
    Bbss = 0xE2, "BBSS", Field, BitBranch, [r(L), v(B), BB];
    Bbcs = 0xE3, "BBCS", Field, BitBranch, [r(L), v(B), BB];
    Bbsc = 0xE4, "BBSC", Field, BitBranch, [r(L), v(B), BB];
    Bbcc = 0xE5, "BBCC", Field, BitBranch, [r(L), v(B), BB];
    Bbssi = 0xE6, "BBSSI", Field, BitBranch, [r(L), v(B), BB];
    Bbcci = 0xE7, "BBCCI", Field, BitBranch, [r(L), v(B), BB];

    // ---- FLOAT: F_floating ----
    Addf2 = 0x40, "ADDF2", Float, None, [r(F), m(F)];
    Addf3 = 0x41, "ADDF3", Float, None, [r(F), r(F), w(F)];
    Subf2 = 0x42, "SUBF2", Float, None, [r(F), m(F)];
    Subf3 = 0x43, "SUBF3", Float, None, [r(F), r(F), w(F)];
    Mulf2 = 0x44, "MULF2", Float, None, [r(F), m(F)];
    Mulf3 = 0x45, "MULF3", Float, None, [r(F), r(F), w(F)];
    Divf2 = 0x46, "DIVF2", Float, None, [r(F), m(F)];
    Divf3 = 0x47, "DIVF3", Float, None, [r(F), r(F), w(F)];
    Cvtfl = 0x4A, "CVTFL", Float, None, [r(F), w(L)];
    Cvtlf = 0x4E, "CVTLF", Float, None, [r(L), w(F)];
    Movf = 0x50, "MOVF", Float, None, [r(F), w(F)];
    Cmpf = 0x51, "CMPF", Float, None, [r(F), r(F)];
    Mnegf = 0x52, "MNEGF", Float, None, [r(F), w(F)];
    Tstf = 0x53, "TSTF", Float, None, [r(F)];
    Cvtfd = 0x56, "CVTFD", Float, None, [r(F), w(D)];

    // ---- FLOAT: D_floating ----
    Addd2 = 0x60, "ADDD2", Float, None, [r(D), m(D)];
    Addd3 = 0x61, "ADDD3", Float, None, [r(D), r(D), w(D)];
    Subd2 = 0x62, "SUBD2", Float, None, [r(D), m(D)];
    Subd3 = 0x63, "SUBD3", Float, None, [r(D), r(D), w(D)];
    Muld2 = 0x64, "MULD2", Float, None, [r(D), m(D)];
    Muld3 = 0x65, "MULD3", Float, None, [r(D), r(D), w(D)];
    Divd2 = 0x66, "DIVD2", Float, None, [r(D), m(D)];
    Divd3 = 0x67, "DIVD3", Float, None, [r(D), r(D), w(D)];
    Movd = 0x70, "MOVD", Float, None, [r(D), w(D)];
    Cmpd = 0x71, "CMPD", Float, None, [r(D), r(D)];
    Tstd = 0x73, "TSTD", Float, None, [r(D)];
    Cvtdl = 0x6A, "CVTDL", Float, None, [r(D), w(L)];
    Cvtld = 0x6E, "CVTLD", Float, None, [r(L), w(D)];

    // ---- FLOAT: integer multiply/divide (grouped with FLOAT per Table 1) ----
    Mulb2 = 0x84, "MULB2", Float, None, [r(B), m(B)];
    Mulb3 = 0x85, "MULB3", Float, None, [r(B), r(B), w(B)];
    Mulw2 = 0xA4, "MULW2", Float, None, [r(W), m(W)];
    Mulw3 = 0xA5, "MULW3", Float, None, [r(W), r(W), w(W)];
    Mull2 = 0xC4, "MULL2", Float, None, [r(L), m(L)];
    Mull3 = 0xC5, "MULL3", Float, None, [r(L), r(L), w(L)];
    Divb2 = 0x86, "DIVB2", Float, None, [r(B), m(B)];
    Divb3 = 0x87, "DIVB3", Float, None, [r(B), r(B), w(B)];
    Divw2 = 0xA6, "DIVW2", Float, None, [r(W), m(W)];
    Divw3 = 0xA7, "DIVW3", Float, None, [r(W), r(W), w(W)];
    Divl2 = 0xC6, "DIVL2", Float, None, [r(L), m(L)];
    Divl3 = 0xC7, "DIVL3", Float, None, [r(L), r(L), w(L)];
    Emul = 0x7A, "EMUL", Float, None, [r(L), r(L), r(L), w(Q)];
    Ediv = 0x7B, "EDIV", Float, None, [r(L), r(Q), w(L), w(L)];

    // ---- CALL/RET ----
    Callg = 0xFA, "CALLG", CallRet, ProcCall, [a(B), a(B)];
    Calls = 0xFB, "CALLS", CallRet, ProcCall, [r(L), a(B)];
    Ret = 0x04, "RET", CallRet, ProcCall, [];
    Pushr = 0xBB, "PUSHR", CallRet, None, [r(W)];
    Popr = 0xBA, "POPR", CallRet, None, [r(W)];

    // ---- SYSTEM ----
    Halt = 0x00, "HALT", System, None, [];
    Nop = 0x01, "NOP", System, None, [];
    Rei = 0x02, "REI", System, SystemBranch, [];
    Bpt = 0x03, "BPT", System, SystemBranch, [];
    Svpctx = 0x07, "SVPCTX", System, None, [];
    Ldpctx = 0x06, "LDPCTX", System, None, [];
    Chmk = 0xBC, "CHMK", System, SystemBranch, [r(W)];
    Chme = 0xBD, "CHME", System, SystemBranch, [r(W)];
    Chms = 0xBE, "CHMS", System, SystemBranch, [r(W)];
    Chmu = 0xBF, "CHMU", System, SystemBranch, [r(W)];
    Prober = 0x0C, "PROBER", System, None, [r(B), r(W), a(B)];
    Probew = 0x0D, "PROBEW", System, None, [r(B), r(W), a(B)];
    Insque = 0x0E, "INSQUE", System, None, [a(B), a(B)];
    Remque = 0x0F, "REMQUE", System, None, [a(B), w(L)];
    Mtpr = 0xDA, "MTPR", System, None, [r(L), r(L)];
    Mfpr = 0xDB, "MFPR", System, None, [r(L), w(L)];
    Bispsw = 0xB8, "BISPSW", System, None, [r(W)];
    Bicpsw = 0xB9, "BICPSW", System, None, [r(W)];

    // ---- CHARACTER ----
    Movc3 = 0x28, "MOVC3", Character, None, [r(W), a(B), a(B)];
    Cmpc3 = 0x29, "CMPC3", Character, None, [r(W), a(B), a(B)];
    Scanc = 0x2A, "SCANC", Character, None, [r(W), a(B), a(B), r(B)];
    Spanc = 0x2B, "SPANC", Character, None, [r(W), a(B), a(B), r(B)];
    Movc5 = 0x2C, "MOVC5", Character, None, [r(W), a(B), r(B), r(W), a(B)];
    Cmpc5 = 0x2D, "CMPC5", Character, None, [r(W), a(B), r(B), r(W), a(B)];
    Locc = 0x3A, "LOCC", Character, None, [r(B), r(W), a(B)];
    Skpc = 0x3B, "SKPC", Character, None, [r(B), r(W), a(B)];
    Matchc = 0x39, "MATCHC", Character, None, [r(W), a(B), r(W), a(B)];

    // ---- DECIMAL ----
    Addp4 = 0x20, "ADDP4", Decimal, None, [r(W), a(B), r(W), a(B)];
    Addp6 = 0x21, "ADDP6", Decimal, None, [r(W), a(B), r(W), a(B), r(W), a(B)];
    Subp4 = 0x22, "SUBP4", Decimal, None, [r(W), a(B), r(W), a(B)];
    Subp6 = 0x23, "SUBP6", Decimal, None, [r(W), a(B), r(W), a(B), r(W), a(B)];
    Mulp = 0x25, "MULP", Decimal, None, [r(W), a(B), r(W), a(B), r(W), a(B)];
    Divp = 0x27, "DIVP", Decimal, None, [r(W), a(B), r(W), a(B), r(W), a(B)];
    Movp = 0x34, "MOVP", Decimal, None, [r(W), a(B), a(B)];
    Cmpp3 = 0x35, "CMPP3", Decimal, None, [r(W), a(B), a(B)];
    Cmpp4 = 0x37, "CMPP4", Decimal, None, [r(W), a(B), r(W), a(B)];
    Cvtlp = 0xF9, "CVTLP", Decimal, None, [r(L), r(W), a(B)];
    Cvtpl = 0x36, "CVTPL", Decimal, None, [r(W), a(B), w(L)];
    Ashp = 0xF8, "ASHP", Decimal, None, [r(B), r(W), a(B), r(B), r(W), a(B)];
}

impl Opcode {
    /// Static metadata for this opcode.
    #[inline]
    pub fn info(self) -> &'static OpcodeInfo {
        &OPCODE_TABLE[self as usize]
    }

    /// The encoding byte.
    #[inline]
    pub fn byte(self) -> u8 {
        self.info().byte
    }

    /// Assembler mnemonic.
    #[inline]
    pub fn mnemonic(self) -> &'static str {
        self.info().mnemonic
    }

    /// Paper Table-1 group.
    #[inline]
    pub fn group(self) -> OpcodeGroup {
        self.info().group
    }

    /// Paper Table-2 PC-changing class.
    #[inline]
    pub fn branch_kind(self) -> BranchKind {
        self.info().branch
    }

    /// Operand signature.
    #[inline]
    pub fn operands(self) -> &'static [OperandKind] {
        self.info().operands
    }

    /// Look up an opcode by its encoding byte.
    pub fn from_byte(byte: u8) -> Option<Opcode> {
        DECODE_MAP[byte as usize]
    }

    /// Look up an opcode by mnemonic (case-insensitive).
    pub fn from_mnemonic(mn: &str) -> Option<Opcode> {
        let upper = mn.to_ascii_uppercase();
        OPCODE_TABLE
            .iter()
            .find(|info| info.mnemonic == upper)
            .map(|info| info.opcode)
    }

    /// Number of operand specifiers (excluding branch displacements).
    pub fn specifier_count(self) -> usize {
        self.operands()
            .iter()
            .filter(|op| !op.is_branch_disp())
            .count()
    }

    /// True if the instruction ends with an embedded branch displacement.
    pub fn has_branch_disp(self) -> bool {
        self.operands().iter().any(|op| op.is_branch_disp())
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Byte → opcode decode map, built at first use.
static DECODE_MAP: std::sync::LazyLock<[Option<Opcode>; 256]> = std::sync::LazyLock::new(|| {
    let mut map = [None; 256];
    for info in OPCODE_TABLE {
        assert!(
            map[info.byte as usize].is_none(),
            "duplicate opcode byte {:#04x} ({})",
            info.byte,
            info.mnemonic
        );
        map[info.byte as usize] = Some(info.opcode);
    }
    map
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_dense_and_consistent() {
        for (i, info) in OPCODE_TABLE.iter().enumerate() {
            assert_eq!(info.opcode as usize, i, "enum order mismatch at {i}");
            assert_eq!(info.opcode.info().byte, info.byte);
        }
    }

    #[test]
    fn no_duplicate_bytes() {
        // Forces construction of DECODE_MAP, which asserts uniqueness.
        assert_eq!(Opcode::from_byte(0xD0), Some(Opcode::Movl));
    }

    #[test]
    fn roundtrip_byte_lookup() {
        for info in OPCODE_TABLE {
            assert_eq!(Opcode::from_byte(info.byte), Some(info.opcode));
        }
    }

    #[test]
    fn mnemonic_lookup() {
        assert_eq!(Opcode::from_mnemonic("movl"), Some(Opcode::Movl));
        assert_eq!(Opcode::from_mnemonic("CALLS"), Some(Opcode::Calls));
        assert_eq!(Opcode::from_mnemonic("NOSUCH"), None);
    }

    #[test]
    fn well_known_encodings() {
        assert_eq!(Opcode::Movl.byte(), 0xD0);
        assert_eq!(Opcode::Calls.byte(), 0xFB);
        assert_eq!(Opcode::Ret.byte(), 0x04);
        assert_eq!(Opcode::Brb.byte(), 0x11);
        assert_eq!(Opcode::Movc3.byte(), 0x28);
        assert_eq!(Opcode::Chmk.byte(), 0xBC);
        assert_eq!(Opcode::Rei.byte(), 0x02);
        assert_eq!(Opcode::Sobgtr.byte(), 0xF5);
    }

    #[test]
    fn groups_match_table1() {
        assert_eq!(Opcode::Movl.group(), OpcodeGroup::Simple);
        assert_eq!(Opcode::Extv.group(), OpcodeGroup::Field);
        assert_eq!(
            Opcode::Mull2.group(),
            OpcodeGroup::Float,
            "integer multiply is FLOAT group"
        );
        assert_eq!(Opcode::Pushr.group(), OpcodeGroup::CallRet);
        assert_eq!(Opcode::Insque.group(), OpcodeGroup::System);
        assert_eq!(Opcode::Movc3.group(), OpcodeGroup::Character);
        assert_eq!(Opcode::Addp4.group(), OpcodeGroup::Decimal);
    }

    #[test]
    fn branch_kinds_match_table2() {
        assert_eq!(Opcode::Beql.branch_kind(), BranchKind::SimpleCond);
        assert_eq!(Opcode::Brw.branch_kind(), BranchKind::SimpleCond);
        assert_eq!(Opcode::Sobgtr.branch_kind(), BranchKind::Loop);
        assert_eq!(Opcode::Blbs.branch_kind(), BranchKind::LowBit);
        assert_eq!(Opcode::Jsb.branch_kind(), BranchKind::Subroutine);
        assert_eq!(Opcode::Jmp.branch_kind(), BranchKind::Unconditional);
        assert_eq!(Opcode::Casel.branch_kind(), BranchKind::Case);
        assert_eq!(Opcode::Bbs.branch_kind(), BranchKind::BitBranch);
        assert_eq!(Opcode::Calls.branch_kind(), BranchKind::ProcCall);
        assert_eq!(Opcode::Rei.branch_kind(), BranchKind::SystemBranch);
        assert_eq!(Opcode::Movl.branch_kind(), BranchKind::None);
    }

    #[test]
    fn specifier_counts() {
        assert_eq!(Opcode::Movl.specifier_count(), 2);
        assert_eq!(Opcode::Beql.specifier_count(), 0);
        assert!(Opcode::Beql.has_branch_disp());
        assert_eq!(Opcode::Sobgtr.specifier_count(), 1);
        assert!(Opcode::Sobgtr.has_branch_disp());
        assert_eq!(Opcode::Addp6.specifier_count(), 6);
        assert_eq!(Opcode::Ret.specifier_count(), 0);
        assert!(!Opcode::Ret.has_branch_disp());
    }

    #[test]
    fn max_six_specifiers() {
        for info in OPCODE_TABLE {
            assert!(info.opcode.specifier_count() <= 6, "{}", info.mnemonic);
        }
    }
}
