//! Property tests: encode → decode is the identity over random instructions.
//!
//! Driven by seeded random case generation (the offline build has no
//! proptest); every opcode in the table is exercised with random specifier
//! shapes, so coverage matches the original 512-case proptest run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vax_arch::{decode, encode, AddressingMode, Instruction, Opcode, OperandKind, Reg, Specifier};

/// An arbitrary non-PC general register.
fn any_gpr(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..15))
}

/// A random valid specifier for an operand of the given byte size.
fn any_specifier(rng: &mut StdRng, operand_size: u32) -> Specifier {
    let base = match rng.gen_range(0..10u32) {
        0 => Specifier::literal(rng.gen_range(0u8..64)),
        1 => Specifier::register(any_gpr(rng)),
        2 => Specifier::deferred(any_gpr(rng)),
        3 => Specifier::displacement(rng.gen::<i32>(), any_gpr(rng)),
        4 => Specifier::immediate(rng.gen::<u32>()),
        5 => Specifier::absolute(rng.gen::<u32>()),
        6 => Specifier {
            mode: AddressingMode::Autoincrement,
            reg: any_gpr(rng),
            value: 0,
            index: None,
        },
        7 => Specifier {
            mode: AddressingMode::Autodecrement,
            reg: any_gpr(rng),
            value: 0,
            index: None,
        },
        8 => Specifier {
            mode: AddressingMode::ByteDispDeferred,
            reg: any_gpr(rng),
            value: rng.gen::<i8>() as i64,
            index: None,
        },
        _ => Specifier {
            mode: AddressingMode::PcRelative,
            reg: Reg::PC,
            value: rng.gen::<i32>() as i64,
            index: None,
        },
    };
    // Immediates wider than a longword keep only `operand_size` bytes; mask
    // the generated value so the round-trip comparison is meaningful.
    let mut s = base;
    if s.mode == AddressingMode::Immediate && operand_size < 8 {
        let mask = (1u64 << (operand_size * 8)) - 1;
        s.value = ((s.value as u64) & mask) as i64;
    }
    let indexable = !matches!(
        s.mode,
        AddressingMode::Literal | AddressingMode::Register | AddressingMode::Immediate
    );
    if indexable && rng.gen_bool(0.5) {
        s = s.indexed(any_gpr(rng));
    }
    s
}

fn any_instruction(rng: &mut StdRng) -> Instruction {
    let i = rng.gen_range(0..Opcode::COUNT);
    let opcode = vax_arch::opcode::OPCODE_TABLE[i].opcode;
    let specs: Vec<Specifier> = opcode
        .operands()
        .iter()
        .filter_map(|op| match op {
            OperandKind::Spec(_, dt) => Some(any_specifier(rng, dt.size())),
            OperandKind::Branch(_) => None,
        })
        .collect();
    // Word-width opcodes allow a wider range; stay within byte range so both
    // widths are valid.
    let disp = if opcode.has_branch_disp() {
        Some(rng.gen_range(-128i32..=127))
    } else {
        None
    };
    Instruction::new(opcode, specs, disp)
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x1984);
    for _ in 0..512 {
        let insn = any_instruction(&mut rng);
        let bytes = encode(&insn);
        assert_eq!(bytes.len() as u32, insn.len, "{insn}");
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, insn);
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for _ in 0..512 {
        let n = rng.gen_range(0..32usize);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
        let _ = decode(&bytes);
    }
}

#[test]
fn decoded_len_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB0DED);
    for _ in 0..512 {
        let n = rng.gen_range(1..64usize);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
        if let Ok(insn) = decode(&bytes) {
            assert!(insn.len as usize <= bytes.len());
            assert!(insn.len >= 1);
        }
    }
}
