//! Property tests: encode → decode is the identity over random instructions.

use proptest::prelude::*;
use vax_arch::{
    decode, encode, AddressingMode, Instruction, Opcode, OperandKind, Reg, Specifier,
};

/// Strategy producing an arbitrary non-PC general register.
fn any_gpr() -> impl Strategy<Value = Reg> {
    (0u8..15).prop_map(Reg::new)
}

/// Strategy producing a random valid specifier for an operand of the given
/// byte size.
fn any_specifier(operand_size: u32) -> BoxedStrategy<Specifier> {
    let base = prop_oneof![
        (0u8..64).prop_map(Specifier::literal),
        any_gpr().prop_map(Specifier::register),
        any_gpr().prop_map(Specifier::deferred),
        (any_gpr(), any::<i32>()).prop_map(|(r, d)| Specifier::displacement(d, r)),
        any::<u32>().prop_map(Specifier::immediate),
        any::<u32>().prop_map(Specifier::absolute),
        any_gpr().prop_map(|r| Specifier {
            mode: AddressingMode::Autoincrement,
            reg: r,
            value: 0,
            index: None
        }),
        any_gpr().prop_map(|r| Specifier {
            mode: AddressingMode::Autodecrement,
            reg: r,
            value: 0,
            index: None
        }),
        (any_gpr(), any::<i8>()).prop_map(|(r, d)| Specifier {
            mode: AddressingMode::ByteDispDeferred,
            reg: r,
            value: d as i64,
            index: None
        }),
        any::<i32>().prop_map(|d| Specifier {
            mode: AddressingMode::PcRelative,
            reg: Reg::PC,
            value: d as i64,
            index: None
        }),
    ];
    // Immediates wider than a longword keep only `operand_size` bytes; mask
    // the generated value so the round-trip comparison is meaningful.
    let masked = base.prop_map(move |mut s| {
        if s.mode == AddressingMode::Immediate && operand_size < 8 {
            let mask = (1u64 << (operand_size * 8)) - 1;
            s.value = ((s.value as u64) & mask) as i64;
        }
        s
    });
    (masked, proptest::option::of(any_gpr()))
        .prop_map(|(s, ix)| {
            let indexable = !matches!(
                s.mode,
                AddressingMode::Literal | AddressingMode::Register | AddressingMode::Immediate
            );
            match (indexable, ix) {
                (true, Some(ix)) => s.indexed(ix),
                _ => s,
            }
        })
        .boxed()
}

fn any_instruction() -> impl Strategy<Value = Instruction> {
    (0..Opcode::COUNT)
        .prop_flat_map(|i| {
            let opcode = vax_arch::opcode::OPCODE_TABLE[i].opcode;
            let spec_strats: Vec<BoxedStrategy<Specifier>> = opcode
                .operands()
                .iter()
                .filter_map(|op| match op {
                    OperandKind::Spec(_, dt) => Some(any_specifier(dt.size())),
                    OperandKind::Branch(_) => None,
                })
                .collect();
            let disp = if opcode.has_branch_disp() {
                // Word-width opcodes allow a wider range; stay within byte
                // range so both widths are valid.
                (-128i32..=127).prop_map(Some).boxed()
            } else {
                Just(None).boxed()
            };
            (Just(opcode), spec_strats, disp)
        })
        .prop_map(|(opcode, specs, disp)| Instruction::new(opcode, specs, disp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrip(insn in any_instruction()) {
        let bytes = encode(&insn);
        prop_assert_eq!(bytes.len() as u32, insn.len);
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(decoded, insn);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn decoded_len_bounded(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
        if let Ok(insn) = decode(&bytes) {
            prop_assert!(insn.len as usize <= bytes.len());
            prop_assert!(insn.len >= 1);
        }
    }
}
