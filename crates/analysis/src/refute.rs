//! Counter refutation: turn the characterization probes adversarial.
//!
//! CounterPoint-style methodology: the simulator keeps two independent
//! instruments — the µPC histogram board and the CpuStats/MemStats
//! architectural counters — plus a published cycle model (a cost table
//! from [`crate::characterize`]). For each probe cell this module derives
//! *exact structural predictions* from the loop's shape (the loop is
//! strictly periodic, so a window of `iters` whole periods must contain
//! exactly `iters` copies of every instruction in it), re-runs the eight
//! conserved invariants, and optionally compares the re-attributed cost
//! against the model within a tolerance. Any disagreement is a
//! *refutation*: evidence that an instrument, the model, or the machine
//! drifted.
//!
//! A refutation is then auto-minimized — first the probe-copy count is
//! shrunk toward 1, then the addressing mode is walked toward the front
//! of [`AddressingMode::ALL`] — and serialized as a regression fixture so
//! the failing configuration is pinned forever.

use vax_arch::{AddressingMode, Opcode};
use vax_asm::probe::{mode_from_key, mode_key, probe_target, ProbeTarget, SCAFFOLD_INSNS};
use vax_asm::AsmError;

use crate::characterize::{attribute, run_probe, CostTable, ProbeRun};
use crate::json::Json;

/// Tolerance for model-vs-measurement comparisons. A cell's measured
/// value refutes the model when it differs by more than
/// `max(abs, rel × |model|)`.
#[derive(Debug, Clone, Copy)]
pub struct RefuteTolerance {
    /// Absolute tolerance, cycles (or bytes/references) per instruction.
    pub abs: f64,
    /// Relative tolerance.
    pub rel: f64,
}

impl Default for RefuteTolerance {
    fn default() -> Self {
        // Attribution is deterministic, so only the IB-stall residue needs
        // headroom; half a cycle absorbs it at any sane reps/iters.
        RefuteTolerance {
            abs: 0.5,
            rel: 0.01,
        }
    }
}

impl RefuteTolerance {
    /// True when `actual` disagrees with `expected` beyond tolerance.
    pub fn refutes(&self, expected: f64, actual: f64) -> bool {
        (actual - expected).abs() > self.abs.max(self.rel * expected.abs())
    }
}

/// One failed cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct RefuteCheck {
    /// Which prediction failed (`invariant:…`, `structural:…`, `model:…`).
    pub name: String,
    /// The predicted value.
    pub expected: f64,
    /// The measured value.
    pub actual: f64,
}

impl std::fmt::Display for RefuteCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: expected {} got {}",
            self.name, self.expected, self.actual
        )
    }
}

/// Run every cross-check against a completed probe run.
///
/// `baseline` is the shared scaffold run (needed only for the model
/// comparison); `model` enables the cost-table comparison.
pub fn check_cell(
    target: &ProbeTarget,
    probe: &ProbeRun,
    baseline: &ProbeRun,
    model: Option<(&CostTable, RefuteTolerance)>,
) -> Vec<RefuteCheck> {
    let mut failures = Vec::new();

    // 1. The eight conserved invariants (histogram vs counters).
    for c in probe.validation.divergences() {
        failures.push(RefuteCheck {
            name: format!("invariant:{}", c.name),
            expected: c.expected as f64,
            actual: c.actual as f64,
        });
    }

    // 2. Structural predictions from the loop shape. The loop is strictly
    // periodic and the window is a whole number of periods, so these hold
    // *exactly* — any slack would hide bugs.
    let k = probe.iters;
    let reps = u64::from(probe.probe.reps);
    let nspec = target.opcode.specifier_count() as u64;
    let stats = &probe.m.cpu_stats;
    let movl = Opcode::Movl as usize;
    let brw = Opcode::Brw as usize;
    let probed = target.opcode as usize;
    let mut expect_opcode = vec![0u64; stats.opcode_counts.len()];
    expect_opcode[movl] = 3 * k;
    expect_opcode[brw] = k;
    expect_opcode[probed] += k * reps;
    let structural: Vec<(String, u64, u64)> = vec![
        (
            "structural:instructions".into(),
            k * u64::from(probe.probe.period),
            stats.instructions,
        ),
        (
            format!("structural:opcode_count:{}", target.opcode.mnemonic()),
            expect_opcode[probed],
            stats.opcode_counts[probed],
        ),
        (
            "structural:opcode_count:MOVL".into(),
            expect_opcode[movl],
            stats.opcode_counts[movl],
        ),
        (
            "structural:opcode_count:BRW".into(),
            expect_opcode[brw],
            stats.opcode_counts[brw],
        ),
        (
            "structural:spec1_count".into(),
            k * (u64::from(SCAFFOLD_INSNS) - 1 + reps),
            stats.spec1_count,
        ),
        (
            "structural:spec26_count".into(),
            k * (3 + reps * (nspec - 1)),
            stats.spec26_count,
        ),
        ("structural:branch_disps".into(), k, stats.branch_disps),
        (
            "structural:istream_bytes".into(),
            k * u64::from(probe.probe.loop_bytes),
            stats.istream_bytes,
        ),
        ("structural:hw_interrupts".into(), 0, stats.hw_interrupts),
        (
            "structural:context_switches".into(),
            0,
            stats.context_switches,
        ),
        ("structural:exceptions".into(), 0, stats.exceptions),
    ];
    for (name, expected, actual) in structural {
        if expected != actual {
            failures.push(RefuteCheck {
                name,
                expected: expected as f64,
                actual: actual as f64,
            });
        }
    }

    // 3. The published cycle model, when given. A model that simply has
    // no record for this cell is incomplete, not refuted — the comparison
    // only runs where the model makes a claim.
    if let Some((table, tol)) = model {
        if let Some(rec) = table.find(target.opcode.mnemonic(), target.mode) {
            let measured = attribute(target, probe, baseline);
            {
                let pairs = [
                    ("model:cycles", rec.cycles, measured.cycles),
                    (
                        "model:compute",
                        rec.compute_cycles(),
                        measured.compute_cycles(),
                    ),
                    ("model:stall", rec.stall_cycles(), measured.stall_cycles()),
                    (
                        "model:istream_bytes",
                        rec.istream_bytes,
                        measured.istream_bytes,
                    ),
                    ("model:d_reads", rec.d_reads, measured.d_reads),
                    ("model:d_writes", rec.d_writes, measured.d_writes),
                ];
                for (name, expected, actual) in pairs {
                    if tol.refutes(expected, actual) {
                        failures.push(RefuteCheck {
                            name: name.into(),
                            expected,
                            actual,
                        });
                    }
                }
            }
        }
    }

    failures
}

/// A confirmed, minimized refutation: the smallest probe configuration
/// this search found that still fails at least one cross-check.
#[derive(Debug, Clone)]
pub struct Refutation {
    /// Probed opcode.
    pub opcode: Opcode,
    /// Addressing mode of the minimized failing probe.
    pub mode: AddressingMode,
    /// Specifier position carrying the mode.
    pub operand: usize,
    /// Probe copies of the minimized failing probe.
    pub reps: u32,
    /// Measured iterations.
    pub iters: u64,
    /// Warmup instructions.
    pub warmup: u64,
    /// The configuration that failed first, before minimization
    /// (`(mode, reps)`).
    pub found_at: (AddressingMode, u32),
    /// The failing checks of the minimized configuration.
    pub failures: Vec<RefuteCheck>,
}

/// Minimize a failing probe cell: shrink `reps` toward 1, then walk the
/// addressing mode toward the front of [`AddressingMode::ALL`], keeping
/// each reduction only if the cell still fails.
///
/// # Errors
/// Propagates assembler errors from re-running candidate probes.
pub fn minimize(
    target: &ProbeTarget,
    reps: u32,
    iters: u64,
    warmup: u64,
    baseline: &ProbeRun,
    model: Option<(&CostTable, RefuteTolerance)>,
    initial_failures: Vec<RefuteCheck>,
) -> Result<Refutation, AsmError> {
    let fails = |t: &ProbeTarget, r: u32| -> Result<Vec<RefuteCheck>, AsmError> {
        let run = run_probe(Some(t), r, iters, warmup)?;
        Ok(check_cell(t, &run, baseline, model))
    };

    let mut best_target = *target;
    let mut best_reps = reps;
    let mut best_failures = initial_failures;

    // Shrink reps first: adopt the smallest count that still fails.
    for r in 1..reps {
        let f = fails(&best_target, r)?;
        if !f.is_empty() {
            best_reps = r;
            best_failures = f;
            break;
        }
    }

    // Then walk the mode toward the front of the canonical order.
    for &mode in &AddressingMode::ALL {
        if mode == best_target.mode {
            break;
        }
        let Ok(candidate) = probe_target(target.opcode, mode) else {
            continue;
        };
        let f = fails(&candidate, best_reps)?;
        if !f.is_empty() {
            best_target = candidate;
            best_failures = f;
            break;
        }
    }

    Ok(Refutation {
        opcode: best_target.opcode,
        mode: best_target.mode,
        operand: best_target.operand,
        reps: best_reps,
        iters,
        warmup,
        found_at: (target.mode, reps),
        failures: best_failures,
    })
}

/// Serialize a refutation as a regression fixture
/// (`tests/fixtures/refutations/`).
pub fn refutation_json(r: &Refutation) -> String {
    let mut s = Json::obj([
        ("schema", Json::Str("vax-refutation/v1".to_string())),
        ("opcode", Json::Str(r.opcode.mnemonic().to_string())),
        ("mode", Json::Str(mode_key(r.mode).to_string())),
        ("operand", Json::Int(r.operand as i64)),
        ("reps", Json::Int(i64::from(r.reps))),
        ("iters", Json::Int(r.iters as i64)),
        ("warmup", Json::Int(r.warmup as i64)),
        (
            "found_at",
            Json::obj([
                ("mode", Json::Str(mode_key(r.found_at.0).to_string())),
                ("reps", Json::Int(i64::from(r.found_at.1))),
            ]),
        ),
        (
            "failures",
            Json::arr(r.failures.iter().map(|c| {
                Json::obj([
                    ("check", Json::Str(c.name.clone())),
                    ("expected", Json::Num(c.expected)),
                    ("actual", Json::Num(c.actual)),
                ])
            })),
        ),
    ])
    .to_string_pretty();
    s.push('\n');
    s
}

/// Parse a refutation fixture back to its probe configuration
/// (`(opcode, mode, reps)`), for replaying pinned regressions.
///
/// # Errors
/// Returns a message locating the first structural problem.
pub fn refutation_from_json(text: &str) -> Result<(Opcode, AddressingMode, u32), String> {
    let doc = Json::parse(text)?;
    let mnemonic = doc
        .get("opcode")
        .and_then(Json::as_str)
        .ok_or("missing 'opcode'")?;
    let opcode =
        Opcode::from_mnemonic(mnemonic).ok_or_else(|| format!("unknown opcode '{mnemonic}'"))?;
    let mode_s = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing 'mode'")?;
    let mode = mode_from_key(mode_s).ok_or_else(|| format!("unknown mode '{mode_s}'"))?;
    let reps = doc
        .get("reps")
        .and_then(Json::as_i64)
        .ok_or("missing 'reps'")? as u32;
    Ok((opcode, mode, reps))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: u64 = 16;
    const WARMUP: u64 = 2000;

    #[test]
    fn clean_cells_produce_no_failures() {
        let baseline = run_probe(None, 0, ITERS, WARMUP).unwrap();
        for (op, mode) in [
            (Opcode::Movl, AddressingMode::Register),
            (Opcode::Addl2, AddressingMode::RegisterDeferred),
            (Opcode::Clrl, AddressingMode::Autoincrement),
        ] {
            let t = probe_target(op, mode).unwrap();
            let run = run_probe(Some(&t), 4, ITERS, WARMUP).unwrap();
            let failures = check_cell(&t, &run, &baseline, None);
            assert!(
                failures.is_empty(),
                "{}/{}: {:?}",
                op.mnemonic(),
                mode_key(mode),
                failures
            );
        }
    }

    #[test]
    fn model_mutation_is_caught_and_minimized() {
        let baseline = run_probe(None, 0, ITERS, WARMUP).unwrap();
        let t = probe_target(Opcode::Movl, AddressingMode::RegisterDeferred).unwrap();
        let run = run_probe(Some(&t), 4, ITERS, WARMUP).unwrap();

        // An accurate model passes…
        let rec = attribute(&t, &run, &baseline);
        let mut table = CostTable {
            reps: 4,
            iters: ITERS,
            warmup: WARMUP,
            baseline_cpi: 0.0,
            baseline_loop_bytes: baseline.probe.loop_bytes,
            records: vec![rec],
            skips: vec![],
        };
        let tol = RefuteTolerance::default();
        assert!(check_cell(&t, &run, &baseline, Some((&table, tol))).is_empty());

        // …and a seeded 3-cycle error is refuted.
        table.records[0].cycles += 3.0;
        let failures = check_cell(&t, &run, &baseline, Some((&table, tol)));
        assert!(failures.iter().any(|f| f.name == "model:cycles"));

        let r = minimize(
            &t,
            4,
            ITERS,
            WARMUP,
            &baseline,
            Some((&table, tol)),
            failures,
        )
        .unwrap();
        // The mutated record is mode-specific, so minimization keeps the
        // mode but shrinks the probe count to a single copy.
        assert_eq!(r.opcode, Opcode::Movl);
        assert_eq!(r.mode, AddressingMode::RegisterDeferred);
        assert_eq!(r.reps, 1);
        assert!(!r.failures.is_empty());

        let fixture = refutation_json(&r);
        let (op, mode, reps) = refutation_from_json(&fixture).unwrap();
        assert_eq!((op, mode, reps), (r.opcode, r.mode, r.reps));
    }

    #[test]
    fn tolerance_bounds_behave() {
        let tol = RefuteTolerance { abs: 0.5, rel: 0.1 };
        assert!(!tol.refutes(10.0, 10.4));
        assert!(!tol.refutes(10.0, 10.9)); // within 10% relative
        assert!(tol.refutes(10.0, 11.5));
        assert!(!tol.refutes(0.0, 0.4)); // abs floor covers near-zero
        assert!(tol.refutes(0.0, 0.6));
    }
}
