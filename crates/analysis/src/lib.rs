//! # vax-analysis
//!
//! Data reduction: from a µPC histogram (plus the control-store map and the
//! auxiliary counters) to the paper's Tables 1–9 and §4 event rates.
//!
//! The reduction mirrors the paper's method: the histogram is interpreted
//! *by address* against the control-store map — each location's activity
//! (Table 8 row) and microinstruction kind, combined with the counter plane,
//! yield the six cycle classes (Table 8 columns). Routine entry-point counts
//! yield event frequencies (specifier modes, TB misses).

pub mod analysis;
pub mod characterize;
pub mod checkpoint;
pub mod diffrun;
pub mod export;
pub mod json;
pub mod paper;
pub mod profile;
pub mod refute;
pub mod tables;
pub mod validate;

pub use analysis::Analysis;
pub use characterize::{
    attribute, costs_from_json, costs_json, costs_markdown, run_probe, select_grid, CostRecord,
    CostTable, ProbeRun, SkipRecord,
};
pub use checkpoint::{cell_from_json, cell_to_json, CheckpointCell};
pub use diffrun::{diff_json, DeltaKind, DiffReport, MetricDelta, Tolerance};
pub use export::{
    measurement_json, run_artifacts, tables_json, timeseries_from_json, timeseries_json,
    RunManifest,
};
pub use json::Json;
pub use profile::{Profile, ProfileNode, RoutineProfile};
pub use refute::{check_cell, minimize, refutation_json, Refutation, RefuteCheck, RefuteTolerance};
pub use tables::print_all_tables;
pub use validate::{validate, ValidationCheck, ValidationReport};
