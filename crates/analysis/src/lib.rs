//! # vax-analysis
//!
//! Data reduction: from a µPC histogram (plus the control-store map and the
//! auxiliary counters) to the paper's Tables 1–9 and §4 event rates.
//!
//! The reduction mirrors the paper's method: the histogram is interpreted
//! *by address* against the control-store map — each location's activity
//! (Table 8 row) and microinstruction kind, combined with the counter plane,
//! yield the six cycle classes (Table 8 columns). Routine entry-point counts
//! yield event frequencies (specifier modes, TB misses).

pub mod analysis;
pub mod paper;
pub mod tables;

pub use analysis::Analysis;
pub use tables::print_all_tables;
