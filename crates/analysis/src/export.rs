//! Machine-readable telemetry: JSON builders for measurements, the paper's
//! tables, interval time series, and the run manifest.
//!
//! Each builder mirrors the corresponding renderer in [`crate::tables`] but
//! emits numbers instead of formatted text, so downstream tooling can diff
//! runs against each other and against the paper's published values without
//! scraping console output.

use upc_monitor::{Activity, CycleClass, Plane};
use vax780::{Measurement, TimeSeries};
use vax_arch::{AddressingMode, BranchKind, OpcodeGroup};

use crate::analysis::Analysis;
use crate::json::Json;
use crate::paper;
use crate::validate::ValidationReport;

/// Everything needed to reproduce a run, written alongside its results.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Which experiment / workload ran.
    pub experiment: String,
    /// Workload RNG seed, when the workload is randomized.
    pub seed: Option<u64>,
    /// Measured instruction budget.
    pub instructions: u64,
    /// Warm-up instructions before counters were cleared.
    pub warmup: u64,
    /// Sampling interval in cycles (0 = no interval sampling).
    pub interval_cycles: u64,
    /// Replica shards per workload. Part of the experiment definition (each
    /// shard adds `instructions` under its own seed stream), unlike the job
    /// count, which is deliberately *not* recorded: exports must be
    /// byte-identical at any parallelism.
    pub shards: u64,
    /// Human-readable description of the simulated configuration.
    pub config: String,
    /// Fault-injection seed, when a fault plan was installed.
    pub fault_seed: Option<u64>,
    /// Enabled fault classes, canonical names in canonical order (empty
    /// when no faults were injected).
    pub fault_classes: Vec<String>,
    /// True when at least one (workload, shard) cell exhausted its retry
    /// budget and was quarantined — the exports then cover only the
    /// completed cells.
    pub degraded: bool,
    /// Quarantined cells as (workload name, shard index), grid order.
    pub failed_cells: Vec<(String, u64)>,
}

impl RunManifest {
    /// Serialize the manifest.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format_version", Json::Int(2)),
            (
                "paper",
                Json::from(
                    "A Characterization of Processor Performance in the VAX-11/780 \
                     (Emer & Clark, ISCA 1984)",
                ),
            ),
            ("experiment", Json::from(self.experiment.clone())),
            ("seed", self.seed.map(Json::from).unwrap_or(Json::Null)),
            ("instructions", Json::from(self.instructions)),
            ("warmup", Json::from(self.warmup)),
            ("interval_cycles", Json::from(self.interval_cycles)),
            ("shards", Json::from(self.shards)),
            ("config", Json::from(self.config.clone())),
            (
                "fault_seed",
                self.fault_seed.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "fault_classes",
                Json::arr(self.fault_classes.iter().map(|c| Json::from(c.clone()))),
            ),
            ("degraded", Json::from(self.degraded)),
            (
                "failed_cells",
                Json::arr(self.failed_cells.iter().map(|(w, s)| {
                    Json::obj([
                        ("workload", Json::from(w.clone())),
                        ("shard", Json::from(*s)),
                    ])
                })),
            ),
        ])
    }
}

/// Serialize one measurement's raw counters.
pub fn measurement_json(m: &Measurement) -> Json {
    let cs = &m.cpu_stats;
    let ms = &m.mem_stats;
    let branches = Json::arr(BranchKind::TABLE2_ROWS.iter().map(|k| {
        Json::obj([
            ("class", Json::from(k.name())),
            ("executed", Json::from(cs.branch_executed_of(*k))),
            ("taken", Json::from(cs.branch_taken_of(*k))),
        ])
    }));
    let opcodes = Json::Obj(
        vax_arch::opcode::OPCODE_TABLE
            .iter()
            .filter(|info| cs.opcode_counts[info.opcode as usize] > 0)
            .map(|info| {
                (
                    info.opcode.mnemonic().to_string(),
                    Json::from(cs.opcode_counts[info.opcode as usize]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("cycles", Json::from(m.cycles)),
        ("instructions", Json::from(m.instructions())),
        ("cpi", Json::from(m.cpi())),
        (
            "cpu_stats",
            Json::obj([
                ("istream_bytes", Json::from(cs.istream_bytes)),
                ("hw_interrupts", Json::from(cs.hw_interrupts)),
                ("sw_interrupts", Json::from(cs.sw_interrupts)),
                (
                    "sw_interrupt_requests",
                    Json::from(cs.sw_interrupt_requests),
                ),
                ("machine_checks", Json::from(cs.machine_checks)),
                ("context_switches", Json::from(cs.context_switches)),
                ("exceptions", Json::from(cs.exceptions)),
                ("spec1_count", Json::from(cs.spec1_count)),
                ("spec26_count", Json::from(cs.spec26_count)),
                ("spec1_quad_repeats", Json::from(cs.spec1_quad_repeats)),
                ("spec26_quad_repeats", Json::from(cs.spec26_quad_repeats)),
                ("branch_disps", Json::from(cs.branch_disps)),
                ("branches", branches),
                ("opcode_counts", opcodes),
            ]),
        ),
        (
            "mem_stats",
            Json::obj([
                ("d_reads", Json::from(ms.d_reads)),
                ("d_read_misses", Json::from(ms.d_read_misses)),
                ("d_writes", Json::from(ms.d_writes)),
                ("d_write_hits", Json::from(ms.d_write_hits)),
                ("i_reads", Json::from(ms.i_reads)),
                ("i_read_misses", Json::from(ms.i_read_misses)),
                ("tb_miss_d", Json::from(ms.tb_miss_d)),
                ("tb_miss_i", Json::from(ms.tb_miss_i)),
                ("unaligned_refs", Json::from(ms.unaligned_refs)),
                ("pte_reads", Json::from(ms.pte_reads)),
                ("pte_read_misses", Json::from(ms.pte_read_misses)),
                ("read_stall_cycles", Json::from(ms.read_stall_cycles)),
                ("write_stall_cycles", Json::from(ms.write_stall_cycles)),
                ("parity_faults", Json::from(ms.parity_faults)),
            ]),
        ),
        (
            "histogram",
            Json::obj([
                ("total_cycles", Json::from(m.hist.total_cycles())),
                (
                    "normal_cycles",
                    Json::from(m.hist.plane_total(Plane::Normal)),
                ),
                (
                    "stalled_cycles",
                    Json::from(m.hist.plane_total(Plane::Stalled)),
                ),
                (
                    "nonzero_buckets",
                    Json::from(m.hist.nonzero().count() as u64),
                ),
            ]),
        ),
    ])
}

/// Serialize the interval time series.
pub fn timeseries_json(ts: &TimeSeries) -> Json {
    Json::obj([
        ("intervals", Json::from(ts.len() as u64)),
        (
            "samples",
            Json::arr(ts.samples.iter().map(|s| {
                let d = &s.delta;
                Json::obj([
                    ("start_cycle", Json::from(s.start_cycle)),
                    ("end_cycle", Json::from(s.end_cycle)),
                    ("cycles", Json::from(s.cycles())),
                    ("instructions", Json::from(d.instructions())),
                    ("cpi", Json::from(s.cpi())),
                    ("read_stall_cycles", Json::from(s.read_stalls())),
                    ("write_stall_cycles", Json::from(s.write_stalls())),
                    ("ib_reads", Json::from(d.mem_stats.i_reads)),
                    (
                        "cache_read_misses",
                        Json::from(d.mem_stats.total_read_misses()),
                    ),
                    ("tb_misses", Json::from(d.mem_stats.total_tb_misses())),
                    ("interrupts", Json::from(d.cpu_stats.total_interrupts())),
                    ("context_switches", Json::from(d.cpu_stats.context_switches)),
                    ("interrupt_headway", Json::from(s.interrupt_headway())),
                ])
            })),
        ),
    ])
}

/// Parse a [`timeseries_json`] export back into a series.
///
/// Like [`TimeSeries::from_csv`], the export is a lossy projection — totals
/// without their components, no histogram — so each total is stored in the
/// first component counter (`cache_read_misses` into `d_read_misses`,
/// `tb_misses` into `tb_miss_d`, `interrupts` into `hw_interrupts`).
/// Re-serializing the parsed series reproduces the original document
/// exactly: the derived `cpi`, `interrupt_headway`, and stall fields
/// recompute bit-identically from the preserved integers.
///
/// # Errors
/// Returns a message naming the first missing or mistyped field.
pub fn timeseries_from_json(j: &Json) -> Result<TimeSeries, String> {
    let samples = j
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or("timeseries: missing 'samples' array")?;
    let declared = j
        .get("intervals")
        .and_then(Json::as_i64)
        .ok_or("timeseries: missing 'intervals'")?;
    if declared as usize != samples.len() {
        return Err(format!(
            "timeseries: 'intervals' says {declared} but {} samples present",
            samples.len()
        ));
    }
    let mut ts = TimeSeries::default();
    for (i, s) in samples.iter().enumerate() {
        let int = |key: &str| -> Result<u64, String> {
            s.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("timeseries: sample {i}: missing integer '{key}'"))
        };
        let start_cycle = int("start_cycle")?;
        let end_cycle = int("end_cycle")?;
        if int("cycles")? != end_cycle.saturating_sub(start_cycle) {
            return Err(format!(
                "timeseries: sample {i}: 'cycles' disagrees with bounds"
            ));
        }
        let mut delta = Measurement {
            cycles: end_cycle - start_cycle,
            ..Measurement::default()
        };
        delta.cpu_stats.instructions = int("instructions")?;
        delta.mem_stats.read_stall_cycles = int("read_stall_cycles")?;
        delta.mem_stats.write_stall_cycles = int("write_stall_cycles")?;
        delta.mem_stats.i_reads = int("ib_reads")?;
        delta.mem_stats.d_read_misses = int("cache_read_misses")?;
        delta.mem_stats.tb_miss_d = int("tb_misses")?;
        delta.cpu_stats.hw_interrupts = int("interrupts")?;
        delta.cpu_stats.context_switches = int("context_switches")?;
        ts.samples.push(vax780::IntervalSample {
            start_cycle,
            end_cycle,
            delta,
        });
    }
    Ok(ts)
}

fn measured_paper(measured: f64, paper: f64) -> Json {
    Json::obj([
        ("measured", Json::from(measured)),
        ("paper", Json::from(paper)),
    ])
}

fn table1_json(a: &Analysis) -> Json {
    let measured = a.group_percent();
    Json::arr(OpcodeGroup::ALL.iter().enumerate().map(|(i, g)| {
        Json::obj([
            ("group", Json::from(g.name())),
            ("measured_percent", Json::from(measured[i])),
            ("paper_percent", Json::from(paper::TABLE1_GROUP_PERCENT[i])),
        ])
    }))
}

fn table2_json(a: &Analysis) -> Json {
    let n = a.instructions.max(1) as f64;
    let row = |name: &str, execd: u64, taken: u64, p: (f64, f64, f64)| {
        Json::obj([
            ("class", Json::from(name)),
            (
                "executed_percent",
                measured_paper(100.0 * execd as f64 / n, p.0),
            ),
            (
                "taken_percent",
                measured_paper(
                    if execd > 0 {
                        100.0 * taken as f64 / execd as f64
                    } else {
                        0.0
                    },
                    p.1,
                ),
            ),
            (
                "taken_of_all_percent",
                measured_paper(100.0 * taken as f64 / n, p.2),
            ),
        ])
    };
    let mut tot_exec = 0u64;
    let mut tot_taken = 0u64;
    let mut rows: Vec<Json> = BranchKind::TABLE2_ROWS
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let execd = a.m.cpu_stats.branch_executed_of(*k);
            let taken = a.m.cpu_stats.branch_taken_of(*k);
            tot_exec += execd;
            tot_taken += taken;
            row(k.name(), execd, taken, paper::TABLE2[i])
        })
        .collect();
    rows.push(row("TOTAL", tot_exec, tot_taken, paper::TABLE2_TOTAL));
    Json::Arr(rows)
}

fn table3_json(a: &Analysis) -> Json {
    let n = a.instructions.max(1) as f64;
    Json::obj([
        (
            "first_specifiers_per_instr",
            measured_paper(a.spec1.total() as f64 / n, paper::TABLE3_SPEC1),
        ),
        (
            "other_specifiers_per_instr",
            measured_paper(a.spec26.total() as f64 / n, paper::TABLE3_SPEC26),
        ),
        (
            "branch_displacements_per_instr",
            measured_paper(a.m.cpu_stats.branch_disps as f64 / n, paper::TABLE3_BDISP),
        ),
    ])
}

fn table4_json(a: &Analysis) -> Json {
    let modes = Json::arr(AddressingMode::ALL.iter().enumerate().map(|(i, m)| {
        Json::obj([
            ("mode", Json::from(format!("{m:?}"))),
            ("spec1_count", Json::from(a.spec1.by_mode[i])),
            ("spec26_count", Json::from(a.spec26.by_mode[i])),
        ])
    }));
    Json::obj([
        ("by_mode", modes),
        ("spec1_total", Json::from(a.spec1.total())),
        ("spec26_total", Json::from(a.spec26.total())),
        ("spec1_indexed", Json::from(a.spec1.indexed)),
        ("spec26_indexed", Json::from(a.spec26.indexed)),
        ("indexed_percent_paper", Json::from(paper::TABLE4_INDEXED.2)),
    ])
}

fn table5_json(a: &Analysis) -> Json {
    let rows = [
        ("Spec1", Activity::Spec1),
        ("Spec2-6", Activity::Spec26),
        ("Simple", Activity::ExecSimple),
        ("Field", Activity::ExecField),
        ("Float", Activity::ExecFloat),
        ("Call/Ret", Activity::ExecCallRet),
        ("System", Activity::ExecSystem),
        ("Character", Activity::ExecCharacter),
        ("Decimal", Activity::ExecDecimal),
    ];
    let other_rows = [
        Activity::Decode,
        Activity::BDisp,
        Activity::IntExcept,
        Activity::MemMgmt,
        Activity::Abort,
    ];
    let mut reads = 0.0;
    let mut writes = 0.0;
    let mut out: Vec<Json> = rows
        .iter()
        .map(|(name, act)| {
            let r = a.cell(*act, CycleClass::Read);
            let w = a.cell(*act, CycleClass::Write);
            reads += r;
            writes += w;
            Json::obj([
                ("source", Json::from(*name)),
                ("reads_per_instr", Json::from(r)),
                ("writes_per_instr", Json::from(w)),
            ])
        })
        .collect();
    let or: f64 = other_rows
        .iter()
        .map(|&x| a.cell(x, CycleClass::Read))
        .sum();
    let ow: f64 = other_rows
        .iter()
        .map(|&x| a.cell(x, CycleClass::Write))
        .sum();
    reads += or;
    writes += ow;
    out.push(Json::obj([
        ("source", Json::from("Other")),
        ("reads_per_instr", Json::from(or)),
        ("writes_per_instr", Json::from(ow)),
    ]));
    let n = a.instructions.max(1) as f64;
    Json::obj([
        ("rows", Json::Arr(out)),
        (
            "total_reads_per_instr",
            measured_paper(reads, paper::TABLE5_READS_TOTAL),
        ),
        (
            "total_writes_per_instr",
            measured_paper(writes, paper::TABLE5_WRITES_TOTAL),
        ),
        (
            "unaligned_refs_per_instr",
            measured_paper(
                a.m.mem_stats.unaligned_refs as f64 / n,
                paper::UNALIGNED_PER_INSTR,
            ),
        ),
    ])
}

fn table6_json(a: &Analysis) -> Json {
    Json::obj([(
        "avg_instruction_bytes",
        measured_paper(
            a.m.cpu_stats.avg_instruction_bytes(),
            paper::TABLE6_AVG_INSTR_BYTES,
        ),
    )])
}

fn table7_json(a: &Analysis) -> Json {
    let entry = |v: Option<f64>, p: f64| {
        Json::obj([
            ("measured", v.map(Json::from).unwrap_or(Json::Null)),
            ("paper", Json::from(p)),
        ])
    };
    Json::obj([
        (
            "sw_interrupt_request_headway",
            entry(
                a.headway(a.m.cpu_stats.sw_interrupt_requests),
                paper::TABLE7_SOFT_REQ_HEADWAY,
            ),
        ),
        (
            "interrupt_headway",
            entry(
                a.headway(a.m.cpu_stats.total_interrupts()),
                paper::TABLE7_INTERRUPT_HEADWAY,
            ),
        ),
        (
            "context_switch_headway",
            entry(
                a.headway(a.m.cpu_stats.context_switches),
                paper::TABLE7_CONTEXT_SWITCH_HEADWAY,
            ),
        ),
    ])
}

fn events_json(a: &Analysis) -> Json {
    let n = a.instructions.max(1) as f64;
    let ms = &a.m.mem_stats;
    let ib_refs = ms.i_reads as f64 / n;
    let avg_bytes = a.m.cpu_stats.avg_instruction_bytes();
    Json::obj([
        (
            "ib_refs_per_instr",
            measured_paper(ib_refs, paper::IB_REFS_PER_INSTR),
        ),
        (
            "ib_bytes_per_ref",
            measured_paper(
                if ib_refs > 0.0 {
                    avg_bytes / ib_refs
                } else {
                    0.0
                },
                paper::IB_BYTES_PER_REF,
            ),
        ),
        (
            "cache_read_misses_per_instr",
            measured_paper(
                ms.total_read_misses() as f64 / n,
                paper::CACHE_MISSES_PER_INSTR.0,
            ),
        ),
        (
            "cache_read_misses_istream_per_instr",
            measured_paper(ms.i_read_misses as f64 / n, paper::CACHE_MISSES_PER_INSTR.1),
        ),
        (
            "cache_read_misses_dstream_per_instr",
            measured_paper(
                (ms.d_read_misses + ms.pte_read_misses) as f64 / n,
                paper::CACHE_MISSES_PER_INSTR.2,
            ),
        ),
        (
            "tb_misses_per_instr",
            measured_paper(
                ms.total_tb_misses() as f64 / n,
                paper::TB_MISSES_PER_INSTR.0,
            ),
        ),
        (
            "tb_miss_service_cycles",
            measured_paper(
                if ms.total_tb_misses() > 0 {
                    a.tb_miss_cycles as f64 / ms.total_tb_misses() as f64
                } else {
                    0.0
                },
                paper::TB_MISS_SERVICE_CYCLES,
            ),
        ),
    ])
}

fn table8_json(a: &Analysis) -> Json {
    let class_key = crate::profile::class_key;
    let rows = Json::arr(Activity::ALL.iter().enumerate().map(|(i, act)| {
        let mut members: Vec<(String, Json)> =
            vec![("activity".to_string(), Json::from(act.name()))];
        for class in CycleClass::ALL {
            members.push((
                class_key(class).to_string(),
                Json::from(a.cell(*act, class)),
            ));
        }
        members.push(("total".to_string(), Json::from(a.row_total(*act))));
        members.push((
            "paper_total".to_string(),
            Json::from(paper::TABLE8_ROW_TOTALS[i]),
        ));
        Json::Obj(members)
    }));
    let mut totals: Vec<(String, Json)> = Vec::new();
    for (i, class) in CycleClass::ALL.iter().enumerate() {
        totals.push((
            class_key(*class).to_string(),
            measured_paper(a.col_total(*class), paper::TABLE8_COLUMN_TOTALS[i]),
        ));
    }
    Json::obj([
        ("rows", rows),
        ("column_totals", Json::Obj(totals)),
        ("cpi", measured_paper(a.cpi(), paper::TABLE8_CPI)),
    ])
}

fn table9_json(a: &Analysis) -> Json {
    let groups = a.group_percent();
    Json::arr(OpcodeGroup::ALL.iter().enumerate().filter_map(|(i, g)| {
        let freq = groups[i] / 100.0;
        if freq <= 0.0 {
            return None;
        }
        let act = Analysis::group_activity(*g);
        let mut total = 0.0;
        let mut members: Vec<(String, Json)> = vec![("group".to_string(), Json::from(g.name()))];
        for (key, class) in [
            ("compute", CycleClass::Compute),
            ("read", CycleClass::Read),
            ("read_stall", CycleClass::ReadStall),
            ("write", CycleClass::Write),
            ("write_stall", CycleClass::WriteStall),
        ] {
            let v = a.cell(act, class) / freq;
            total += v;
            members.push((key.to_string(), Json::from(v)));
        }
        members.push(("total".to_string(), Json::from(total)));
        members.push((
            "paper_total".to_string(),
            Json::from(paper::TABLE9_GROUP_TOTALS[i]),
        ));
        Some(Json::Obj(members))
    }))
}

/// Serialize Tables 1–9 plus the §4 implementation events.
pub fn tables_json(a: &Analysis) -> Json {
    Json::obj([
        ("instructions", Json::from(a.instructions)),
        ("cycles", Json::from(a.cycles)),
        ("cpi", measured_paper(a.cpi(), paper::TABLE8_CPI)),
        ("table1_opcode_groups", table1_json(a)),
        ("table2_pc_changing", table2_json(a)),
        ("table3_specifiers", table3_json(a)),
        ("table4_specifier_modes", table4_json(a)),
        ("table5_dstream_refs", table5_json(a)),
        ("table6_instruction_size", table6_json(a)),
        ("table7_headways", table7_json(a)),
        ("section4_events", events_json(a)),
        ("table8_instruction_timing", table8_json(a)),
        ("table9_group_timing", table9_json(a)),
    ])
}

/// Bundle every artifact of a run into `(file name, contents)` pairs, ready
/// to be written into an output directory.
pub fn run_artifacts(
    manifest: &RunManifest,
    a: &Analysis,
    ts: &TimeSeries,
    validation: &ValidationReport,
) -> Vec<(&'static str, String)> {
    vec![
        ("manifest.json", manifest.to_json().to_string_pretty()),
        (
            "measurement.json",
            measurement_json(&a.m).to_string_pretty(),
        ),
        ("tables.json", tables_json(a).to_string_pretty()),
        ("timeseries.json", timeseries_json(ts).to_string_pretty()),
        ("timeseries.csv", ts.to_csv()),
        ("validation.json", validation.to_json().to_string_pretty()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
    use vax_arch::{Opcode, Reg};
    use vax_asm::{Asm, Operand};

    fn measured() -> (vax780::System, Measurement, TimeSeries) {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.label("loop");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Reg(Reg::new(3))],
            None,
        );
        asm.insn(Opcode::Brb, &[], Some("loop"));
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
        let mut sys = b.build();
        let (m, ts) = sys.measure_sampled(500, 5_000, 2_000);
        (sys, m, ts)
    }

    #[test]
    fn measurement_roundtrips_through_json() {
        let (_, m, _) = measured();
        let j = measurement_json(&m);
        let parsed = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(
            parsed.get("cycles").and_then(Json::as_i64),
            Some(m.cycles as i64)
        );
        assert_eq!(
            parsed.get("instructions").and_then(Json::as_i64),
            Some(m.instructions() as i64)
        );
        let cpi = parsed.get("cpi").and_then(Json::as_f64).unwrap();
        assert_eq!(cpi.to_bits(), m.cpi().to_bits());
    }

    #[test]
    fn artifacts_complete_and_parse() {
        let (sys, m, ts) = measured();
        let a = Analysis::new(&sys.cpu.cs, &m);
        let v = validate(&sys.cpu.cs, &m);
        let manifest = RunManifest {
            experiment: "unit".to_string(),
            seed: Some(7),
            instructions: 5_000,
            warmup: 500,
            interval_cycles: 2_000,
            shards: 1,
            config: "default".to_string(),
            fault_seed: None,
            fault_classes: Vec::new(),
            degraded: false,
            failed_cells: Vec::new(),
        };
        let files = run_artifacts(&manifest, &a, &ts, &v);
        let names: Vec<&str> = files.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "manifest.json",
                "measurement.json",
                "tables.json",
                "timeseries.json",
                "timeseries.csv",
                "validation.json"
            ]
        );
        for (name, body) in &files {
            if name.ends_with(".json") {
                Json::parse(body).unwrap_or_else(|e| panic!("{name}: {e}"));
            } else {
                assert!(body.starts_with("start_cycle,"));
            }
        }
    }

    #[test]
    fn tables_json_matches_analysis() {
        let (sys, m, _) = measured();
        let a = Analysis::new(&sys.cpu.cs, &m);
        let t = tables_json(&a);
        let cpi = t
            .get("cpi")
            .and_then(|v| v.get("measured"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((cpi - a.cpi()).abs() < 1e-12);
        let rows = t
            .get("table8_instruction_timing")
            .and_then(|v| v.get("rows"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rows.len(), 14);
        let t1 = t
            .get("table1_opcode_groups")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(t1.len(), 7);
    }

    #[test]
    fn timeseries_json_conserves_instructions() {
        let (_, m, ts) = measured();
        let j = timeseries_json(&ts);
        let total: i64 = j
            .get("samples")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|s| s.get("instructions").and_then(Json::as_i64).unwrap())
            .sum();
        assert_eq!(total as u64, m.instructions());
    }
}
