//! The reduction itself.

use upc_monitor::map::classify;
use upc_monitor::{Activity, ControlStoreMap, CycleClass, MicroPc, Plane};
use vax780::Measurement;
use vax_arch::{AddressingMode, OpcodeGroup};
use vax_cpu::store::SpecFlavor;
use vax_cpu::ControlStore;

/// Per-specifier-position mode counts reduced from routine entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecModeCounts {
    /// Evaluations per addressing mode, `AddressingMode::ALL` order.
    pub by_mode: [u64; 16],
    /// Index-prefix evaluations.
    pub indexed: u64,
}

impl SpecModeCounts {
    /// Total specifier evaluations.
    pub fn total(&self) -> u64 {
        self.by_mode.iter().sum()
    }
}

/// Everything the tables need, reduced from one (possibly composite)
/// measurement.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Cycles per average instruction by Table-8 cell:
    /// `matrix[activity][class]` in `Activity::ALL` × `CycleClass::ALL`
    /// order.
    pub matrix: [[f64; 6]; 14],
    /// First-specifier mode counts.
    pub spec1: SpecModeCounts,
    /// Specifier 2–6 mode counts.
    pub spec26: SpecModeCounts,
    /// Cycles spent inside the TB-miss service routine (MemMgmt rows of the
    /// TBMISS region only).
    pub tb_miss_cycles: u64,
    /// The measurement's raw counters.
    pub m: Measurement,
}

impl Analysis {
    /// Reduce a measurement against the control store that produced it.
    pub fn new(cs: &ControlStore, m: &Measurement) -> Analysis {
        let map: &ControlStoreMap = &cs.map;
        let mut matrix_counts = [[0u64; 6]; 14];
        let mut tb_miss_cycles = 0u64;
        for (upc, plane, count) in m.hist.nonzero() {
            let act = map.activity(upc);
            let op = map.op(upc);
            let class = classify(op, plane == Plane::Stalled);
            matrix_counts[act.index()][class.index()] += count;
            if map.routine(upc).starts_with("TBMISS") {
                tb_miss_cycles += count;
            }
        }
        let instructions = m.cpu_stats.instructions.max(1);
        let mut matrix = [[0.0; 6]; 14];
        for (row, counts) in matrix_counts.iter().enumerate() {
            for (col, &c) in counts.iter().enumerate() {
                matrix[row][col] = c as f64 / instructions as f64;
            }
        }

        let spec1 = Self::spec_counts(cs, m, true);
        let spec26 = Self::spec_counts(cs, m, false);

        Analysis {
            instructions: m.cpu_stats.instructions,
            cycles: m.cycles,
            matrix,
            spec1,
            spec26,
            tb_miss_cycles,
            m: m.clone(),
        }
    }

    fn spec_counts(cs: &ControlStore, m: &Measurement, first: bool) -> SpecModeCounts {
        let regions = if first { &cs.spec1 } else { &cs.spec26 };
        let mut out = SpecModeCounts::default();
        for (mi, &mode) in AddressingMode::ALL.iter().enumerate() {
            // Sum entry-point counts across flavors; each evaluation
            // executes its routine's entry exactly once. Entry µops may be
            // reads or writes, so read both planes' normal counts.
            let mut total = 0;
            for flavor in [
                SpecFlavor::Read,
                SpecFlavor::Write,
                SpecFlavor::Modify,
                SpecFlavor::Address,
            ] {
                if let Some(region) = Self::try_routine(regions, mode, flavor) {
                    total += m.hist.read(region.entry(), Plane::Normal);
                }
            }
            out.by_mode[mi] = total;
        }
        out.indexed = m.hist.read(regions.index_prefix.entry(), Plane::Normal);
        out
    }

    fn try_routine(
        regions: &vax_cpu::store::SpecRegions,
        mode: AddressingMode,
        flavor: SpecFlavor,
    ) -> Option<upc_monitor::Region> {
        // SpecRegions::routine panics on impossible combinations; probe
        // via catch-free logic by replicating its legality rule.
        let legal = match (mode, flavor) {
            (AddressingMode::Literal, SpecFlavor::Read) => true,
            (AddressingMode::Literal, _) => false,
            (AddressingMode::Immediate, SpecFlavor::Read) => true,
            (AddressingMode::Immediate, _) => false,
            _ => true,
        };
        legal.then(|| regions.routine(mode, flavor))
    }

    /// Instructions per event (`None` if the event never occurred).
    pub fn headway(&self, events: u64) -> Option<f64> {
        (events > 0).then(|| self.instructions as f64 / events as f64)
    }

    /// A Table-8 cell in cycles per instruction.
    pub fn cell(&self, act: Activity, class: CycleClass) -> f64 {
        self.matrix[act.index()][class.index()]
    }

    /// A Table-8 row total.
    pub fn row_total(&self, act: Activity) -> f64 {
        self.matrix[act.index()].iter().sum()
    }

    /// A Table-8 column total.
    pub fn col_total(&self, class: CycleClass) -> f64 {
        self.matrix.iter().map(|r| r[class.index()]).sum()
    }

    /// Cycles per average instruction (the Table 8 grand total).
    pub fn cpi(&self) -> f64 {
        self.matrix.iter().flatten().sum()
    }

    /// Dynamic opcode-group frequencies in percent, Table-1 order.
    pub fn group_percent(&self) -> [f64; 7] {
        let mut counts = [0u64; 7];
        for info in vax_arch::opcode::OPCODE_TABLE {
            counts[info.group.index()] += self.m.cpu_stats.opcode_counts[info.opcode as usize];
        }
        let total: u64 = counts.iter().sum::<u64>().max(1);
        let mut out = [0.0; 7];
        for (i, c) in counts.iter().enumerate() {
            out[i] = 100.0 * *c as f64 / total as f64;
        }
        out
    }

    /// The execute-phase activity of a group.
    pub fn group_activity(group: OpcodeGroup) -> Activity {
        match group {
            OpcodeGroup::Simple => Activity::ExecSimple,
            OpcodeGroup::Field => Activity::ExecField,
            OpcodeGroup::Float => Activity::ExecFloat,
            OpcodeGroup::CallRet => Activity::ExecCallRet,
            OpcodeGroup::System => Activity::ExecSystem,
            OpcodeGroup::Character => Activity::ExecCharacter,
            OpcodeGroup::Decimal => Activity::ExecDecimal,
        }
    }

    /// Consistency check: the decode row's compute count equals the number
    /// of instructions (each instruction decodes in exactly one cycle), and
    /// the histogram conserves cycles.
    pub fn check_conservation(&self) -> Result<(), String> {
        let total = self.m.hist.total_cycles();
        if total != self.cycles {
            return Err(format!(
                "histogram cycles {total} != measured cycles {}",
                self.cycles
            ));
        }
        let decode_cycles =
            self.cell(Activity::Decode, CycleClass::Compute) * self.instructions as f64;
        let diff = (decode_cycles - self.instructions as f64).abs();
        if diff / self.instructions.max(1) as f64 > 0.001 {
            return Err(format!(
                "decode compute cycles {decode_cycles} != instructions {}",
                self.instructions
            ));
        }
        Ok(())
    }
}

/// A µPC the analysis never uses but tests may: the first allocated
/// address.
pub const FIRST_UPC: MicroPc = MicroPc(0);

#[cfg(test)]
mod tests {
    use super::*;
    use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
    use vax_arch::{Opcode, Reg};
    use vax_asm::{Asm, Operand};

    fn measured_system() -> (ControlStore, Measurement) {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(50), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.label("loop");
        asm.insn(
            Opcode::Addl3,
            &[
                Operand::Lit(1),
                Operand::Reg(Reg::new(3)),
                Operand::Disp(16, Reg::new(6)),
            ],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(50), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.insn(Opcode::Brb, &[], Some("loop"));
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
        let mut sys = b.build();
        // Point R6 at the stack-ish data area via warmup state: the
        // program uses 16(R6) with R6 = 0, i.e. the guard page — mapped.
        let m = sys.measure(1_000, 20_000);
        (sys.cpu.cs.clone(), m)
    }

    #[test]
    fn reduction_conserves_cycles() {
        let (cs, m) = measured_system();
        let a = Analysis::new(&cs, &m);
        a.check_conservation().unwrap();
        assert!(a.cpi() > 2.0 && a.cpi() < 40.0, "CPI {}", a.cpi());
        // Matrix grand total × instructions == cycles.
        let total = a.cpi() * a.instructions as f64;
        assert!((total - a.cycles as f64).abs() < 1.0);
    }

    #[test]
    fn decode_row_is_one_compute_cycle() {
        let (cs, m) = measured_system();
        let a = Analysis::new(&cs, &m);
        let decode_compute = a.cell(Activity::Decode, CycleClass::Compute);
        assert!((decode_compute - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spec_counts_match_cpu_stats() {
        let (cs, m) = measured_system();
        let a = Analysis::new(&cs, &m);
        assert_eq!(a.spec1.total(), m.cpu_stats.spec1_count);
        assert_eq!(a.spec26.total(), m.cpu_stats.spec26_count);
    }

    #[test]
    fn group_percentages_sum_to_100() {
        let (cs, m) = measured_system();
        let a = Analysis::new(&cs, &m);
        let sum: f64 = a.group_percent().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
        // The spin loop is all SIMPLE plus kernel activity.
        assert!(a.group_percent()[0] > 80.0);
    }
}
