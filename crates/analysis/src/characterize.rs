//! Per-opcode characterization: run directed probe loops, attribute the
//! marginal cost of one instruction from histogram deltas, and codec the
//! resulting cost table.
//!
//! The paper's Table 9 gives per-*group* average costs over whole
//! workloads; this module produces the uops.info-style fine-grained
//! version: one record per opcode × addressing-mode grid cell, each
//! carrying total cycles, the compute/stall split by [`CycleClass`], and
//! per-[`Activity`] occupancy. Attribution is differential: a probe loop
//! with `reps` copies of the probed instruction is measured over an exact
//! number of iterations, an identical scaffold with zero copies is
//! measured the same way, and every quantity is
//! `(probe − baseline) / (iters × reps)`.
//!
//! Because the probe and baseline loops have different I-stream footprints
//! the IB-prefetch stall pattern does not subtract perfectly; deltas are
//! therefore carried as *signed* floats (a tiny negative IB-stall residue
//! is honest, not a bug). Everything else is conserved exactly — the
//! refutation pass ([`crate::refute`]) leans on that.

use upc_monitor::map::classify;
use upc_monitor::{Activity, CycleClass, Plane};
use vax780::Measurement;
use vax_arch::{AddressingMode, Opcode};
use vax_asm::probe::{mode_from_key, mode_key, probe_grid, probe_loop, ProbeLoop, ProbeTarget};
use vax_asm::AsmError;
use vax_cpu::ControlStore;
use vax_workload::probe_system;

use crate::json::Json;
use crate::validate::{validate, ValidationReport};

/// Default probe copies per loop iteration.
pub const DEFAULT_REPS: u32 = 8;
/// Default measured loop iterations.
pub const DEFAULT_ITERS: u64 = 64;
/// Default warmup instructions (enough to drain the boot path and fill
/// the TB, cache, and decode cache).
pub const DEFAULT_WARMUP: u64 = 2000;

/// The cost-table schema identifier.
pub const SCHEMA: &str = "vax-characterize/v1";

/// One probe (or baseline) execution, already reduced against the control
/// store that produced it so the `!Send` system never leaves the worker.
#[derive(Debug, Clone)]
pub struct ProbeRun {
    /// The assembled loop.
    pub probe: ProbeLoop,
    /// Measured loop iterations.
    pub iters: u64,
    /// The raw measurement.
    pub m: Measurement,
    /// Histogram cycles by `Activity::ALL` × `CycleClass::ALL` cell.
    pub matrix: [[u64; 6]; 14],
    /// The eight conserved-invariant cross-checks, run while the control
    /// store was still in reach (the refutation pass consumes these).
    pub validation: ValidationReport,
}

/// Assemble, boot, warm up, and measure one probe loop (`target` =
/// `None` for the baseline scaffold) over exactly `iters` loop
/// iterations, and reduce the histogram while the control store is still
/// in reach.
///
/// # Errors
/// Propagates assembler errors.
pub fn run_probe(
    target: Option<&ProbeTarget>,
    reps: u32,
    iters: u64,
    warmup: u64,
) -> Result<ProbeRun, AsmError> {
    let probe = probe_loop(target, reps)?;
    let mut sys = probe_system(&probe);
    let m = sys.measure(warmup, iters * u64::from(probe.period));
    let matrix = reduce_matrix(&sys.cpu.cs, &m);
    let validation = validate(&sys.cpu.cs, &m);
    Ok(ProbeRun {
        probe,
        iters,
        m,
        matrix,
        validation,
    })
}

/// Reduce a measurement's histogram to activity × cycle-class counts
/// (the same reduction [`crate::Analysis`] performs for Table 8).
pub fn reduce_matrix(cs: &ControlStore, m: &Measurement) -> [[u64; 6]; 14] {
    let mut counts = [[0u64; 6]; 14];
    for (upc, plane, count) in m.hist.nonzero() {
        let act = cs.map.activity(upc);
        let op = cs.map.op(upc);
        let class = classify(op, plane == Plane::Stalled);
        counts[act.index()][class.index()] += count;
    }
    counts
}

/// The attributed marginal cost of one probed instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRecord {
    /// Probed opcode.
    pub opcode: Opcode,
    /// Probed addressing mode.
    pub mode: AddressingMode,
    /// Specifier position carrying the probed mode.
    pub operand: usize,
    /// Total cycles per instruction.
    pub cycles: f64,
    /// Cycles by [`CycleClass`], `ALL` order.
    pub classes: [f64; 6],
    /// Cycles by [`Activity`], `ALL` order.
    pub activities: [f64; 14],
    /// I-stream bytes per instruction.
    pub istream_bytes: f64,
    /// Data-stream reads per instruction.
    pub d_reads: f64,
    /// Data-stream writes per instruction.
    pub d_writes: f64,
}

impl CostRecord {
    /// Compute cycles (the paper's "µcode" time): everything that is not
    /// a stall.
    pub fn compute_cycles(&self) -> f64 {
        self.classes[CycleClass::Compute.index()]
            + self.classes[CycleClass::Read.index()]
            + self.classes[CycleClass::Write.index()]
    }

    /// Stall cycles: read + write + IB stalls.
    pub fn stall_cycles(&self) -> f64 {
        self.classes[CycleClass::ReadStall.index()]
            + self.classes[CycleClass::WriteStall.index()]
            + self.classes[CycleClass::IbStall.index()]
    }
}

/// Signed per-instruction delta between a probe run and the shared
/// baseline run: `(probe − baseline) / (iters × reps)`.
pub fn attribute(target: &ProbeTarget, probe: &ProbeRun, baseline: &ProbeRun) -> CostRecord {
    assert_eq!(
        probe.iters, baseline.iters,
        "probe and baseline must measure the same iteration count"
    );
    let denom = (probe.iters * u64::from(probe.probe.reps)) as f64;
    let d = |p: u64, b: u64| (p as i64 - b as i64) as f64 / denom;

    let mut classes = [0.0; 6];
    let mut activities = [0.0; 14];
    for (ai, row) in probe.matrix.iter().enumerate() {
        for (ci, &c) in row.iter().enumerate() {
            let delta = d(c, baseline.matrix[ai][ci]);
            classes[ci] += delta;
            activities[ai] += delta;
        }
    }
    CostRecord {
        opcode: target.opcode,
        mode: target.mode,
        operand: target.operand,
        cycles: d(probe.m.cycles, baseline.m.cycles),
        classes,
        activities,
        istream_bytes: d(
            probe.m.cpu_stats.istream_bytes,
            baseline.m.cpu_stats.istream_bytes,
        ),
        d_reads: d(probe.m.mem_stats.d_reads, baseline.m.mem_stats.d_reads),
        d_writes: d(probe.m.mem_stats.d_writes, baseline.m.mem_stats.d_writes),
    }
}

/// A skipped grid cell and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipRecord {
    /// The opcode row.
    pub opcode: Opcode,
    /// The addressing-mode column.
    pub mode: AddressingMode,
    /// Human-readable skip reason.
    pub reason: String,
}

/// The complete instruction-cost table.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// Probe copies per iteration.
    pub reps: u32,
    /// Measured loop iterations.
    pub iters: u64,
    /// Warmup instructions.
    pub warmup: u64,
    /// Baseline scaffold cycles per instruction.
    pub baseline_cpi: f64,
    /// Baseline code bytes per iteration.
    pub baseline_loop_bytes: u32,
    /// Attributed records, grid order.
    pub records: Vec<CostRecord>,
    /// Skipped cells, grid order.
    pub skips: Vec<SkipRecord>,
}

impl CostTable {
    /// Look up a record by mnemonic and mode key.
    pub fn find(&self, mnemonic: &str, mode: AddressingMode) -> Option<&CostRecord> {
        self.records
            .iter()
            .find(|r| r.opcode.mnemonic() == mnemonic && r.mode == mode)
    }
}

/// The targets (and skips) selected by an opcode/mode filter, in grid
/// order. Empty filters select everything.
pub fn select_grid(
    opcodes: &[Opcode],
    modes: &[AddressingMode],
) -> (Vec<ProbeTarget>, Vec<SkipRecord>) {
    let mut targets = Vec::new();
    let mut skips = Vec::new();
    for cell in probe_grid() {
        if !opcodes.is_empty() && !opcodes.contains(&cell.opcode) {
            continue;
        }
        if !modes.is_empty() && !modes.contains(&cell.mode) {
            continue;
        }
        match cell.target {
            Ok(t) => targets.push(t),
            Err(r) => skips.push(SkipRecord {
                opcode: cell.opcode,
                mode: cell.mode,
                reason: r.describe().to_string(),
            }),
        }
    }
    (targets, skips)
}

/// The `CycleClass::ALL`-order JSON field names for the class split.
const CLASS_KEYS: [&str; 6] = [
    "compute",
    "read",
    "read_stall",
    "write",
    "write_stall",
    "ib_stall",
];

fn record_json(r: &CostRecord) -> Json {
    let classes = Json::obj(
        CLASS_KEYS
            .iter()
            .zip(r.classes.iter())
            .map(|(k, &v)| (*k, Json::Num(v))),
    );
    // Only nonzero activity rows: most cells touch a handful of the 14.
    let activities = Json::obj(
        Activity::ALL
            .iter()
            .zip(r.activities.iter())
            .filter(|(_, &v)| v != 0.0)
            .map(|(a, &v)| (a.name(), Json::Num(v))),
    );
    Json::obj([
        ("opcode", Json::Str(r.opcode.mnemonic().to_string())),
        ("mode", Json::Str(mode_key(r.mode).to_string())),
        ("operand", Json::Int(r.operand as i64)),
        ("cycles", Json::Num(r.cycles)),
        ("classes", classes),
        ("activities", activities),
        ("istream_bytes", Json::Num(r.istream_bytes)),
        ("d_reads", Json::Num(r.d_reads)),
        ("d_writes", Json::Num(r.d_writes)),
    ])
}

/// Serialize a cost table (pretty, stable member order — byte-identical
/// for identical inputs).
pub fn costs_json(t: &CostTable) -> String {
    let mut s = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("reps", Json::Int(i64::from(t.reps))),
        ("iters", Json::Int(t.iters as i64)),
        ("warmup", Json::Int(t.warmup as i64)),
        (
            "baseline",
            Json::obj([
                ("cycles_per_insn", Json::Num(t.baseline_cpi)),
                ("loop_bytes", Json::Int(i64::from(t.baseline_loop_bytes))),
            ]),
        ),
        ("records", Json::arr(t.records.iter().map(record_json))),
        (
            "skips",
            Json::arr(t.skips.iter().map(|s| {
                Json::obj([
                    ("opcode", Json::Str(s.opcode.mnemonic().to_string())),
                    ("mode", Json::Str(mode_key(s.mode).to_string())),
                    ("reason", Json::Str(s.reason.clone())),
                ])
            })),
        ),
    ])
    .to_string_pretty();
    s.push('\n');
    s
}

fn parse_f64(j: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric '{key}'"))
}

fn parse_record(j: &Json, i: usize) -> Result<CostRecord, String> {
    let ctx = format!("record {i}");
    let mnemonic = j
        .get("opcode")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing 'opcode'"))?;
    let opcode = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| format!("{ctx}: unknown opcode '{mnemonic}'"))?;
    let mode_s = j
        .get("mode")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing 'mode'"))?;
    let mode = mode_from_key(mode_s).ok_or_else(|| format!("{ctx}: unknown mode '{mode_s}'"))?;
    let operand = j
        .get("operand")
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("{ctx}: missing 'operand'"))? as usize;
    let classes_j = j
        .get("classes")
        .ok_or_else(|| format!("{ctx}: missing 'classes'"))?;
    let mut classes = [0.0; 6];
    for (slot, key) in classes.iter_mut().zip(CLASS_KEYS.iter()) {
        *slot = parse_f64(classes_j, &ctx, key)?;
    }
    let mut activities = [0.0; 14];
    if let Some(acts) = j.get("activities") {
        for (slot, a) in activities.iter_mut().zip(Activity::ALL.iter()) {
            if let Some(v) = acts.get(a.name()).and_then(Json::as_f64) {
                *slot = v;
            }
        }
    }
    Ok(CostRecord {
        opcode,
        mode,
        operand,
        cycles: parse_f64(j, &ctx, "cycles")?,
        classes,
        activities,
        istream_bytes: parse_f64(j, &ctx, "istream_bytes")?,
        d_reads: parse_f64(j, &ctx, "d_reads")?,
        d_writes: parse_f64(j, &ctx, "d_writes")?,
    })
}

/// Parse a cost table back from its JSON text.
///
/// # Errors
/// Returns a message locating the first structural problem.
pub fn costs_from_json(text: &str) -> Result<CostTable, String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
    }
    let int = |key: &str| {
        doc.get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("missing or non-integer '{key}'"))
    };
    let baseline = doc.get("baseline").ok_or("missing 'baseline'")?;
    let mut records = Vec::new();
    for (i, r) in doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing 'records' array")?
        .iter()
        .enumerate()
    {
        records.push(parse_record(r, i)?);
    }
    let mut skips = Vec::new();
    for (i, s) in doc
        .get("skips")
        .and_then(Json::as_arr)
        .ok_or("missing 'skips' array")?
        .iter()
        .enumerate()
    {
        let ctx = format!("skip {i}");
        let mnemonic = s
            .get("opcode")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'opcode'"))?;
        let opcode = Opcode::from_mnemonic(mnemonic)
            .ok_or_else(|| format!("{ctx}: unknown opcode '{mnemonic}'"))?;
        let mode_s = s
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'mode'"))?;
        let mode =
            mode_from_key(mode_s).ok_or_else(|| format!("{ctx}: unknown mode '{mode_s}'"))?;
        let reason = s
            .get("reason")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'reason'"))?
            .to_string();
        skips.push(SkipRecord {
            opcode,
            mode,
            reason,
        });
    }
    Ok(CostTable {
        reps: int("reps")? as u32,
        iters: int("iters")? as u64,
        warmup: int("warmup")? as u64,
        baseline_cpi: parse_f64(baseline, "baseline", "cycles_per_insn")?,
        baseline_loop_bytes: baseline
            .get("loop_bytes")
            .and_then(Json::as_i64)
            .ok_or("baseline: missing 'loop_bytes'")? as u32,
        records,
        skips,
    })
}

/// Render the human-readable companion table (`costs.md`).
pub fn costs_markdown(t: &CostTable) -> String {
    let mut out = String::new();
    out.push_str("# Instruction-cost table\n\n");
    out.push_str(&format!(
        "Per-instruction marginal costs from directed probe loops \
         ({} probe cop{} × {} iterations per cell, warmup {}; baseline \
         scaffold {:.2} cycles/instruction). Cycles split by the µPC \
         histogram's cycle classes; a small negative IB-stall residue \
         reflects the probe/baseline I-stream footprint difference.\n\n",
        t.reps,
        if t.reps == 1 { "y" } else { "ies" },
        t.iters,
        t.warmup,
        t.baseline_cpi,
    ));
    out.push_str("| opcode | mode | cycles | compute | stall | I-bytes | D-reads | D-writes |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
    for r in &t.records {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.opcode.mnemonic(),
            mode_key(r.mode),
            r.cycles,
            r.compute_cycles(),
            r.stall_cycles(),
            r.istream_bytes,
            r.d_reads,
            r.d_writes,
        ));
    }
    if !t.skips.is_empty() {
        out.push_str(&format!(
            "\n{} grid cell(s) skipped (see `costs.json` for the full list).\n",
            t.skips.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_table() -> CostTable {
        let (targets, skips) = select_grid(
            &[Opcode::Movl],
            &[AddressingMode::Register, AddressingMode::Literal],
        );
        let baseline = run_probe(None, 0, 16, DEFAULT_WARMUP).unwrap();
        let baseline_cpi = baseline.m.cycles as f64 / baseline.m.instructions() as f64;
        let records = targets
            .iter()
            .map(|t| {
                let p = run_probe(Some(t), 4, 16, DEFAULT_WARMUP).unwrap();
                attribute(t, &p, &baseline)
            })
            .collect();
        CostTable {
            reps: 4,
            iters: 16,
            warmup: DEFAULT_WARMUP,
            baseline_cpi,
            baseline_loop_bytes: baseline.probe.loop_bytes,
            records,
            skips,
        }
    }

    #[test]
    fn attribution_is_sane_for_register_movl() {
        let t = tiny_table();
        let r = t.find("MOVL", AddressingMode::Register).unwrap();
        // A register-to-register MOVL costs a handful of cycles, touches
        // no data stream, and occupies decode + spec + execute.
        assert!(r.cycles > 0.5 && r.cycles < 20.0, "cycles = {}", r.cycles);
        assert!(r.d_reads.abs() < 0.01, "d_reads = {}", r.d_reads);
        assert!(r.d_writes.abs() < 0.01, "d_writes = {}", r.d_writes);
        // Class split sums to total cycles (same histogram, same delta).
        let split: f64 = r.classes.iter().sum();
        assert!((split - r.cycles).abs() < 1e-9, "{split} vs {}", r.cycles);
        let by_act: f64 = r.activities.iter().sum();
        assert!((by_act - r.cycles).abs() < 1e-9);
        // I-stream: opcode + register specifier + register specifier = 3.
        assert!((r.istream_bytes - 3.0).abs() < 0.01);
    }

    #[test]
    fn cost_table_json_round_trips() {
        let t = tiny_table();
        let text = costs_json(&t);
        let back = costs_from_json(&text).unwrap();
        assert_eq!(back, t);
        // Re-serialization is byte-identical (the diff gate relies on it).
        assert_eq!(costs_json(&back), text);
    }

    #[test]
    fn markdown_mentions_every_record() {
        let t = tiny_table();
        let md = costs_markdown(&t);
        for r in &t.records {
            assert!(md.contains(r.opcode.mnemonic()));
        }
    }

    #[test]
    fn select_grid_filters_and_reports_skips() {
        let (targets, skips) = select_grid(&[Opcode::Clrl], &[]);
        // CLRL probes every mode except literal/immediate (write-only).
        assert_eq!(targets.len(), 14);
        assert_eq!(skips.len(), 2);
        assert!(skips.iter().all(|s| s.reason.contains("read")));
    }

    #[test]
    fn bad_json_is_rejected_with_context() {
        assert!(costs_from_json("{}").unwrap_err().contains("schema"));
        let err = costs_from_json(&format!(
            r#"{{"schema":"{SCHEMA}","reps":1,"iters":1,"warmup":0,
                "baseline":{{"cycles_per_insn":1.0,"loop_bytes":24}},
                "records":[{{"opcode":"NOPE","mode":"register"}}],"skips":[]}}"#
        ))
        .unwrap_err();
        assert!(err.contains("unknown opcode"), "{err}");
    }
}
