//! A minimal JSON value type, serializer, and parser.
//!
//! The build environment is offline (no serde), and the exporter's needs are
//! small: serialize measurement counters, tables, and time series into
//! machine-readable artifacts, and parse them back in tests to prove the
//! round trip. Object member order is preserved (insertion order), so
//! serialization is deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with enough digits to round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I, K>(members: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the identical f64 (and always includes a `.`
                    // or exponent, keeping the value a float on re-parse).
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(v as f64),
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.at += 4;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| format!("invalid UTF-8 at byte {}: {e}", self.at))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| format!("unterminated string at byte {start}"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|e| format!("invalid UTF-8 in number at byte {start}: {e}"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer '{text}': {e}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.at;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key '{key}' at byte {key_at}"));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Json::obj([
            ("name", Json::from("vax780")),
            ("cpi", Json::from(10.625)),
            ("cycles", Json::from(123_456_789u64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::arr([Json::from(1i64), Json::from(2.5), Json::from("x\ny\"z")]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<_, String>([])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, -0.0625, 10.6] {
            let v = Json::Num(x);
            let parsed = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = Json::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(err.contains("duplicate key 'a'"), "{err}");
        // Nested objects are checked too.
        assert!(Json::parse(r#"{"x": {"k": 1, "k": 1}}"#).is_err());
        // Same key at different nesting levels is fine.
        assert!(Json::parse(r#"{"k": {"k": 1}}"#).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}
