//! Cross-validation of the histogram reduction against independent counters.
//!
//! The paper's µPC histogram and the CPU/memory event counters observe the
//! same run through different instruments. Several quantities are counted by
//! *both*: e.g. every retired instruction executes the IRD entry µop exactly
//! once, so the histogram's count at that address must equal the CPU's
//! `instructions` counter. This module checks every such exactly-conserved
//! invariant and reports any divergence — a tripwire for bugs where the
//! simulator updates one instrument but not the other.

use upc_monitor::Plane;
use vax780::Measurement;
use vax_cpu::ControlStore;

use crate::analysis::Analysis;
use crate::json::Json;

/// One conservation invariant: two independent counts of the same events.
#[derive(Debug, Clone)]
pub struct ValidationCheck {
    /// What is being cross-checked.
    pub name: &'static str,
    /// Where the expected value comes from.
    pub expected_source: &'static str,
    /// The independent counter's value.
    pub expected: u64,
    /// The histogram-derived value.
    pub actual: u64,
}

impl ValidationCheck {
    /// True when the two instruments agree exactly.
    pub fn passed(&self) -> bool {
        self.expected == self.actual
    }
}

/// The outcome of a validation pass.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Every invariant checked, in a fixed order.
    pub checks: Vec<ValidationCheck>,
}

impl ValidationReport {
    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(ValidationCheck::passed)
    }

    /// The checks that diverged.
    pub fn divergences(&self) -> Vec<&ValidationCheck> {
        self.checks.iter().filter(|c| !c.passed()).collect()
    }

    /// Human-readable summary, one line per check.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Validation — histogram reduction vs independent counters\n");
        for c in &self.checks {
            let verdict = if c.passed() { "ok " } else { "FAIL" };
            let _ = writeln!(
                out,
                "  [{verdict}] {:<44} hist {:>12}  counter {:>12}",
                c.name, c.actual, c.expected
            );
        }
        let _ = writeln!(
            out,
            "{} checks, {} divergences",
            self.checks.len(),
            self.divergences().len()
        );
        out
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("clean", Json::from(self.is_clean())),
            (
                "checks",
                Json::arr(self.checks.iter().map(|c| {
                    Json::obj([
                        ("name", Json::from(c.name)),
                        ("expected_source", Json::from(c.expected_source)),
                        ("expected", Json::from(c.expected)),
                        ("actual", Json::from(c.actual)),
                        ("passed", Json::from(c.passed())),
                    ])
                })),
            ),
        ])
    }
}

/// Run every conservation check of `m` against the control store that
/// produced it.
pub fn validate(cs: &ControlStore, m: &Measurement) -> ValidationReport {
    let a = Analysis::new(cs, m);
    let hist = &m.hist;
    let entry = |region: upc_monitor::Region| hist.read(region.entry(), Plane::Normal);

    let checks = vec![
        // Every cycle the board saw must be a cycle the system counted.
        ValidationCheck {
            name: "total histogram cycles",
            expected_source: "System cycle counter",
            expected: m.cycles,
            actual: hist.total_cycles(),
        },
        // Each retired instruction decodes through the IRD entry exactly
        // once (interrupt/exception dispatches use their own regions).
        ValidationCheck {
            name: "IRD decode entries",
            expected_source: "CpuStats::instructions",
            expected: m.cpu_stats.instructions,
            actual: entry(cs.ird),
        },
        // Each specifier evaluation enters its microroutine exactly once,
        // except that a quad-width operand through a data-at-entry routine
        // repeats the entry µop — the CPU counts those repeats separately,
        // so the reconciliation is still exact.
        ValidationCheck {
            name: "first-specifier routine entries",
            expected_source: "CpuStats spec1_count + quad repeats",
            expected: m.cpu_stats.spec1_count + m.cpu_stats.spec1_quad_repeats,
            actual: a.spec1.total(),
        },
        ValidationCheck {
            name: "specifier-2-6 routine entries",
            expected_source: "CpuStats spec26_count + quad repeats",
            expected: m.cpu_stats.spec26_count + m.cpu_stats.spec26_quad_repeats,
            actual: a.spec26.total(),
        },
        // The stalled plane counts exactly the memory system's stall
        // cycles (IB-wait cycles live on the normal plane).
        ValidationCheck {
            name: "stalled-plane cycles",
            expected_source: "MemStats read+write stall cycles",
            expected: m.mem_stats.read_stall_cycles + m.mem_stats.write_stall_cycles,
            actual: hist.plane_total(Plane::Stalled),
        },
        // Each delivered interrupt runs the dispatch microroutine once.
        ValidationCheck {
            name: "interrupt dispatch entries",
            expected_source: "CpuStats::total_interrupts",
            expected: m.cpu_stats.total_interrupts(),
            actual: entry(cs.interrupt),
        },
        // Each unaligned reference runs the unaligned-data routine once.
        ValidationCheck {
            name: "unaligned service entries",
            expected_source: "MemStats::unaligned_refs",
            expected: m.mem_stats.unaligned_refs,
            actual: entry(cs.unaligned),
        },
        // The TB-miss service routine issues exactly one PTE read per
        // serviced miss, at a known offset. (The routine's *entry* count is
        // not conserved: an IB flush can discard a counted-but-unserviced
        // I-stream miss, so we check the read µop instead.)
        ValidationCheck {
            name: "TB-miss service PTE reads",
            expected_source: "MemStats::pte_reads",
            expected: m.mem_stats.pte_reads,
            actual: hist.read(cs.tb_miss.at(cs.tb_miss_read_off), Plane::Normal),
        },
    ];
    ValidationReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
    use vax_arch::{Opcode, Reg};
    use vax_asm::{Asm, Operand};

    fn spin_system() -> vax780::System {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(500), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.label("loop");
        asm.insn(
            Opcode::Addl3,
            &[
                Operand::Lit(1),
                Operand::Reg(Reg::new(3)),
                Operand::Disp(16, Reg::new(6)),
            ],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
        asm.insn(Opcode::Brb, &[], Some("loop"));
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
        b.build()
    }

    #[test]
    fn clean_on_real_run() {
        let mut sys = spin_system();
        let m = sys.measure(1_000, 30_000);
        let report = validate(&sys.cpu.cs, &m);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.checks.len(), 8);
    }

    #[test]
    fn detects_tampered_counter() {
        let mut sys = spin_system();
        let mut m = sys.measure(500, 5_000);
        m.cpu_stats.instructions += 1;
        let report = validate(&sys.cpu.cs, &m);
        assert!(!report.is_clean());
        let names: Vec<&str> = report.divergences().iter().map(|c| c.name).collect();
        assert!(names.contains(&"IRD decode entries"), "{names:?}");
        let j = report.to_json();
        assert_eq!(j.get("clean"), Some(&Json::Bool(false)));
    }
}
