//! Paper-vs-measured table rendering.

use std::fmt::Write as _;
use upc_monitor::{Activity, CycleClass};
use vax_arch::{AddressingMode, BranchKind, OpcodeGroup};

use crate::analysis::Analysis;
use crate::paper;

fn line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

/// Table 1: opcode group frequency.
pub fn table1(a: &Analysis) -> String {
    let mut out = String::new();
    line(&mut out, "Table 1 — Opcode Group Frequency (percent)");
    line(&mut out, "group        measured    paper");
    let measured = a.group_percent();
    for (i, g) in OpcodeGroup::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<12} {:>8.2} {:>8.2}",
            g.name(),
            measured[i],
            paper::TABLE1_GROUP_PERCENT[i]
        );
    }
    out
}

/// Table 2: PC-changing instructions.
pub fn table2(a: &Analysis) -> String {
    let mut out = String::new();
    line(&mut out, "Table 2 — PC-Changing Instructions");
    line(
        &mut out,
        "class                            exec%   (paper)  taken%  (paper)  taken/all%  (paper)",
    );
    let n = a.instructions.max(1) as f64;
    let mut tot_exec = 0u64;
    let mut tot_taken = 0u64;
    for (i, k) in BranchKind::TABLE2_ROWS.iter().enumerate() {
        let execd = a.m.cpu_stats.branch_executed_of(*k);
        let taken = a.m.cpu_stats.branch_taken_of(*k);
        tot_exec += execd;
        tot_taken += taken;
        let (p_exec, p_taken, p_all) = paper::TABLE2[i];
        let _ = writeln!(
            out,
            "{:<30} {:>7.1} {:>9.1} {:>7.1} {:>8.1} {:>9.1} {:>9.1}",
            k.name(),
            100.0 * execd as f64 / n,
            p_exec,
            if execd > 0 {
                100.0 * taken as f64 / execd as f64
            } else {
                0.0
            },
            p_taken,
            100.0 * taken as f64 / n,
            p_all,
        );
    }
    let (p_exec, p_taken, p_all) = paper::TABLE2_TOTAL;
    let _ = writeln!(
        out,
        "{:<30} {:>7.1} {:>9.1} {:>7.1} {:>8.1} {:>9.1} {:>9.1}",
        "TOTAL",
        100.0 * tot_exec as f64 / n,
        p_exec,
        if tot_exec > 0 {
            100.0 * tot_taken as f64 / tot_exec as f64
        } else {
            0.0
        },
        p_taken,
        100.0 * tot_taken as f64 / n,
        p_all,
    );
    out
}

/// Table 3: specifiers and branch displacements per instruction.
pub fn table3(a: &Analysis) -> String {
    let mut out = String::new();
    let n = a.instructions.max(1) as f64;
    line(&mut out, "Table 3 — Specifiers per Average Instruction");
    let rows = [
        (
            "First specifiers",
            a.spec1.total() as f64 / n,
            paper::TABLE3_SPEC1,
        ),
        (
            "Other specifiers",
            a.spec26.total() as f64 / n,
            paper::TABLE3_SPEC26,
        ),
        (
            "Branch displacements",
            a.m.cpu_stats.branch_disps as f64 / n,
            paper::TABLE3_BDISP,
        ),
    ];
    line(&mut out, "item                   measured   paper");
    for (name, v, p) in rows {
        let _ = writeln!(out, "{name:<22} {v:>8.3} {p:>7.3}");
    }
    out
}

/// Table 4: operand specifier mode distribution.
pub fn table4(a: &Analysis) -> String {
    let mut out = String::new();
    line(
        &mut out,
        "Table 4 — Operand Specifier Distribution (percent)",
    );
    line(
        &mut out,
        "mode                    SPEC1  SPEC2-6    total    (paper total where legible)",
    );
    let t1 = a.spec1.total().max(1) as f64;
    let t2 = a.spec26.total().max(1) as f64;
    let tt = (a.spec1.total() + a.spec26.total()).max(1) as f64;
    let pct = |c1: u64, c2: u64| {
        (
            100.0 * c1 as f64 / t1,
            100.0 * c2 as f64 / t2,
            100.0 * (c1 + c2) as f64 / tt,
        )
    };
    // Group displacement modes together for comparability.
    let mode_idx = |m: AddressingMode| AddressingMode::ALL.iter().position(|x| *x == m).unwrap();
    let read = |m: AddressingMode, s: &crate::analysis::SpecModeCounts| s.by_mode[mode_idx(m)];
    let disp_sum = |s: &crate::analysis::SpecModeCounts| {
        read(AddressingMode::ByteDisp, s)
            + read(AddressingMode::WordDisp, s)
            + read(AddressingMode::LongDisp, s)
    };
    let rows: Vec<(&str, u64, u64, Option<f64>)> = vec![
        (
            "Register",
            read(AddressingMode::Register, &a.spec1),
            read(AddressingMode::Register, &a.spec26),
            Some(paper::TABLE4_REGISTER.2),
        ),
        (
            "Short literal",
            read(AddressingMode::Literal, &a.spec1),
            read(AddressingMode::Literal, &a.spec26),
            Some(paper::TABLE4_LITERAL.2),
        ),
        (
            "Immediate",
            read(AddressingMode::Immediate, &a.spec1),
            read(AddressingMode::Immediate, &a.spec26),
            Some(paper::TABLE4_IMMEDIATE.2),
        ),
        (
            "Displacement",
            disp_sum(&a.spec1),
            disp_sum(&a.spec26),
            None,
        ),
        (
            "Register deferred",
            read(AddressingMode::RegisterDeferred, &a.spec1),
            read(AddressingMode::RegisterDeferred, &a.spec26),
            None,
        ),
        (
            "Autoincrement",
            read(AddressingMode::Autoincrement, &a.spec1),
            read(AddressingMode::Autoincrement, &a.spec26),
            None,
        ),
        (
            "Autodecrement",
            read(AddressingMode::Autodecrement, &a.spec1),
            read(AddressingMode::Autodecrement, &a.spec26),
            None,
        ),
        (
            "Disp. deferred",
            read(AddressingMode::ByteDispDeferred, &a.spec1)
                + read(AddressingMode::WordDispDeferred, &a.spec1)
                + read(AddressingMode::LongDispDeferred, &a.spec1),
            read(AddressingMode::ByteDispDeferred, &a.spec26)
                + read(AddressingMode::WordDispDeferred, &a.spec26)
                + read(AddressingMode::LongDispDeferred, &a.spec26),
            None,
        ),
        (
            "Absolute",
            read(AddressingMode::Absolute, &a.spec1),
            read(AddressingMode::Absolute, &a.spec26),
            None,
        ),
    ];
    for (name, c1, c2, paper_total) in rows {
        let (p1, p2, pt) = pct(c1, c2);
        match paper_total {
            Some(pp) => {
                let _ = writeln!(out, "{name:<22} {p1:>6.1} {p2:>8.1} {pt:>8.1}    {pp:>5.1}");
            }
            None => {
                let _ = writeln!(out, "{name:<22} {p1:>6.1} {p2:>8.1} {pt:>8.1}      (—)");
            }
        }
    }
    let ix = (
        100.0 * a.spec1.indexed as f64 / t1,
        100.0 * a.spec26.indexed as f64 / t2,
        100.0 * (a.spec1.indexed + a.spec26.indexed) as f64 / tt,
    );
    let _ = writeln!(
        out,
        "{:<22} {:>6.1} {:>8.1} {:>8.1}    {:>5.1}",
        "Percent indexed",
        ix.0,
        ix.1,
        ix.2,
        paper::TABLE4_INDEXED.2
    );
    out
}

/// Table 5: D-stream reads and writes per instruction, by source row.
pub fn table5(a: &Analysis) -> String {
    let mut out = String::new();
    line(
        &mut out,
        "Table 5 — D-stream Reads and Writes per Instruction",
    );
    line(&mut out, "source          reads   writes");
    let rows = [
        ("Spec1", Activity::Spec1),
        ("Spec2-6", Activity::Spec26),
        ("Simple", Activity::ExecSimple),
        ("Field", Activity::ExecField),
        ("Float", Activity::ExecFloat),
        ("Call/Ret", Activity::ExecCallRet),
        ("System", Activity::ExecSystem),
        ("Character", Activity::ExecCharacter),
        ("Decimal", Activity::ExecDecimal),
    ];
    let mut reads = 0.0;
    let mut writes = 0.0;
    for (name, act) in rows {
        let r = a.cell(act, CycleClass::Read);
        let w = a.cell(act, CycleClass::Write);
        reads += r;
        writes += w;
        let _ = writeln!(out, "{name:<14} {r:>6.3} {w:>8.3}");
    }
    // "Other": decode/bdisp/interrupt/memory-management rows.
    let other_rows = [
        Activity::Decode,
        Activity::BDisp,
        Activity::IntExcept,
        Activity::MemMgmt,
        Activity::Abort,
    ];
    let or: f64 = other_rows
        .iter()
        .map(|&x| a.cell(x, CycleClass::Read))
        .sum();
    let ow: f64 = other_rows
        .iter()
        .map(|&x| a.cell(x, CycleClass::Write))
        .sum();
    reads += or;
    writes += ow;
    let _ = writeln!(out, "{:<14} {or:>6.3} {ow:>8.3}", "Other");
    let _ = writeln!(
        out,
        "{:<14} {reads:>6.3} {writes:>8.3}   (paper: {:.3} / {:.3})",
        "TOTAL",
        paper::TABLE5_READS_TOTAL,
        paper::TABLE5_WRITES_TOTAL
    );
    let n = a.instructions.max(1) as f64;
    let _ = writeln!(
        out,
        "Unaligned refs/instr: {:.4}   (paper: {:.3})",
        a.m.mem_stats.unaligned_refs as f64 / n,
        paper::UNALIGNED_PER_INSTR
    );
    out
}

/// Table 6: average instruction size.
pub fn table6(a: &Analysis) -> String {
    let mut out = String::new();
    line(&mut out, "Table 6 — Estimated Size of Average Instruction");
    let n = a.instructions.max(1) as f64;
    let avg = a.m.cpu_stats.avg_instruction_bytes();
    let specs = (a.spec1.total() + a.spec26.total()) as f64 / n;
    let bdisp = a.m.cpu_stats.branch_disps as f64 / n;
    let spec_bytes = (avg - 1.0 - bdisp * 1.1).max(0.0) / specs.max(1e-9);
    let _ = writeln!(
        out,
        "specifiers/instr {specs:.2}, avg specifier size {spec_bytes:.2} B (paper {:.2} B)",
        paper::TABLE6_AVG_SPEC_BYTES
    );
    let _ = writeln!(
        out,
        "average instruction size: {avg:.2} bytes   (paper: {:.1})",
        paper::TABLE6_AVG_INSTR_BYTES
    );
    out
}

/// Table 7: interrupt and context-switch headway.
pub fn table7(a: &Analysis) -> String {
    let mut out = String::new();
    line(
        &mut out,
        "Table 7 — Interrupt and Context-Switch Headway (instructions)",
    );
    let rows = [
        (
            "Software interrupt requests",
            a.headway(a.m.cpu_stats.sw_interrupt_requests),
            paper::TABLE7_SOFT_REQ_HEADWAY,
        ),
        (
            "HW and SW interrupts",
            a.headway(a.m.cpu_stats.total_interrupts()),
            paper::TABLE7_INTERRUPT_HEADWAY,
        ),
        (
            "Context switches",
            a.headway(a.m.cpu_stats.context_switches),
            paper::TABLE7_CONTEXT_SWITCH_HEADWAY,
        ),
    ];
    for (name, v, p) in rows {
        match v {
            Some(v) => {
                let _ = writeln!(out, "{name:<28} {v:>8.0} {p:>8.0}");
            }
            None => {
                let _ = writeln!(out, "{name:<28} {:>8} {p:>8.0}", "—");
            }
        }
    }
    out
}

/// §4 implementation events.
pub fn events(a: &Analysis) -> String {
    let mut out = String::new();
    line(&mut out, "§4 — Implementation Events (per instruction)");
    let n = a.instructions.max(1) as f64;
    let ms = &a.m.mem_stats;
    let ib_refs = ms.i_reads as f64 / n;
    let avg_bytes = a.m.cpu_stats.avg_instruction_bytes();
    let rows = [
        ("IB refs/instr", ib_refs, paper::IB_REFS_PER_INSTR),
        (
            "IB bytes/ref",
            if ib_refs > 0.0 {
                avg_bytes / ib_refs
            } else {
                0.0
            },
            paper::IB_BYTES_PER_REF,
        ),
        (
            "Cache read misses (total)",
            ms.total_read_misses() as f64 / n,
            paper::CACHE_MISSES_PER_INSTR.0,
        ),
        (
            "  I-stream",
            ms.i_read_misses as f64 / n,
            paper::CACHE_MISSES_PER_INSTR.1,
        ),
        (
            "  D-stream",
            (ms.d_read_misses + ms.pte_read_misses) as f64 / n,
            paper::CACHE_MISSES_PER_INSTR.2,
        ),
        (
            "TB misses (total)",
            ms.total_tb_misses() as f64 / n,
            paper::TB_MISSES_PER_INSTR.0,
        ),
        (
            "  D-stream",
            ms.tb_miss_d as f64 / n,
            paper::TB_MISSES_PER_INSTR.1,
        ),
        (
            "  I-stream",
            ms.tb_miss_i as f64 / n,
            paper::TB_MISSES_PER_INSTR.2,
        ),
        (
            "TB miss service cycles",
            if ms.total_tb_misses() > 0 {
                a.tb_miss_cycles as f64 / ms.total_tb_misses() as f64
            } else {
                0.0
            },
            paper::TB_MISS_SERVICE_CYCLES,
        ),
    ];
    line(&mut out, "event                        measured    paper");
    for (name, v, p) in rows {
        let _ = writeln!(out, "{name:<28} {v:>8.3} {p:>8.3}");
    }
    out
}

/// Table 8: the full time decomposition.
pub fn table8(a: &Analysis) -> String {
    let mut out = String::new();
    line(
        &mut out,
        "Table 8 — Average VAX Instruction Timing (cycles per instruction)",
    );
    line(
        &mut out,
        "row          Compute     Read  R-Stall    Write  W-Stall IB-Stall    Total  (paper)",
    );
    for (i, act) in Activity::ALL.iter().enumerate() {
        let _ = write!(out, "{:<12}", act.name());
        for class in CycleClass::ALL {
            let _ = write!(out, " {:>8.3}", a.cell(*act, class));
        }
        let _ = writeln!(
            out,
            " {:>8.3} {:>8.3}",
            a.row_total(*act),
            paper::TABLE8_ROW_TOTALS[i]
        );
    }
    let _ = write!(out, "{:<12}", "TOTAL");
    for class in CycleClass::ALL {
        let _ = write!(out, " {:>8.3}", a.col_total(class));
    }
    let _ = writeln!(out, " {:>8.3} {:>8.3}", a.cpi(), paper::TABLE8_CPI);
    let _ = write!(out, "{:<12}", "(paper)");
    for p in paper::TABLE8_COLUMN_TOTALS {
        let _ = write!(out, " {p:>8.3}");
    }
    let _ = writeln!(out, " {:>8.3}", paper::TABLE8_CPI);
    out
}

/// Table 9: cycles per instruction within each group.
pub fn table9(a: &Analysis) -> String {
    let mut out = String::new();
    line(
        &mut out,
        "Table 9 — Cycles per Instruction Within Each Group (execute phase)",
    );
    line(
        &mut out,
        "group        Compute     Read  R-Stall    Write  W-Stall    Total  (paper)",
    );
    let groups = a.group_percent();
    for (i, g) in OpcodeGroup::ALL.iter().enumerate() {
        let freq = groups[i] / 100.0;
        if freq <= 0.0 {
            let _ = writeln!(out, "{:<12} (group did not occur)", g.name());
            continue;
        }
        let act = Analysis::group_activity(*g);
        let _ = write!(out, "{:<12}", g.name());
        let mut total = 0.0;
        for class in [
            CycleClass::Compute,
            CycleClass::Read,
            CycleClass::ReadStall,
            CycleClass::Write,
            CycleClass::WriteStall,
        ] {
            let v = a.cell(act, class) / freq;
            total += v;
            let _ = write!(out, " {v:>8.2}");
        }
        let _ = writeln!(
            out,
            " {:>8.2} {:>8.2}",
            total,
            paper::TABLE9_GROUP_TOTALS[i]
        );
    }
    out
}

/// Render every table and the §4 events in paper order.
pub fn print_all_tables(a: &Analysis) -> String {
    let mut out = String::new();
    for part in [
        table1(a),
        table2(a),
        table3(a),
        table4(a),
        table5(a),
        table6(a),
        table7(a),
        events(a),
        table8(a),
        table9(a),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "Instructions: {}   Cycles: {}   CPI: {:.2} (paper {:.2})",
        a.instructions,
        a.cycles,
        a.cpi(),
        paper::TABLE8_CPI
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
    use vax_arch::{Opcode, Reg};
    use vax_asm::{Asm, Operand};

    #[test]
    fn renders_all_tables() {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.label("loop");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Reg(Reg::new(3))],
            None,
        );
        asm.insn(Opcode::Brb, &[], Some("loop"));
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
        let mut sys = b.build();
        let m = sys.measure(500, 5_000);
        let a = Analysis::new(&sys.cpu.cs, &m);
        let text = print_all_tables(&a);
        assert!(text.contains("Table 1"));
        assert!(text.contains("Table 8"));
        assert!(text.contains("TOTAL"));
        assert!(text.contains("CPI"));
    }
}
