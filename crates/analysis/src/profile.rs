//! The µPC attribution profiler.
//!
//! The paper's whole method is *reduction*: collapsing the 16 K-bucket µPC
//! histogram into attributed time. [`crate::Analysis`] performs the paper's
//! own reduction (Tables 8–9); this module performs the complementary one a
//! microcoder would want: **where** in the control store did the cycles go?
//!
//! [`Profile::new`] folds the histogram against the control-store map into
//! a hierarchy — activity row → specifier mode (where the routine name
//! encodes one) → microroutine — with a per-node cycle-class breakdown, so
//! every node carries its compute/stall split. Three renderings are
//! provided:
//!
//! * [`Profile::top_routines_report`] — a ranked hot-routine table;
//! * [`Profile::folded`] — folded stacks (`frame;frame;... count`), the
//!   interchange format of standard flame-graph tooling. One line per
//!   (routine, cycle class); the counts sum to exactly the histogram's
//!   total cycles, so the flame graph *is* the measurement;
//! * [`Profile::to_json`] — the full tree, machine-readable.

use std::collections::BTreeMap;

use upc_monitor::map::classify;
use upc_monitor::{Activity, ControlStoreMap, CycleClass, Histogram, Plane};

use crate::json::Json;

/// Stable machine-readable key for a cycle class (used in JSON exports and
/// folded-stack leaf frames).
pub const fn class_key(class: CycleClass) -> &'static str {
    match class {
        CycleClass::Compute => "compute",
        CycleClass::Read => "read",
        CycleClass::ReadStall => "read_stall",
        CycleClass::Write => "write",
        CycleClass::WriteStall => "write_stall",
        CycleClass::IbStall => "ib_stall",
    }
}

/// Per-class cycle counts, `CycleClass::ALL` order.
pub type ClassCycles = [u64; 6];

fn busy_of(c: &ClassCycles) -> u64 {
    c[CycleClass::Compute.index()] + c[CycleClass::Read.index()] + c[CycleClass::Write.index()]
}

fn stall_of(c: &ClassCycles) -> u64 {
    c[CycleClass::ReadStall.index()]
        + c[CycleClass::WriteStall.index()]
        + c[CycleClass::IbStall.index()]
}

/// One node of the attribution hierarchy.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Frame name (activity, specifier mode, or routine).
    pub name: String,
    /// Cycles by class, aggregated over the subtree.
    pub cycles: ClassCycles,
    /// Children, sorted by descending total.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: &str) -> ProfileNode {
        ProfileNode {
            name: name.to_string(),
            cycles: [0; 6],
            children: Vec::new(),
        }
    }

    /// Total cycles attributed to this subtree.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Cycles doing work (compute + read + write).
    pub fn busy(&self) -> u64 {
        busy_of(&self.cycles)
    }

    /// Cycles stalled (read-stall + write-stall + IB-stall).
    pub fn stall(&self) -> u64 {
        stall_of(&self.cycles)
    }

    fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        // Linear probe: the fan-out is small (≤ 16 modes, ~300 routines).
        let at = match self.children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                self.children.push(ProfileNode::new(name));
                self.children.len() - 1
            }
        };
        &mut self.children[at]
    }

    fn sort_and_sum(&mut self) {
        for child in &mut self.children {
            child.sort_and_sum();
            for (acc, c) in self.cycles.iter_mut().zip(child.cycles) {
                *acc += c;
            }
        }
        self.children
            .sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
    }

    fn to_json(&self) -> Json {
        let classes = Json::Obj(
            CycleClass::ALL
                .iter()
                .filter(|c| self.cycles[c.index()] > 0)
                .map(|c| {
                    (
                        class_key(*c).to_string(),
                        Json::from(self.cycles[c.index()]),
                    )
                })
                .collect(),
        );
        let mut members = vec![
            ("name".to_string(), Json::from(self.name.clone())),
            ("total_cycles".to_string(), Json::from(self.total())),
            ("busy_cycles".to_string(), Json::from(self.busy())),
            ("stall_cycles".to_string(), Json::from(self.stall())),
            ("classes".to_string(), classes),
        ];
        if !self.children.is_empty() {
            members.push((
                "children".to_string(),
                Json::arr(self.children.iter().map(ProfileNode::to_json)),
            ));
        }
        Json::Obj(members)
    }
}

/// One microroutine's flat attribution (the hot-routine ranking rows).
#[derive(Debug, Clone)]
pub struct RoutineProfile {
    /// Routine name from the control-store map.
    pub routine: String,
    /// The routine's Table-8 activity row.
    pub activity: Activity,
    /// Cycles by class.
    pub cycles: ClassCycles,
}

impl RoutineProfile {
    /// Total cycles spent in the routine.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Busy (non-stalled) cycles.
    pub fn busy(&self) -> u64 {
        busy_of(&self.cycles)
    }

    /// Stalled cycles.
    pub fn stall(&self) -> u64 {
        stall_of(&self.cycles)
    }
}

/// The reduced attribution profile of one measurement.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Histogram total — every rendering conserves this.
    pub total_cycles: u64,
    /// Hierarchy root (named `all`).
    pub root: ProfileNode,
    /// Flat per-routine attribution, hottest first.
    pub routines: Vec<RoutineProfile>,
}

/// The middle hierarchy level a routine name encodes, if any: specifier
/// routines are named `SPEC1.<Mode>.<Flavor>`, so the mode becomes its own
/// frame and all flavors of one mode aggregate under it.
fn middle_frame(routine: &str) -> Option<&str> {
    let mut parts = routine.split('.');
    let (_, mid, last) = (parts.next()?, parts.next()?, parts.next()?);
    parts
        .next()
        .is_none()
        .then_some(mid)
        .filter(|_| !last.is_empty())
}

impl Profile {
    /// Reduce a histogram against the control-store map that produced it.
    pub fn new(map: &ControlStoreMap, hist: &Histogram) -> Profile {
        let mut per_routine: BTreeMap<(usize, &str), ClassCycles> = BTreeMap::new();
        for (upc, plane, count) in hist.nonzero() {
            let act = map.activity(upc);
            let class = classify(map.op(upc), plane == Plane::Stalled);
            per_routine
                .entry((act.index(), map.routine(upc)))
                .or_insert([0u64; 6])[class.index()] += count;
        }

        let mut root = ProfileNode::new("all");
        let mut routines = Vec::with_capacity(per_routine.len());
        for ((act_idx, routine), cycles) in &per_routine {
            let activity = Activity::ALL[*act_idx];
            let act_node = root.child_mut(activity.name());
            let parent = match middle_frame(routine) {
                Some(mid) => act_node.child_mut(mid),
                None => act_node,
            };
            let leaf = parent.child_mut(routine);
            leaf.cycles = *cycles;
            routines.push(RoutineProfile {
                routine: routine.to_string(),
                activity,
                cycles: *cycles,
            });
        }
        root.sort_and_sum();
        routines.sort_by(|a, b| {
            b.total()
                .cmp(&a.total())
                .then_with(|| a.routine.cmp(&b.routine))
        });
        Profile {
            total_cycles: hist.total_cycles(),
            root,
            routines,
        }
    }

    /// The ranked hot-routine table, `n` rows.
    pub fn top_routines_report(&self, n: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let shown = n.min(self.routines.len());
        let _ = writeln!(
            out,
            "µPC attribution profile — top {shown} of {} routines, {} cycles",
            self.routines.len(),
            self.total_cycles
        );
        let _ = writeln!(
            out,
            "{:>4}  {:<28} {:<10} {:>12} {:>7} {:>7} {:>6} {:>6}",
            "rank", "routine", "activity", "cycles", "%", "cum%", "busy%", "stall%"
        );
        let total = self.total_cycles.max(1) as f64;
        let mut cum = 0u64;
        for (i, r) in self.routines.iter().take(n).enumerate() {
            cum += r.total();
            let rt = r.total().max(1) as f64;
            let _ = writeln!(
                out,
                "{:>4}  {:<28} {:<10} {:>12} {:>6.2}% {:>6.2}% {:>5.1}% {:>5.1}%",
                i + 1,
                r.routine,
                r.activity.name(),
                r.total(),
                100.0 * r.total() as f64 / total,
                100.0 * cum as f64 / total,
                100.0 * r.busy() as f64 / rt,
                100.0 * r.stall() as f64 / rt,
            );
        }
        let rest = self.total_cycles - cum;
        if rest > 0 {
            let _ = writeln!(
                out,
                "      {:<28} {:<10} {:>12} {:>6.2}%",
                format!("(other, {} routines)", self.routines.len() - shown),
                "-",
                rest,
                100.0 * rest as f64 / total
            );
        }
        out
    }

    /// Folded stacks: `all;<activity>;[<mode>;]<routine>;<class> <count>`,
    /// one line per non-zero (routine, cycle class). Consumable by standard
    /// flame-graph tools; line counts sum to [`Profile::total_cycles`].
    pub fn folded(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut stack: Vec<&str> = Vec::with_capacity(4);
        fn walk<'a>(node: &'a ProfileNode, stack: &mut Vec<&'a str>, out: &mut String) {
            if node.children.is_empty() {
                for class in &CycleClass::ALL {
                    let count = node.cycles[class.index()];
                    if count > 0 {
                        let _ = writeln!(
                            out,
                            "{};{};{} {}",
                            stack.join(";"),
                            node.name,
                            class_key(*class),
                            count
                        );
                    }
                }
                return;
            }
            stack.push(&node.name);
            for child in &node.children {
                walk(child, stack, out);
            }
            stack.pop();
        }
        walk(&self.root, &mut stack, &mut out);
        out
    }

    /// The full tree plus the flat ranking, machine-readable.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format_version", Json::Int(1)),
            ("total_cycles", Json::from(self.total_cycles)),
            (
                "routines",
                Json::arr(self.routines.iter().map(|r| {
                    Json::obj([
                        ("routine", Json::from(r.routine.clone())),
                        ("activity", Json::from(r.activity.name())),
                        ("total_cycles", Json::from(r.total())),
                        ("busy_cycles", Json::from(r.busy())),
                        ("stall_cycles", Json::from(r.stall())),
                    ])
                })),
            ),
            ("tree", self.root.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::MicroOp;

    /// A toy control store: decode, two specifier routines of one mode, an
    /// execute routine, with a few recorded cycles in both planes.
    fn toy() -> (ControlStoreMap, Histogram) {
        let mut map = ControlStoreMap::new();
        let ird = map.alloc(
            "IRD",
            Activity::Decode,
            &[MicroOp::Compute, MicroOp::IbWait],
        );
        let rd = map.alloc(
            "SPEC1.Displacement.Read",
            Activity::Spec1,
            &[MicroOp::Compute, MicroOp::Read],
        );
        let wr = map.alloc(
            "SPEC1.Displacement.Write",
            Activity::Spec1,
            &[MicroOp::Write],
        );
        let exec = map.alloc("EXEC.ADDL2", Activity::ExecSimple, &[MicroOp::Compute]);
        let mut hist = Histogram::new(map.len());
        hist.start();
        hist.record_n(ird.at(0), Plane::Normal, 100); // decode compute
        hist.record_n(ird.at(1), Plane::Normal, 7); // IB stall
        hist.record_n(rd.at(0), Plane::Normal, 40);
        hist.record_n(rd.at(1), Plane::Normal, 40); // reads
        hist.record_n(rd.at(1), Plane::Stalled, 9); // read stalls
        hist.record_n(wr.at(0), Plane::Normal, 20);
        hist.record_n(wr.at(0), Plane::Stalled, 5); // write stalls
        hist.record_n(exec.at(0), Plane::Normal, 90);
        (map, hist)
    }

    #[test]
    fn conserves_total_cycles() {
        let (map, hist) = toy();
        let p = Profile::new(&map, &hist);
        assert_eq!(p.total_cycles, hist.total_cycles());
        assert_eq!(p.root.total(), p.total_cycles);
        let flat: u64 = p.routines.iter().map(RoutineProfile::total).sum();
        assert_eq!(flat, p.total_cycles);
        // The folded output's counts sum to the same total.
        let folded_sum: u64 = p
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(folded_sum, p.total_cycles);
    }

    #[test]
    fn hierarchy_groups_specifier_modes() {
        let (map, hist) = toy();
        let p = Profile::new(&map, &hist);
        let spec1 = p
            .root
            .children
            .iter()
            .find(|c| c.name == "Spec 1")
            .expect("Spec 1 activity node");
        let mode = spec1
            .children
            .iter()
            .find(|c| c.name == "Displacement")
            .expect("mode frame between activity and routine");
        assert_eq!(mode.children.len(), 2, "both flavors under the mode");
        assert_eq!(mode.total(), 40 + 40 + 9 + 20 + 5);
        assert_eq!(mode.stall(), 9 + 5);
        // Non-specifier routines sit directly under their activity.
        let decode = p.root.children.iter().find(|c| c.name == "Decode").unwrap();
        assert_eq!(decode.children[0].name, "IRD");
    }

    #[test]
    fn ranking_and_report() {
        let (map, hist) = toy();
        let p = Profile::new(&map, &hist);
        assert_eq!(p.routines[0].routine, "IRD", "hottest first (107 cycles)");
        let report = p.top_routines_report(2);
        assert!(report.contains("top 2 of 4 routines"), "{report}");
        assert!(report.contains("IRD"), "{report}");
        assert!(report.contains("(other, 2 routines)"), "{report}");
        // The truncated report still accounts for every cycle.
        assert!(report.contains(&p.total_cycles.to_string()), "{report}");
    }

    #[test]
    fn folded_lines_are_well_formed() {
        let (map, hist) = toy();
        let p = Profile::new(&map, &hist);
        let folded = p.folded();
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("frame stack + count");
            assert!(count.parse::<u64>().is_ok(), "{line}");
            assert!(stack.starts_with("all;"), "{line}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert!(frames.len() >= 4, "root;activity;routine;class: {line}");
        }
        assert!(
            folded.contains("all;Spec 1;Displacement;SPEC1.Displacement.Read;read_stall 9"),
            "{folded}"
        );
        assert!(folded.contains("all;Decode;IRD;ib_stall 7"), "{folded}");
    }

    #[test]
    fn json_export_parses_and_matches() {
        let (map, hist) = toy();
        let p = Profile::new(&map, &hist);
        let j = p.to_json();
        let parsed = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(
            parsed.get("total_cycles").and_then(Json::as_i64).unwrap() as u64,
            p.total_cycles
        );
        let tree_total = parsed
            .get("tree")
            .and_then(|t| t.get("total_cycles"))
            .and_then(Json::as_i64)
            .unwrap() as u64;
        assert_eq!(tree_total, p.total_cycles);
    }
}
