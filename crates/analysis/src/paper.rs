//! The paper's published numbers, used for paper-vs-measured reporting.
//!
//! Cells marked *OCR-approximate* in comments are garbled in our source
//! scan of the paper; row/column totals and all headline values are
//! legible. See EXPERIMENTS.md for the provenance discussion.

/// Table 1: opcode group frequency (percent), in
/// `OpcodeGroup::ALL` order (SIMPLE, FIELD, FLOAT, CALL/RET, SYSTEM,
/// CHARACTER, DECIMAL).
pub const TABLE1_GROUP_PERCENT: [f64; 7] = [83.60, 6.92, 3.62, 3.22, 2.11, 0.43, 0.03];

/// Table 2 rows: (executed % of all instructions, taken %, taken % of all
/// instructions), in `BranchKind::TABLE2_ROWS` order.
pub const TABLE2: [(f64, f64, f64); 9] = [
    (19.3, 56.0, 10.9), // simple cond + BRB/BRW
    (4.1, 91.0, 3.7),   // loop branches
    (2.0, 41.0, 0.8),   // low-bit tests
    (4.5, 100.0, 4.5),  // subroutine call/return
    (0.3, 100.0, 0.3),  // unconditional JMP
    (0.9, 100.0, 0.9),  // case branch
    (4.3, 44.0, 1.9),   // bit branches
    (2.4, 100.0, 2.4),  // procedure call/return
    (0.4, 100.0, 0.4),  // system branches
];

/// Table 2 totals: (executed %, taken %, taken % of all).
pub const TABLE2_TOTAL: (f64, f64, f64) = (38.5, 67.0, 25.7);

/// Table 3: specifiers and branch displacements per average instruction.
pub const TABLE3_SPEC1: f64 = 0.726;
/// Other (second through sixth) specifiers per instruction.
pub const TABLE3_SPEC26: f64 = 0.758;
/// Branch displacements per instruction.
pub const TABLE3_BDISP: f64 = 0.312;

/// Table 4 (percent of specifiers): rows (register, literal, immediate,
/// displacement, indexed%) × columns (SPEC1, SPEC2-6, total). Memory-mode
/// detail rows beyond displacement are OCR-garbled in our source; we
/// compare the legible ones.
pub const TABLE4_REGISTER: (f64, f64, f64) = (28.7, 52.6, 41.0);
/// Short literal row.
pub const TABLE4_LITERAL: (f64, f64, f64) = (21.1, 10.8, 15.8);
/// Immediate row.
pub const TABLE4_IMMEDIATE: (f64, f64, f64) = (3.2, 1.7, 2.4);
/// Displacement row (SPEC1 column only is legible).
pub const TABLE4_DISP_SPEC1: f64 = 25.0;
/// Percent of specifiers carrying an index prefix.
pub const TABLE4_INDEXED: (f64, f64, f64) = (8.5, 4.2, 6.3);

/// Table 5: D-stream reads and writes per average instruction, total row.
pub const TABLE5_READS_TOTAL: f64 = 0.783;
/// Total writes per instruction.
pub const TABLE5_WRITES_TOTAL: f64 = 0.409;
/// Reads per instruction by source row: Spec1, Spec2-6 (the two largest,
/// clearly legible).
pub const TABLE5_READS_SPEC1: f64 = 0.306;
/// Spec2-6 reads per instruction.
pub const TABLE5_READS_SPEC26: f64 = 0.148;
/// Unaligned references per instruction (§3.3.1).
pub const UNALIGNED_PER_INSTR: f64 = 0.016;

/// Table 6: average instruction size in bytes.
pub const TABLE6_AVG_INSTR_BYTES: f64 = 3.8;
/// Average operand-specifier size in bytes.
pub const TABLE6_AVG_SPEC_BYTES: f64 = 1.68;

/// Table 7: instruction headway between events.
pub const TABLE7_SOFT_REQ_HEADWAY: f64 = 2539.0;
/// Hardware + software interrupts delivered.
pub const TABLE7_INTERRUPT_HEADWAY: f64 = 637.0;
/// Context switches.
pub const TABLE7_CONTEXT_SWITCH_HEADWAY: f64 = 6418.0;

/// §4.1: IB cache references per instruction.
pub const IB_REFS_PER_INSTR: f64 = 2.2;
/// §4.1: bytes delivered per IB reference.
pub const IB_BYTES_PER_REF: f64 = 1.7;
/// §4.2: cache read misses per instruction (total, I-stream, D-stream).
pub const CACHE_MISSES_PER_INSTR: (f64, f64, f64) = (0.28, 0.18, 0.10);
/// §4.2: TB misses per instruction (total, D-stream, I-stream).
pub const TB_MISSES_PER_INSTR: (f64, f64, f64) = (0.029, 0.020, 0.009);
/// §4.2: average cycles to service a TB miss (3.5 of them read stalls).
pub const TB_MISS_SERVICE_CYCLES: f64 = 21.6;

/// Table 8 column totals (Compute, Read, R-Stall, Write, W-Stall,
/// IB-Stall) in cycles per average instruction.
pub const TABLE8_COLUMN_TOTALS: [f64; 6] = [7.267, 0.783, 0.964, 0.409, 0.450, 0.720];

/// Table 8 grand total: cycles per average VAX instruction.
pub const TABLE8_CPI: f64 = 10.593;

/// Table 8 row totals in `Activity::ALL` order (Decode, Spec1, Spec2-6,
/// B-Disp, Simple, Field, Float, Call/Ret, System, Character, Decimal,
/// Int/Except, Mem Mgmt, Abort). Spec1/Spec2-6 are reconstructed from the
/// grand total (OCR-approximate).
pub const TABLE8_ROW_TOTALS: [f64; 14] = [
    1.613, 1.944, 1.392, 0.226, 0.977, 0.600, 0.302, 1.458, 0.522, 0.506, 0.031, 0.071, 0.824,
    0.127,
];

/// Table 8 Decode row detail: (compute, ib-stall, total).
pub const TABLE8_DECODE: (f64, f64, f64) = (1.000, 0.613, 1.613);

/// Table 9: cycles per instruction *within* each group (execute phase
/// only, unweighted), Table-1 group order.
pub const TABLE9_GROUP_TOTALS: [f64; 7] = [1.17, 8.67, 8.33, 45.25, 24.74, 117.04, 100.77];

/// Table 9 Decimal row detail (fully legible): compute, read, r-stall,
/// write, w-stall, total.
pub const TABLE9_DECIMAL: [f64; 6] = [84.37, 5.64, 1.59, 3.94, 5.24, 100.77];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_consistency() {
        let col: f64 = TABLE8_COLUMN_TOTALS.iter().sum();
        assert!((col - TABLE8_CPI).abs() < 0.01);
        let row: f64 = TABLE8_ROW_TOTALS.iter().sum();
        assert!((row - TABLE8_CPI).abs() < 0.02, "row sum {row}");
        let groups: f64 = TABLE1_GROUP_PERCENT.iter().sum();
        assert!((groups - 99.93).abs() < 0.2);
        // Table 9 × Table 1 frequency ≈ Table 8 execute rows.
        let callret = TABLE9_GROUP_TOTALS[3] * TABLE1_GROUP_PERCENT[3] / 100.0;
        assert!((callret - 1.458).abs() < 0.01, "{callret}");
    }
}
