//! The run-diff engine: tolerance-aware comparison of exported artifacts.
//!
//! Two runs of the simulator — a fresh run and a committed golden baseline,
//! or the same experiment before and after a change — are compared through
//! their machine-readable JSON artifacts. [`diff_json`] walks two [`Json`]
//! documents in parallel and reports every differing metric by its dotted
//! path, classifying each as within or out of tolerance, so CI can gate on
//! drift while a human reads exactly *which* table cell moved and by how
//! much.
//!
//! Tolerance semantics (documented in `docs/TELEMETRY.md`): a numeric pair
//! `(a, b)` is within tolerance iff
//!
//! ```text
//! |a - b| <= abs + rel * max(|a|, |b|)
//! ```
//!
//! so `abs` bounds noise near zero and `rel` scales with magnitude. The
//! default tolerance is exact equality — integer counters of a
//! deterministic simulator should not move at all; every loosening is an
//! explicit decision at the call site. Non-numeric leaves (strings, bools,
//! nulls) must match exactly; missing keys, extra keys, mismatched types,
//! and array-length changes are *structural* deltas and are never within
//! tolerance.

use std::fmt::Write as _;

use crate::json::Json;

/// Numeric comparison tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack: `|a - b| <= abs` always passes.
    pub abs: f64,
    /// Relative slack, scaled by `max(|a|, |b|)`.
    pub rel: f64,
}

impl Tolerance {
    /// Exact equality (the default).
    pub const fn exact() -> Tolerance {
        Tolerance { abs: 0.0, rel: 0.0 }
    }

    /// A tolerance with the given absolute and relative slack.
    pub const fn new(abs: f64, rel: f64) -> Tolerance {
        Tolerance { abs, rel }
    }

    /// Whether `a` and `b` are within tolerance of each other.
    pub fn within(&self, a: f64, b: f64) -> bool {
        let delta = (a - b).abs();
        // NaN never passes; identical values always do (covers ±inf).
        a == b || delta <= self.abs + self.rel * a.abs().max(b.abs())
    }
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance::exact()
    }
}

/// What kind of difference a [`MetricDelta`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaKind {
    /// Both sides are numbers; carries the values.
    Numeric {
        /// Value in the first (baseline) document.
        a: f64,
        /// Value in the second (candidate) document.
        b: f64,
    },
    /// Non-numeric leaves that differ (or leaves of different types);
    /// carries both rendered values.
    Value {
        /// Rendered value in the first document.
        a: String,
        /// Rendered value in the second document.
        b: String,
    },
    /// A shape difference: missing key, extra key, array length change.
    Structure {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

/// One differing metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path from the document root, e.g. `table8.cpi.measured`.
    pub path: String,
    /// The difference.
    pub kind: DeltaKind,
    /// True when the difference is inside the comparison tolerance (only
    /// ever true for [`DeltaKind::Numeric`]).
    pub within: bool,
}

impl MetricDelta {
    /// Absolute delta for numeric differences.
    pub fn abs_delta(&self) -> Option<f64> {
        match self.kind {
            DeltaKind::Numeric { a, b } => Some((a - b).abs()),
            _ => None,
        }
    }

    /// Relative delta (`|a-b| / max(|a|,|b|)`) for numeric differences.
    pub fn rel_delta(&self) -> Option<f64> {
        match self.kind {
            DeltaKind::Numeric { a, b } => {
                let scale = a.abs().max(b.abs());
                Some(if scale == 0.0 {
                    0.0
                } else {
                    (a - b).abs() / scale
                })
            }
            _ => None,
        }
    }
}

/// The outcome of diffing two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Number of leaf values compared.
    pub compared: usize,
    /// Every differing metric, in document order.
    pub deltas: Vec<MetricDelta>,
}

impl DiffReport {
    /// True when nothing differs beyond tolerance.
    pub fn is_clean(&self) -> bool {
        self.deltas.iter().all(|d| d.within)
    }

    /// Number of out-of-tolerance deltas.
    pub fn failures(&self) -> usize {
        self.deltas.iter().filter(|d| !d.within).count()
    }

    /// Render the per-metric delta report. Out-of-tolerance metrics are
    /// flagged `DRIFT`; in-tolerance differences are listed as `ok` so a
    /// loosened tolerance still shows what moved.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} leaves compared, {} differ, {} out of tolerance",
            self.compared,
            self.deltas.len(),
            self.failures()
        );
        for d in &self.deltas {
            let tag = if d.within { "   ok" } else { "DRIFT" };
            match &d.kind {
                DeltaKind::Numeric { a, b } => {
                    let _ = writeln!(
                        out,
                        "  {tag}  {}: {a} -> {b}  (|Δ| {:.3e}, rel {:.3e})",
                        d.path,
                        d.abs_delta().unwrap_or(f64::NAN),
                        d.rel_delta().unwrap_or(f64::NAN)
                    );
                }
                DeltaKind::Value { a, b } => {
                    let _ = writeln!(out, "  {tag}  {}: {a} -> {b}", d.path);
                }
                DeltaKind::Structure { detail } => {
                    let _ = writeln!(out, "  {tag}  {}: {detail}", d.path);
                }
            }
        }
        out
    }
}

fn render_leaf(v: &Json) -> String {
    match v {
        Json::Arr(_) => "<array>".to_string(),
        Json::Obj(_) => "<object>".to_string(),
        other => other.to_string_compact(),
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(path: &str, a: &Json, b: &Json, tol: &Tolerance, report: &mut DiffReport) {
    match (a, b) {
        // Exact integer comparison first: counters larger than 2^53 would
        // alias under f64.
        (Json::Int(x), Json::Int(y)) => {
            report.compared += 1;
            if x != y {
                let delta = (*x as i128 - *y as i128).unsigned_abs() as f64;
                let scale = x.unsigned_abs().max(y.unsigned_abs()) as f64;
                report.deltas.push(MetricDelta {
                    path: path.to_string(),
                    kind: DeltaKind::Numeric {
                        a: *x as f64,
                        b: *y as f64,
                    },
                    within: delta <= tol.abs + tol.rel * scale,
                });
            }
        }
        (Json::Int(_) | Json::Num(_), Json::Int(_) | Json::Num(_)) => {
            report.compared += 1;
            // Both sides are Int|Num by the arm's pattern, so as_f64 is
            // always Some; NAN would only flag a (reported) difference.
            let (x, y) = (
                a.as_f64().unwrap_or(f64::NAN),
                b.as_f64().unwrap_or(f64::NAN),
            );
            if x.to_bits() != y.to_bits() {
                report.deltas.push(MetricDelta {
                    path: path.to_string(),
                    kind: DeltaKind::Numeric { a: x, b: y },
                    within: tol.within(x, y),
                });
            }
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            if xs.len() != ys.len() {
                report.deltas.push(MetricDelta {
                    path: path.to_string(),
                    kind: DeltaKind::Structure {
                        detail: format!("array length {} -> {}", xs.len(), ys.len()),
                    },
                    within: false,
                });
                return;
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                walk(&format!("{path}[{i}]"), x, y, tol, report);
            }
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            for (k, x) in xs {
                match b.get(k) {
                    Some(y) => walk(&join(path, k), x, y, tol, report),
                    None => report.deltas.push(MetricDelta {
                        path: join(path, k),
                        kind: DeltaKind::Structure {
                            detail: "missing in candidate".to_string(),
                        },
                        within: false,
                    }),
                }
            }
            for (k, _) in ys {
                if a.get(k).is_none() {
                    report.deltas.push(MetricDelta {
                        path: join(path, k),
                        kind: DeltaKind::Structure {
                            detail: "missing in baseline".to_string(),
                        },
                        within: false,
                    });
                }
            }
        }
        _ => {
            report.compared += 1;
            if a != b {
                report.deltas.push(MetricDelta {
                    path: path.to_string(),
                    kind: DeltaKind::Value {
                        a: render_leaf(a),
                        b: render_leaf(b),
                    },
                    within: false,
                });
            }
        }
    }
}

/// Diff two JSON documents (`a` is the baseline, `b` the candidate).
pub fn diff_json(a: &Json, b: &Json, tol: &Tolerance) -> DiffReport {
    let mut report = DiffReport::default();
    walk("", a, b, tol, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cpi: f64, cycles: i64) -> Json {
        Json::obj([
            ("experiment", Json::from("all")),
            ("cpi", Json::from(cpi)),
            ("cycles", Json::from(cycles)),
            (
                "rows",
                Json::arr([Json::obj([("v", Json::from(1i64))]), Json::from(2i64)]),
            ),
        ])
    }

    #[test]
    fn identical_documents_are_clean() {
        let r = diff_json(&doc(10.6, 100), &doc(10.6, 100), &Tolerance::exact());
        assert!(r.is_clean());
        assert!(r.deltas.is_empty());
        assert_eq!(r.compared, 5, "experiment, cpi, cycles, rows[0].v, rows[1]");
    }

    #[test]
    fn exact_tolerance_flags_any_numeric_change() {
        let r = diff_json(&doc(10.6, 100), &doc(10.6000001, 100), &Tolerance::exact());
        assert!(!r.is_clean());
        assert_eq!(r.failures(), 1);
        assert_eq!(r.deltas[0].path, "cpi");
        let rendered = r.render();
        assert!(rendered.contains("DRIFT"), "{rendered}");
        assert!(rendered.contains("cpi"), "{rendered}");
    }

    #[test]
    fn tolerance_window_abs_and_rel() {
        let tol = Tolerance::new(0.0, 1e-3);
        // 0.05% relative change: within, but still reported as a delta.
        let r = diff_json(&doc(10.6, 100), &doc(10.6053, 100), &tol);
        assert!(r.is_clean());
        assert_eq!(r.deltas.len(), 1, "in-tolerance drift is still listed");
        assert!(r.render().contains("ok"), "{}", r.render());
        // 1% relative change: drift.
        let r = diff_json(&doc(10.6, 100), &doc(10.706, 100), &tol);
        assert!(!r.is_clean());
        // Absolute slack covers integer counter noise.
        let tol = Tolerance::new(5.0, 0.0);
        assert!(diff_json(&doc(10.6, 100), &doc(10.6, 104), &tol).is_clean());
        assert!(!diff_json(&doc(10.6, 100), &doc(10.6, 106), &tol).is_clean());
    }

    #[test]
    fn structural_changes_never_pass() {
        let tol = Tolerance::new(f64::INFINITY, f64::INFINITY);
        let mut b = doc(10.6, 100);
        if let Json::Obj(members) = &mut b {
            members.retain(|(k, _)| k != "cycles");
            members.push(("extra".to_string(), Json::from(1i64)));
        }
        let r = diff_json(&doc(10.6, 100), &b, &tol);
        assert!(!r.is_clean());
        let paths: Vec<&str> = r.deltas.iter().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"cycles"), "{paths:?}");
        assert!(paths.contains(&"extra"), "{paths:?}");
        // Array length change.
        let mut c = doc(10.6, 100);
        if let Json::Obj(members) = &mut c {
            members[3].1 = Json::arr([Json::from(1i64)]);
        }
        assert!(!diff_json(&doc(10.6, 100), &c, &tol).is_clean());
        // Type change: number -> string.
        let mut d = doc(10.6, 100);
        if let Json::Obj(members) = &mut d {
            members[1].1 = Json::from("10.6");
        }
        assert!(!diff_json(&doc(10.6, 100), &d, &tol).is_clean());
    }

    #[test]
    fn value_changes_reported_with_both_sides() {
        let mut b = doc(10.6, 100);
        if let Json::Obj(members) = &mut b {
            members[0].1 = Json::from("table8");
        }
        let r = diff_json(&doc(10.6, 100), &b, &Tolerance::exact());
        assert_eq!(r.failures(), 1);
        match &r.deltas[0].kind {
            DeltaKind::Value { a, b } => {
                assert_eq!(a, "\"all\"");
                assert_eq!(b, "\"table8\"");
            }
            other => panic!("expected value delta, got {other:?}"),
        }
    }

    #[test]
    fn deltas_carry_magnitudes() {
        let r = diff_json(&doc(10.0, 100), &doc(11.0, 100), &Tolerance::exact());
        let d = &r.deltas[0];
        assert!((d.abs_delta().unwrap() - 1.0).abs() < 1e-12);
        assert!((d.rel_delta().unwrap() - 1.0 / 11.0).abs() < 1e-12);
    }
}
