//! Full-fidelity (workload, shard) cell codec for crash-safe resume.
//!
//! The run exporters ([`crate::export`]) are deliberately *lossy*
//! projections — totals without components, histogram summaries without
//! buckets — because they are read by humans and diff tooling. A resumable
//! run needs the opposite: every counter, every histogram bucket, and the
//! interval series of a completed cell, so that a `reproduce resume` can
//! merge checkpointed cells with freshly-run ones and export bytes
//! identical to an uninterrupted run.
//!
//! The interval series is stored via [`crate::export::timeseries_json`],
//! which *is* lossy — but idempotently so: every field the exporters derive
//! from a series survives the projection (totals are stored into their
//! first component), so a re-export of a parsed series is byte-identical.
//! The measurement, by contrast, feeds the analysis/validation pipeline and
//! is stored in full.

use upc_monitor::{Histogram, MicroPc, Plane};
use vax780::{Measurement, TimeSeries};
use vax_arch::Opcode;

use crate::export::{timeseries_from_json, timeseries_json};
use crate::json::Json;

/// Format version of cell checkpoints; bump on any schema change so a
/// resume never silently merges cells written by an older binary.
pub const CELL_FORMAT_VERSION: i64 = 1;

/// One completed grid cell, as journaled to `checkpoints/cell-<w>-<s>.json`.
#[derive(Debug, Clone)]
pub struct CheckpointCell {
    /// Workload index within the experiment's workload list.
    pub workload: u64,
    /// Shard index within the workload.
    pub shard: u64,
    /// The cell's full measurement (histogram included, bucket by bucket).
    pub m: Measurement,
    /// The cell's interval series.
    pub series: TimeSeries,
}

/// CpuStats scalar fields, in declaration order. One list shared by encode
/// and decode so the two cannot drift apart.
const CPU_SCALARS: [&str; 13] = [
    "instructions",
    "istream_bytes",
    "hw_interrupts",
    "sw_interrupts",
    "sw_interrupt_requests",
    "machine_checks",
    "context_switches",
    "exceptions",
    "spec1_count",
    "spec26_count",
    "spec1_quad_repeats",
    "spec26_quad_repeats",
    "branch_disps",
];

/// MemStats fields, in declaration order.
const MEM_FIELDS: [&str; 14] = [
    "d_reads",
    "d_read_misses",
    "d_writes",
    "d_write_hits",
    "i_reads",
    "i_read_misses",
    "tb_miss_d",
    "tb_miss_i",
    "unaligned_refs",
    "pte_reads",
    "pte_read_misses",
    "read_stall_cycles",
    "write_stall_cycles",
    "parity_faults",
];

fn cpu_scalar_values(m: &Measurement) -> [u64; 13] {
    let c = &m.cpu_stats;
    [
        c.instructions,
        c.istream_bytes,
        c.hw_interrupts,
        c.sw_interrupts,
        c.sw_interrupt_requests,
        c.machine_checks,
        c.context_switches,
        c.exceptions,
        c.spec1_count,
        c.spec26_count,
        c.spec1_quad_repeats,
        c.spec26_quad_repeats,
        c.branch_disps,
    ]
}

fn cpu_scalar_slots(m: &mut Measurement) -> [&mut u64; 13] {
    let c = &mut m.cpu_stats;
    [
        &mut c.instructions,
        &mut c.istream_bytes,
        &mut c.hw_interrupts,
        &mut c.sw_interrupts,
        &mut c.sw_interrupt_requests,
        &mut c.machine_checks,
        &mut c.context_switches,
        &mut c.exceptions,
        &mut c.spec1_count,
        &mut c.spec26_count,
        &mut c.spec1_quad_repeats,
        &mut c.spec26_quad_repeats,
        &mut c.branch_disps,
    ]
}

fn mem_field_values(m: &Measurement) -> [u64; 14] {
    let s = &m.mem_stats;
    [
        s.d_reads,
        s.d_read_misses,
        s.d_writes,
        s.d_write_hits,
        s.i_reads,
        s.i_read_misses,
        s.tb_miss_d,
        s.tb_miss_i,
        s.unaligned_refs,
        s.pte_reads,
        s.pte_read_misses,
        s.read_stall_cycles,
        s.write_stall_cycles,
        s.parity_faults,
    ]
}

fn mem_field_slots(m: &mut Measurement) -> [&mut u64; 14] {
    let s = &mut m.mem_stats;
    [
        &mut s.d_reads,
        &mut s.d_read_misses,
        &mut s.d_writes,
        &mut s.d_write_hits,
        &mut s.i_reads,
        &mut s.i_read_misses,
        &mut s.tb_miss_d,
        &mut s.tb_miss_i,
        &mut s.unaligned_refs,
        &mut s.pte_reads,
        &mut s.pte_read_misses,
        &mut s.read_stall_cycles,
        &mut s.write_stall_cycles,
        &mut s.parity_faults,
    ]
}

/// Serialize one completed cell.
pub fn cell_to_json(cell: &CheckpointCell) -> Json {
    let m = &cell.m;
    let cpu = Json::Obj(
        CPU_SCALARS
            .iter()
            .zip(cpu_scalar_values(m))
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect(),
    );
    let mem = Json::Obj(
        MEM_FIELDS
            .iter()
            .zip(mem_field_values(m))
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect(),
    );
    let opcodes = Json::arr(
        m.cpu_stats
            .opcode_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::from(i as u64), Json::from(n)])),
    );
    let branch = |arr: &[u64; 10]| Json::arr(arr.iter().map(|&v| Json::from(v)));
    let hist = Json::arr(m.hist.nonzero().map(|(upc, plane, n)| {
        let p = match plane {
            Plane::Normal => 0u64,
            Plane::Stalled => 1,
        };
        Json::Arr(vec![Json::from(upc.0 as u64), Json::from(p), Json::from(n)])
    }));
    Json::obj([
        ("format_version", Json::Int(CELL_FORMAT_VERSION)),
        ("workload", Json::from(cell.workload)),
        ("shard", Json::from(cell.shard)),
        ("cycles", Json::from(m.cycles)),
        ("cpu_scalars", cpu),
        ("opcode_counts", opcodes),
        ("branch_executed", branch(&m.cpu_stats.branch_executed)),
        ("branch_taken", branch(&m.cpu_stats.branch_taken)),
        ("mem_stats", mem),
        ("histogram", hist),
        ("series", timeseries_json(&cell.series)),
    ])
}

/// Parse a cell checkpoint. Any structural defect — wrong version, missing
/// field, out-of-range index — is an error; the caller treats an unreadable
/// checkpoint as "cell not done" and re-runs it.
pub fn cell_from_json(j: &Json) -> Result<CheckpointCell, String> {
    let int = |j: &Json, key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_i64)
            .and_then(|v| u64::try_from(v).ok())
            .ok_or_else(|| format!("checkpoint: missing integer '{key}'"))
    };
    let version = j
        .get("format_version")
        .and_then(Json::as_i64)
        .ok_or("checkpoint: missing 'format_version'")?;
    if version != CELL_FORMAT_VERSION {
        return Err(format!(
            "checkpoint: format_version {version} (this binary writes {CELL_FORMAT_VERSION})"
        ));
    }
    let workload = int(j, "workload")?;
    let shard = int(j, "shard")?;
    let mut m = Measurement {
        cycles: int(j, "cycles")?,
        ..Measurement::default()
    };

    let cpu = j
        .get("cpu_scalars")
        .ok_or("checkpoint: missing 'cpu_scalars'")?;
    for (key, slot) in CPU_SCALARS.iter().zip(cpu_scalar_slots(&mut m)) {
        *slot = int(cpu, key)?;
    }
    let mem = j
        .get("mem_stats")
        .ok_or("checkpoint: missing 'mem_stats'")?;
    for (key, slot) in MEM_FIELDS.iter().zip(mem_field_slots(&mut m)) {
        *slot = int(mem, key)?;
    }

    let pairs = j
        .get("opcode_counts")
        .and_then(Json::as_arr)
        .ok_or("checkpoint: missing 'opcode_counts' array")?;
    for p in pairs {
        let pair = p
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or("checkpoint: opcode_counts entry is not a pair")?;
        let idx = pair[0]
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .filter(|&i| i < Opcode::COUNT)
            .ok_or("checkpoint: opcode index out of range")?;
        let n = pair[1]
            .as_i64()
            .and_then(|v| u64::try_from(v).ok())
            .ok_or("checkpoint: opcode count is not a u64")?;
        m.cpu_stats.opcode_counts[idx] = n;
    }

    for (key, dest) in [
        ("branch_executed", &mut m.cpu_stats.branch_executed),
        ("branch_taken", &mut m.cpu_stats.branch_taken),
    ] {
        let arr = j
            .get(key)
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 10)
            .ok_or_else(|| format!("checkpoint: '{key}' is not a 10-element array"))?;
        for (slot, v) in dest.iter_mut().zip(arr) {
            *slot = v
                .as_i64()
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("checkpoint: '{key}' entry is not a u64"))?;
        }
    }

    let mut hist = Histogram::new_16k();
    hist.start();
    let triples = j
        .get("histogram")
        .and_then(Json::as_arr)
        .ok_or("checkpoint: missing 'histogram' array")?;
    for t in triples {
        let triple = t
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or("checkpoint: histogram entry is not a triple")?;
        let upc = triple[0]
            .as_i64()
            .and_then(|v| u16::try_from(v).ok())
            .ok_or("checkpoint: histogram µPC out of range")?;
        let plane = match triple[1].as_i64() {
            Some(0) => Plane::Normal,
            Some(1) => Plane::Stalled,
            _ => return Err("checkpoint: histogram plane must be 0 or 1".to_string()),
        };
        let n = triple[2]
            .as_i64()
            .and_then(|v| u64::try_from(v).ok())
            .ok_or("checkpoint: histogram count is not a u64")?;
        hist.record_n(MicroPc(upc), plane, n);
    }
    hist.stop();
    m.hist = hist;

    let series = timeseries_from_json(j.get("series").ok_or("checkpoint: missing 'series'")?)?;

    Ok(CheckpointCell {
        workload,
        shard,
        m,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
    use vax_arch::Reg;
    use vax_asm::{Asm, Operand};

    fn measured_cell() -> CheckpointCell {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.label("loop");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Reg(Reg::new(3))],
            None,
        );
        asm.insn(Opcode::Brb, &[], Some("loop"));
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
        let mut sys = b.build();
        let (m, series) = sys.measure_sampled(500, 4_000, 2_000);
        CheckpointCell {
            workload: 3,
            shard: 1,
            m,
            series,
        }
    }

    #[test]
    fn cell_roundtrips_measurement_exactly() {
        let cell = measured_cell();
        let j = cell_to_json(&cell);
        let text = j.to_string_pretty();
        let back = cell_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.workload, 3);
        assert_eq!(back.shard, 1);
        // Full fidelity: the measurement (histogram buckets included) is
        // reconstructed exactly, so analysis and validation of a resumed
        // composite see the same inputs as an uninterrupted run.
        assert_eq!(back.m, cell.m);
        // The series survives its (idempotent) projection: re-encoding
        // produces the same bytes.
        assert_eq!(
            timeseries_json(&back.series).to_string_pretty(),
            timeseries_json(&cell.series).to_string_pretty()
        );
    }

    #[test]
    fn cell_encoding_is_deterministic() {
        let cell = measured_cell();
        assert_eq!(
            cell_to_json(&cell).to_string_pretty(),
            cell_to_json(&cell).to_string_pretty()
        );
    }

    #[test]
    fn rejects_corrupt_cells() {
        let cell = measured_cell();
        let good = cell_to_json(&cell).to_string_pretty();
        // Wrong version.
        let j = Json::parse(&good.replacen("\"format_version\": 1", "\"format_version\": 99", 1))
            .unwrap();
        assert!(cell_from_json(&j).unwrap_err().contains("format_version"));
        // Truncation is a parse error upstream of the codec.
        assert!(Json::parse(&good[..good.len() / 2]).is_err());
        // Missing field.
        let j = Json::parse(&good.replacen("\"cycles\"", "\"cycle_count\"", 1)).unwrap();
        assert!(cell_from_json(&j).unwrap_err().contains("cycles"));
    }
}
