//! Chrome Trace Event serialization.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) described by the
//! Trace Event Format spec and understood by Perfetto and
//! `chrome://tracing`: duration events as matched `B`/`E` pairs, instants
//! as `i`, counters as `C`, and thread names as `M` metadata. Timestamps
//! are microseconds on the tracer's monotonic clock.
//!
//! The serializer is deliberately self-contained (this crate has no
//! dependencies, so it is usable from any layer of the workspace); it
//! escapes strings itself rather than pulling in `vax_analysis::Json`.

use std::fmt::Write;

use crate::{ArgValue, Event, EventKind};

/// The single process id used for all tracks. The harness is one process;
/// tracks distinguish the main thread from pool workers.
pub const PID: u64 = 1;

/// Escape `s` as the body of a JSON string literal.
fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(out, k);
        out.push_str("\":");
        match v {
            ArgValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::Str(s) => {
                out.push('"');
                escape_json(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn push_event(out: &mut String, e: &Event) {
    out.push_str("{\"name\":\"");
    escape_json(out, &e.name);
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"pid\":{PID},\"tid\":{},\"ts\":{}",
        e.kind.code(),
        e.tid,
        e.ts_us
    );
    if e.kind == EventKind::Instant {
        // Thread-scoped instants render as small markers on their track.
        out.push_str(",\"s\":\"t\"");
    }
    let mut args: Vec<(&'static str, ArgValue)> = Vec::new();
    if e.kind == EventKind::Begin {
        args.push(("span", ArgValue::Int(e.span as i64)));
        args.push(("parent", ArgValue::Int(e.parent as i64)));
    }
    args.extend(e.args.iter().cloned());
    if !args.is_empty() {
        out.push_str(",\"args\":");
        push_args(&mut *out, &args);
    }
    out.push('}');
}

/// Render `events` as a Chrome Trace Event JSON document.
///
/// Events are sorted by `(ts, recording order)` — a *stable* sort, so
/// same-timestamp events keep their recording order and `B`/`E` pairs stay
/// properly nested even at microsecond granularity.
pub fn render_chrome_trace(events: &[Event]) -> String {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].ts_us);
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (n, &i) in order.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push('\n');
        push_event(&mut out, &events[i]);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &str, tid: u64, ts: u64) -> Event {
        Event {
            kind,
            name: name.to_string(),
            tid,
            ts_us: ts,
            span: 0,
            parent: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn renders_all_phase_codes() {
        let mut meta = ev(EventKind::Meta, "thread_name", 1, 0);
        meta.args.push(("name", ArgValue::from("worker-0")));
        let mut begin = ev(EventKind::Begin, "simulate", 1, 10);
        begin.span = 3;
        begin.parent = 1;
        let events = vec![
            meta,
            begin,
            ev(EventKind::Instant, "retry", 1, 15),
            ev(EventKind::Counter, "cells_done", 0, 20),
            ev(EventKind::End, "simulate", 1, 30),
        ];
        let body = render_chrome_trace(&events);
        for code in [
            "\"ph\":\"M\"",
            "\"ph\":\"B\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"E\"",
        ] {
            assert!(body.contains(code), "missing {code} in {body}");
        }
        assert!(body.contains("\"s\":\"t\""), "instants are thread-scoped");
        assert!(body.contains("\"span\":3") && body.contains("\"parent\":1"));
        assert!(body.contains("worker-0"));
        assert!(body.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn sort_is_stable_for_equal_timestamps() {
        // B and E at the same microsecond must keep recording order.
        let events = vec![
            ev(EventKind::Begin, "a", 0, 5),
            ev(EventKind::End, "a", 0, 5),
            ev(EventKind::Begin, "b", 0, 3),
        ];
        let body = render_chrome_trace(&events);
        let b_pos = body.find("\"name\":\"b\"").unwrap();
        let a_begin = body.find("\"name\":\"a\",\"ph\":\"B\"").unwrap();
        let a_end = body.find("\"name\":\"a\",\"ph\":\"E\"").unwrap();
        assert!(b_pos < a_begin, "earlier ts sorts first");
        assert!(a_begin < a_end, "stable order preserved");
    }

    #[test]
    fn escapes_strings() {
        let mut e = ev(EventKind::Instant, "weird\"name\n", 0, 0);
        e.args.push(("msg", ArgValue::from("tab\there")));
        let body = render_chrome_trace(&[e]);
        assert!(body.contains("weird\\\"name\\n"), "{body}");
        assert!(body.contains("tab\\there"), "{body}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let body = render_chrome_trace(&[]);
        assert!(body.contains("\"traceEvents\":["));
    }
}
