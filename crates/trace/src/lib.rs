//! # vax-trace — observability for the *harness*, not the simulated machine.
//!
//! The simulated VAX has had first-class instrumentation since PR 1 (the
//! µPC histogram, the typed trace-event bus in `vax-mem`, the interval
//! sampler). This crate gives the *runtime around it* — workload codegen,
//! kernel boot, the shard pool, merge, export — the same treatment: every
//! phase of a run becomes a **span** on a monotonic clock, with an explicit
//! parent id, a thread track, and structured arguments; irregular moments
//! (a retry, a watchdog trip, a quarantine) become **instant events**; and
//! scalar progress (cells done, decode-cache hits, bytes exported) becomes
//! **counters**.
//!
//! Three consumers sit on top:
//!
//! * [`Tracer::chrome_trace`] serializes everything in Chrome Trace Event
//!   format, so a run opens directly in Perfetto or `chrome://tracing`
//!   with one track per worker thread;
//! * [`Tracer::phase_totals`] / [`Tracer::counters`] feed the `runtime.json`
//!   roll-up and the `--progress` heartbeat in `vax-bench`;
//! * [`Tracer::register_panic_flush`] arranges for a crashing process to
//!   leave an *openable* partial trace on disk (open spans are synthesized
//!   closed), next to the flight-recorder dump.
//!
//! ## Cost model
//!
//! A disabled tracer ([`Tracer::disabled`], the default) is a `None`: every
//! recording call is one branch and returns immediately — no clock read, no
//! lock, no allocation. Spans are only ever placed around whole pipeline
//! phases (a cell's codegen, boot, simulate, …), never inside the
//! simulator's hot loop, so even an *enabled* tracer records a few dozen
//! events per million simulated instructions. The `bench-check` CI gate
//! runs with tracing disabled and holds the throughput floor.
//!
//! ## Determinism contract
//!
//! Timestamps are wall-clock and therefore nondeterministic; they live
//! **only** in the trace file and heartbeat lines. Everything derived from
//! the tracer that lands in a diffed export (`runtime.json`) is either a
//! count or is keyed by name in sorted order, so `--jobs N` runs stay
//! byte-identical after the diff machinery strips the timing fields.

mod chrome;

pub use chrome::{render_chrome_trace, PID};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

/// The track id of the orchestrating (main) thread.
pub const MAIN_TID: u64 = 0;

/// The track id of pool worker `worker` (main thread is track 0).
pub fn worker_tid(worker: usize) -> u64 {
    worker as u64 + 1
}

/// Identifier of a recorded span. `0` is the "no span" sentinel (used both
/// for "no parent" and for guards handed out by a disabled tracer).
pub type SpanId = u64;

/// A structured argument value attached to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An integer argument.
    Int(i64),
    /// A string argument.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::Int(i64::from(v))
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// Event arguments: `(key, value)` pairs, insertion-ordered.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What kind of trace event a record is (maps onto the Chrome Trace Event
/// `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// A point-in-time event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
    /// Track metadata, e.g. a thread name (`ph: "M"`).
    Meta,
}

impl EventKind {
    /// The Chrome Trace Event phase code.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
            EventKind::Meta => "M",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind (span begin/end, instant, counter, metadata).
    pub kind: EventKind,
    /// Event name. For spans this is the phase name (`"simulate"`); for
    /// counters the counter name; for metadata the Chrome metadata key.
    pub name: String,
    /// Track (thread) id; [`MAIN_TID`] or [`worker_tid`].
    pub tid: u64,
    /// Microseconds since the tracer was created (monotonic clock).
    pub ts_us: u64,
    /// The span this event opens or closes (`0` when not a span event).
    pub span: SpanId,
    /// The opening span's parent (`0` = root; only set on [`EventKind::Begin`]).
    pub parent: SpanId,
    /// Structured arguments.
    pub args: Args,
}

/// A fully-resolved span, reconstructed from its begin/end events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span id.
    pub id: SpanId,
    /// Parent span id (`0` = root).
    pub parent: SpanId,
    /// Track the span ran on.
    pub tid: u64,
    /// Phase name.
    pub name: String,
    /// Start, µs since tracer creation.
    pub start_us: u64,
    /// End, µs since tracer creation (synthesized as "now" for spans still
    /// open at snapshot time).
    pub end_us: u64,
}

impl SpanRec {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Aggregate of all spans sharing one phase name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations, µs. Wall-clock — nondeterministic; the diff
    /// machinery strips this field from `runtime.json` comparisons.
    pub total_us: u64,
}

/// How a new span chooses its parent.
enum ParentSpec {
    /// Parent is the innermost open span on the same track (root if none).
    FromStack,
    /// Explicit parent id (use `0` for an explicit root span).
    Explicit(SpanId),
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    next_span: SpanId,
    /// Open spans per track, innermost last. Also doubles as the "current
    /// activity" the heartbeat reports per worker.
    stacks: BTreeMap<u64, Vec<(SpanId, String)>>,
    counters: BTreeMap<&'static str, u64>,
}

struct Inner {
    anchor: Instant,
    state: Mutex<State>,
}

/// A shareable, thread-safe handle to a trace collector.
///
/// Clones share the same buffer (like [`std::sync::Arc`]); a disabled
/// tracer carries no buffer at all, making every call a cheap no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every recording call is a no-op.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer anchored at "now".
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                anchor: Instant::now(),
                state: Mutex::new(State {
                    next_span: 1,
                    ..State::default()
                }),
            })),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the tracer was created (0 when disabled).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.anchor.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Name track `tid` (shows as the thread name in Perfetto).
    pub fn set_thread_name(&self, tid: u64, name: &str) {
        let Some(inner) = &self.inner else { return };
        let ts = inner.anchor.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        // Register the track even before its first span, so the heartbeat
        // can report the worker as idle rather than unknown.
        st.stacks.entry(tid).or_default();
        st.events.push(Event {
            kind: EventKind::Meta,
            name: "thread_name".to_string(),
            tid,
            ts_us: ts,
            span: 0,
            parent: 0,
            args: vec![("name", ArgValue::from(name))],
        });
    }

    fn begin_with(&self, tid: u64, name: &str, parent: ParentSpec, args: Args) -> SpanId {
        let Some(inner) = &self.inner else { return 0 };
        let ts = inner.anchor.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        let id = st.next_span;
        st.next_span += 1;
        let stack = st.stacks.entry(tid).or_default();
        let parent = match parent {
            ParentSpec::FromStack => stack.last().map(|(id, _)| *id).unwrap_or(0),
            ParentSpec::Explicit(p) => p,
        };
        stack.push((id, name.to_string()));
        st.events.push(Event {
            kind: EventKind::Begin,
            name: name.to_string(),
            tid,
            ts_us: ts,
            span: id,
            parent,
            args,
        });
        id
    }

    /// Close span `id` on track `tid`. Closes any younger spans still open
    /// on the track first (panic unwinds can skip intermediate guards), so
    /// begin/end events always nest. Unknown ids are ignored.
    pub fn end(&self, tid: u64, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        if id == 0 {
            return;
        }
        let ts = inner.anchor.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        let Some(stack) = st.stacks.get_mut(&tid) else {
            return;
        };
        let Some(pos) = stack.iter().rposition(|(sid, _)| *sid == id) else {
            return;
        };
        let closing: Vec<(SpanId, String)> = stack.drain(pos..).collect();
        for (sid, name) in closing.into_iter().rev() {
            st.events.push(Event {
                kind: EventKind::End,
                name,
                tid,
                ts_us: ts,
                span: sid,
                parent: 0,
                args: Vec::new(),
            });
        }
    }

    /// Open a span whose parent is the innermost open span on `tid`.
    /// The returned guard closes it on drop.
    pub fn span(&self, tid: u64, name: &str, args: Args) -> SpanGuard {
        let id = self.begin_with(tid, name, ParentSpec::FromStack, args);
        SpanGuard {
            tracer: self.clone(),
            tid,
            id,
        }
    }

    /// Open a span with an explicit parent (use `0` for an explicit root —
    /// e.g. a worker-track span whose logical parent lives on the main
    /// track).
    pub fn span_under(&self, tid: u64, name: &str, parent: SpanId, args: Args) -> SpanGuard {
        let id = self.begin_with(tid, name, ParentSpec::Explicit(parent), args);
        SpanGuard {
            tracer: self.clone(),
            tid,
            id,
        }
    }

    /// Record an already-finished span: begin at `start_us` (a value from
    /// [`Tracer::now_us`] taken earlier on the same track), end now. Used
    /// where the interesting interval is only known in hindsight, e.g. a
    /// worker's queue wait.
    pub fn complete(&self, tid: u64, name: &str, start_us: u64, args: Args) {
        let Some(inner) = &self.inner else { return };
        let end = inner.anchor.elapsed().as_micros() as u64;
        let start = start_us.min(end);
        let mut st = inner.state.lock().unwrap();
        let id = st.next_span;
        st.next_span += 1;
        let parent = st
            .stacks
            .get(&tid)
            .and_then(|s| s.last())
            .map(|(id, _)| *id)
            .unwrap_or(0);
        st.events.push(Event {
            kind: EventKind::Begin,
            name: name.to_string(),
            tid,
            ts_us: start,
            span: id,
            parent,
            args,
        });
        st.events.push(Event {
            kind: EventKind::End,
            name: name.to_string(),
            tid,
            ts_us: end,
            span: id,
            parent: 0,
            args: Vec::new(),
        });
    }

    /// Record an instant event (a retry, a quarantine, a watchdog trip).
    pub fn instant(&self, tid: u64, name: &str, args: Args) {
        let Some(inner) = &self.inner else { return };
        let ts = inner.anchor.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        st.events.push(Event {
            kind: EventKind::Instant,
            name: name.to_string(),
            tid,
            ts_us: ts,
            span: 0,
            parent: 0,
            args,
        });
    }

    /// Add `delta` to counter `name`, record a counter sample on `tid`, and
    /// return the new total.
    pub fn count(&self, tid: u64, name: &'static str, delta: u64) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let ts = inner.anchor.elapsed().as_micros() as u64;
        let mut st = inner.state.lock().unwrap();
        let total = {
            let c = st.counters.entry(name).or_insert(0);
            *c += delta;
            *c
        };
        st.events.push(Event {
            kind: EventKind::Counter,
            name: name.to_string(),
            tid,
            ts_us: ts,
            span: 0,
            parent: 0,
            args: vec![("value", ArgValue::from(total))],
        });
        total
    }

    /// Set counter `name` to an absolute value without emitting an event
    /// (used for static facts such as the total cell count).
    pub fn counter_set(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.state.lock().unwrap().counters.insert(name, value);
    }

    /// The current value of counter `name` (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .counters
                .get(name)
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }

    /// A sorted snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        match &self.inner {
            Some(inner) => inner.state.lock().unwrap().counters.clone(),
            None => BTreeMap::new(),
        }
    }

    /// Per-track current activity: the innermost open span's name, or
    /// `None` for an idle (registered but spanless) track. Sorted by tid.
    pub fn worker_states(&self) -> Vec<(u64, Option<String>)> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .stacks
                .iter()
                .map(|(tid, stack)| (*tid, stack.last().map(|(_, name)| name.clone())))
                .collect(),
            None => Vec::new(),
        }
    }

    /// A snapshot of every recorded event, in recording order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.state.lock().unwrap().events.clone(),
            None => Vec::new(),
        }
    }

    /// Events plus synthesized [`EventKind::End`]s (at "now") for spans
    /// still open, so every begin is matched — this is what makes a
    /// mid-crash flush openable.
    fn events_closed(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let now = inner.anchor.elapsed().as_micros() as u64;
        let st = inner.state.lock().unwrap();
        Self::events_closed_locked(&st, now)
    }

    fn events_closed_locked(st: &State, now: u64) -> Vec<Event> {
        let mut events = st.events.clone();
        for (tid, stack) in &st.stacks {
            for (id, name) in stack.iter().rev() {
                events.push(Event {
                    kind: EventKind::End,
                    name: name.clone(),
                    tid: *tid,
                    ts_us: now,
                    span: *id,
                    parent: 0,
                    args: Vec::new(),
                });
            }
        }
        events
    }

    /// Reconstruct every span (open spans are closed at "now").
    pub fn spans(&self) -> Vec<SpanRec> {
        let events = self.events_closed();
        let mut open: BTreeMap<SpanId, SpanRec> = BTreeMap::new();
        let mut done = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::Begin => {
                    open.insert(
                        e.span,
                        SpanRec {
                            id: e.span,
                            parent: e.parent,
                            tid: e.tid,
                            name: e.name.clone(),
                            start_us: e.ts_us,
                            end_us: e.ts_us,
                        },
                    );
                }
                EventKind::End => {
                    if let Some(mut rec) = open.remove(&e.span) {
                        rec.end_us = e.ts_us;
                        done.push(rec);
                    }
                }
                _ => {}
            }
        }
        done.sort_by_key(|s| s.id);
        done
    }

    /// Aggregate spans by phase name: `{name: (count, total_us)}`, sorted
    /// by name. Counts are deterministic for a deterministic run grid; the
    /// µs totals are wall-clock.
    pub fn phase_totals(&self) -> BTreeMap<String, PhaseTotal> {
        let mut out: BTreeMap<String, PhaseTotal> = BTreeMap::new();
        for s in self.spans() {
            let t = out.entry(s.name).or_default();
            t.count += 1;
            t.total_us += s.end_us - s.start_us;
        }
        out
    }

    /// Instant-event tallies by name, sorted.
    pub fn instant_totals(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for e in self.events() {
            if e.kind == EventKind::Instant {
                *out.entry(e.name).or_insert(0) += 1;
            }
        }
        out
    }

    /// Serialize everything recorded so far as a Chrome Trace Event JSON
    /// document (open spans synthesized closed). Returns an empty trace
    /// (`{"traceEvents":[]}`-shaped) for a disabled tracer.
    pub fn chrome_trace(&self) -> String {
        render_chrome_trace(&self.events_closed())
    }

    /// [`Tracer::chrome_trace`] via `try_lock`, for use inside a panic
    /// hook: if the panic happened while the tracer lock was held, returns
    /// `None` rather than deadlocking.
    pub fn try_chrome_trace(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let now = inner.anchor.elapsed().as_micros() as u64;
        let st = inner.state.try_lock().ok()?;
        Some(render_chrome_trace(&Self::events_closed_locked(&st, now)))
    }

    /// Register this tracer with the process-wide panic hook: any panic
    /// (even one later caught by a supervisor) flushes the partial trace to
    /// `path`, so a crashed shard leaves an openable `trace.json` next to
    /// its flight-recorder dump. The hook chains to the previous hook; the
    /// most recently registered tracer wins.
    pub fn register_panic_flush(&self, path: &Path) {
        if !self.is_enabled() {
            return;
        }
        *flush_target().lock().unwrap() = Some((self.clone(), path.to_path_buf()));
        FLUSH_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                prev(info);
                panic_flush();
            }));
        });
    }
}

/// RAII guard returned by [`Tracer::span`]: closes the span when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    tid: u64,
    id: SpanId,
}

impl SpanGuard {
    /// The opened span's id (0 when the tracer is disabled), for use as an
    /// explicit parent of spans on other tracks.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.end(self.tid, self.id);
    }
}

static FLUSH_HOOK: Once = Once::new();

fn flush_target() -> &'static Mutex<Option<(Tracer, PathBuf)>> {
    static TARGET: Mutex<Option<(Tracer, PathBuf)>> = Mutex::new(None);
    &TARGET
}

/// Flush the registered tracer to its path (best-effort, deadlock-free:
/// `try_lock` everywhere). Public so tests can exercise the flush without
/// panicking. Returns the path written, if a flush happened.
pub fn panic_flush() -> Option<PathBuf> {
    let (tracer, path) = flush_target().try_lock().ok()?.clone()?;
    let body = tracer.try_chrome_trace()?;
    // Temp-and-rename so a reader never sees a torn file, even when the
    // process is panicking.
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, body).ok()?;
    std::fs::rename(&tmp, &path).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_us(), 0);
        let g = t.span(MAIN_TID, "run", vec![]);
        assert_eq!(g.id(), 0);
        drop(g);
        t.instant(MAIN_TID, "x", vec![]);
        assert_eq!(t.count(MAIN_TID, "n", 5), 0);
        assert!(t.events().is_empty());
        assert!(t.spans().is_empty());
        assert!(t.counters().is_empty());
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let t = Tracer::enabled();
        let run = t.span(MAIN_TID, "run", vec![("seed", ArgValue::from(7u64))]);
        let run_id = run.id();
        assert!(run_id > 0);
        {
            let cell = t.span_under(worker_tid(0), "cell", run_id, vec![]);
            let inner = t.span(worker_tid(0), "simulate", vec![]);
            assert!(inner.id() > cell.id());
            drop(inner);
            drop(cell);
        }
        drop(run);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap().clone();
        let run = by_name("run");
        let cell = by_name("cell");
        let sim = by_name("simulate");
        assert_eq!(run.parent, 0);
        assert_eq!(cell.parent, run.id, "explicit cross-track parent");
        assert_eq!(sim.parent, cell.id, "stack-derived parent");
        assert!(sim.start_us >= cell.start_us && sim.end_us <= cell.end_us);
        assert!(cell.end_us <= run.end_us);
    }

    #[test]
    fn end_closes_skipped_children() {
        // A panic unwind can drop an outer guard while an inner span is
        // still open; the inner span must still get its End event.
        let t = Tracer::enabled();
        let outer = t.begin_with(MAIN_TID, "outer", ParentSpec::FromStack, vec![]);
        let _inner = t.begin_with(MAIN_TID, "inner", ParentSpec::FromStack, vec![]);
        t.end(MAIN_TID, outer);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(t.worker_states().iter().all(|(_, s)| s.is_none()));
        // Ends are emitted innermost-first so B/E pairs nest.
        let kinds: Vec<(EventKind, String)> = t
            .events()
            .iter()
            .map(|e| (e.kind, e.name.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Begin, "outer".to_string()),
                (EventKind::Begin, "inner".to_string()),
                (EventKind::End, "inner".to_string()),
                (EventKind::End, "outer".to_string()),
            ]
        );
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let t = Tracer::enabled();
        assert_eq!(t.count(MAIN_TID, "cells_done", 1), 1);
        assert_eq!(t.count(MAIN_TID, "cells_done", 2), 3);
        t.counter_set("cells_total", 10);
        assert_eq!(t.counter_value("cells_done"), 3);
        assert_eq!(t.counter_value("cells_total"), 10);
        assert_eq!(t.counter_value("missing"), 0);
        let c = t.counters();
        assert_eq!(c.get("cells_done"), Some(&3));
        // Two counter events were recorded (counter_set records none).
        let n = t
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Counter)
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn complete_records_matched_pair_with_back_dated_start() {
        let t = Tracer::enabled();
        let start = t.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.complete(
            worker_tid(3),
            "queue-wait",
            start,
            vec![("slot", 0usize.into())],
        );
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "queue-wait");
        assert_eq!(spans[0].start_us, start);
        assert!(
            spans[0].dur_us() >= 1_000,
            "slept ≥2ms: {}",
            spans[0].dur_us()
        );
    }

    #[test]
    fn phase_and_instant_totals_aggregate_by_name() {
        let t = Tracer::enabled();
        for _ in 0..3 {
            drop(t.span(MAIN_TID, "boot", vec![]));
        }
        t.instant(MAIN_TID, "retry", vec![]);
        t.instant(MAIN_TID, "retry", vec![]);
        t.instant(MAIN_TID, "quarantine", vec![]);
        let phases = t.phase_totals();
        assert_eq!(phases["boot"].count, 3);
        let instants = t.instant_totals();
        assert_eq!(instants["retry"], 2);
        assert_eq!(instants["quarantine"], 1);
    }

    #[test]
    fn open_spans_are_synthesized_closed_in_snapshots() {
        let t = Tracer::enabled();
        let _open = t.span(MAIN_TID, "run", vec![]);
        let spans = t.spans();
        assert_eq!(spans.len(), 1, "open span visible in snapshot");
        assert!(t.chrome_trace().contains("\"ph\":\"E\""));
        // The live stack is untouched by the snapshot.
        assert_eq!(t.worker_states(), vec![(MAIN_TID, Some("run".to_string()))]);
    }

    #[test]
    fn worker_states_report_current_activity() {
        let t = Tracer::enabled();
        t.set_thread_name(worker_tid(0), "worker-0");
        t.set_thread_name(worker_tid(1), "worker-1");
        let _g = t.span(worker_tid(1), "simulate", vec![]);
        let states = t.worker_states();
        assert_eq!(
            states,
            vec![
                (worker_tid(0), None),
                (worker_tid(1), Some("simulate".to_string())),
            ]
        );
    }

    #[test]
    fn panic_flush_writes_an_openable_trace() {
        let dir = std::env::temp_dir().join(format!("vax-trace-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let t = Tracer::enabled();
        let _open = t.span(MAIN_TID, "run", vec![]);
        t.register_panic_flush(&path);
        let written = panic_flush().expect("flush must happen");
        assert_eq!(written, path);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"traceEvents\""), "{body}");
        assert!(body.contains("\"ph\":\"B\"") && body.contains("\"ph\":\"E\""));
        // An actual (caught) panic also triggers the hook.
        std::fs::remove_file(&path).unwrap();
        let _ = std::panic::catch_unwind(|| panic!("injected"));
        assert!(path.is_file(), "panic hook rewrote the trace");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
