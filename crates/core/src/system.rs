//! System construction: physical memory layout, address spaces, kernel
//! installation, and the run loop.

use vax_arch::Psl;
use vax_asm::Image;
use vax_cpu::ebox::{DEVICE_IPL, VEC_CHMK, VEC_DEVICE, VEC_MCHK, VEC_SOFT, VEC_TIMER};
use vax_cpu::{Cpu, CpuConfig, StepOutcome};
use vax_mem::addr::PAGE_SIZE;
use vax_mem::{MemConfig, MemorySystem, PageTables, PhysAddr, Pte, VirtAddr};

use crate::faults::{FaultKind, FaultPlan, WatchdogExpired};
use crate::kernel::{self, KernelConfig, KernelEntries};
use crate::measurement::Measurement;
use crate::sampler::{IntervalSample, TimeSeries};

/// Whole-system configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemConfig {
    /// Memory subsystem geometry.
    pub mem: MemConfig,
    /// CPU timing/behaviour.
    pub cpu: CpuConfig,
    /// Kernel scheduling behaviour.
    pub kernel: KernelConfig,
}

/// One user process to load.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// P0 image (code + initialized data). The origin must be page-aligned
    /// or at least leave page 0 free (0x200 is conventional).
    pub image: Image,
    /// Entry-point label within the image.
    pub entry: String,
    /// Zero-filled data pages mapped after the image.
    pub bss_pages: u32,
    /// Stack pages mapped at the top of the P0 region.
    pub stack_pages: u32,
}

impl ProcessSpec {
    /// A process with default bss (16 pages) and stack (8 pages).
    pub fn new(image: Image, entry: &str) -> ProcessSpec {
        ProcessSpec {
            image,
            entry: entry.to_string(),
            bss_pages: 16,
            stack_pages: 8,
        }
    }

    /// Override the number of zero-filled data pages.
    pub fn with_bss_pages(mut self, n: u32) -> ProcessSpec {
        self.bss_pages = n;
        self
    }

    /// Override the number of stack pages.
    pub fn with_stack_pages(mut self, n: u32) -> ProcessSpec {
        self.stack_pages = n;
        self
    }
}

/// System-space base of the SCB (must match [`CpuConfig::scb_base`]).
const S0_BASE: u32 = 0x8000_0000;
/// Number of system page-table entries (covers 4 MB of S0 space).
const SYS_PT_ENTRIES: u32 = 8192;

/// Builds a complete simulated machine.
#[derive(Debug)]
pub struct SystemBuilder {
    config: SystemConfig,
    mem: MemorySystem,
    next_pfn: u32,
    next_sys_page: u32,
    processes: Vec<ProcessSpec>,
}

impl SystemBuilder {
    /// Start building a machine.
    pub fn new(config: SystemConfig) -> SystemBuilder {
        let mut mem = MemorySystem::new(config.mem);
        // The system page table occupies the bottom of physical memory.
        let pt_bytes = SYS_PT_ENTRIES * 4;
        mem.tables = PageTables {
            sbr: PhysAddr(0),
            slr: SYS_PT_ENTRIES,
            p0br: VirtAddr(0),
            p0lr: 0,
            p1br: VirtAddr(0),
            p1lr: 0,
        };
        let mut builder = SystemBuilder {
            config,
            mem,
            next_pfn: pt_bytes.div_ceil(PAGE_SIZE),
            next_sys_page: 0,
            processes: Vec::new(),
        };
        // Page 0 of system space is the SCB.
        let scb = builder.alloc_sys_pages(1);
        assert_eq!(scb.0, S0_BASE);
        assert_eq!(
            scb.0, config.cpu.scb_base.0,
            "SCB base must match the CPU configuration"
        );
        builder
    }

    fn alloc_frame(&mut self) -> u32 {
        let pfn = self.next_pfn;
        self.next_pfn += 1;
        let limit = (self.config.mem.mem_bytes as u32) / PAGE_SIZE;
        assert!(pfn < limit, "out of physical memory frames");
        pfn
    }

    /// Allocate `n` contiguous system-space pages, returning the first VA.
    fn alloc_sys_pages(&mut self, n: u32) -> VirtAddr {
        let first = self.next_sys_page;
        assert!(first + n <= SYS_PT_ENTRIES, "out of system address space");
        for i in 0..n {
            let pfn = self.alloc_frame();
            let pte_pa = PhysAddr((first + i) * 4);
            self.mem
                .phys_mut()
                .write(pte_pa, 4, Pte::valid(pfn).0 as u64);
        }
        self.next_sys_page += n;
        VirtAddr(S0_BASE + first * PAGE_SIZE)
    }

    /// Write bytes into mapped memory by virtual address (untimed).
    fn poke(&mut self, va: VirtAddr, bytes: &[u8]) {
        let mut off = 0usize;
        while off < bytes.len() {
            let a = va.add(off as u32);
            let pa = self.mem.raw_translate(a).expect("poke target not mapped");
            let in_page = (PAGE_SIZE - a.offset()) as usize;
            let take = in_page.min(bytes.len() - off);
            self.mem.phys_mut().load(pa, &bytes[off..off + take]);
            off += take;
        }
    }

    /// Add a user process. Returns its index.
    pub fn add_process(&mut self, spec: ProcessSpec) -> usize {
        self.processes.push(spec);
        self.processes.len() - 1
    }

    /// Finish construction: lay out processes, install the kernel, and boot
    /// the CPU to the kernel's entry point.
    ///
    /// Implemented as [`SystemBuilder::build_image`] followed by
    /// [`System::from_boot_image`], so a machine restored from a cached
    /// image is *the same code path* as a freshly built one — warm-cache
    /// hits cannot diverge from cold builds by construction.
    ///
    /// # Panics
    /// Panics if no process was added, or resources are exhausted.
    pub fn build(self) -> System {
        System::from_boot_image(&self.build_image())
    }

    /// Run the full layout (process address spaces, kernel, SCB, stacks)
    /// and capture the result as a plain-data [`BootImage`] instead of a
    /// live machine. The image is `Send`, cheap to clone, and can be
    /// rehydrated any number of times with [`System::from_boot_image`].
    ///
    /// # Panics
    /// Panics if no process was added, or resources are exhausted.
    pub fn build_image(mut self) -> BootImage {
        assert!(
            !self.processes.is_empty(),
            "a system needs at least one process"
        );
        let processes = std::mem::take(&mut self.processes);
        let mut pcb_vas = Vec::with_capacity(processes.len());

        for spec in &processes {
            let pcb = self.build_process(spec);
            pcb_vas.push(pcb.0);
        }

        // Kernel image in system space.
        let kcfg = self.config.kernel;
        // Assemble once at a provisional origin to learn the size.
        let (probe, _) = kernel::build(S0_BASE + self.next_sys_page * PAGE_SIZE, &pcb_vas, kcfg);
        let kpages = (probe.bytes.len() as u32).div_ceil(PAGE_SIZE);
        let kbase = self.alloc_sys_pages(kpages);
        let (kimage, entries) = kernel::build(kbase.0, &pcb_vas, kcfg);
        assert_eq!(kimage.origin, kbase.0);
        self.poke(kbase, &kimage.bytes);

        // Kernel boot stack.
        let kstack = self.alloc_sys_pages(4);
        let kstack_top = kstack.0 + 4 * PAGE_SIZE;

        // SCB vectors.
        let scb = VirtAddr(S0_BASE);
        self.poke(scb.add(VEC_CHMK * 4), &entries.chmk_handler.to_le_bytes());
        self.poke(scb.add(VEC_TIMER * 4), &entries.timer_isr.to_le_bytes());
        self.poke(scb.add(VEC_SOFT * 4), &entries.softint_isr.to_le_bytes());
        self.poke(scb.add(VEC_MCHK * 4), &entries.mchk_isr.to_le_bytes());
        self.poke(scb.add(VEC_DEVICE * 4), &entries.device_isr.to_le_bytes());

        // The builder only ever touched physical memory and the table
        // registers (pokes are untimed raw stores); cache, TB, and write
        // buffer are still in their reset state, so phys + tables + the
        // boot register file capture the whole machine.
        let mut regs = [0u32; 16];
        regs[14] = kstack_top;
        regs[15] = entries.boot;
        let all = self.mem.phys().slice(PhysAddr(0), self.mem.phys().size());
        let used = all.len() - all.iter().rev().take_while(|&&b| b == 0).count();
        BootImage {
            config: self.config,
            phys: all[..used].to_vec(),
            tables: self.mem.tables,
            regs,
            psl: Psl::new_kernel(31),
            nproc: processes.len(),
            entries,
        }
    }

    /// Lay out one process: P0 pages (guard/code/bss/stack), page table in
    /// system space, and its PCB. Returns the PCB system VA.
    fn build_process(&mut self, spec: &ProcessSpec) -> VirtAddr {
        let image = &spec.image;
        assert!(
            image.origin >= PAGE_SIZE,
            "process images must leave page 0 for the guard/null page"
        );
        let code_end = image.origin + image.bytes.len() as u32;
        let code_pages = code_end.div_ceil(PAGE_SIZE);
        let total_pages = code_pages + spec.bss_pages + spec.stack_pages;

        // P0 page table: contiguous system pages.
        let pt_bytes = total_pages * 4;
        let pt_pages = pt_bytes.div_ceil(PAGE_SIZE);
        let p0br = self.alloc_sys_pages(pt_pages);
        // Map every P0 page to a fresh frame.
        for vpn in 0..total_pages {
            let pfn = self.alloc_frame();
            let pte_va = p0br.add(vpn * 4);
            let pte_pa = self
                .mem
                .raw_translate(pte_va)
                .expect("page-table page not mapped");
            self.mem
                .phys_mut()
                .write(pte_pa, 4, Pte::valid(pfn).0 as u64);
        }
        // Install temporary tables to poke the image in.
        let saved = self.mem.tables;
        self.mem.tables.p0br = p0br;
        self.mem.tables.p0lr = total_pages;
        self.poke(VirtAddr(image.origin), &image.bytes);
        self.mem.tables = saved;

        let sp_top = total_pages * PAGE_SIZE;
        let entry = image.addr_of(&spec.entry);

        // PCB.
        let pcb = self.alloc_sys_pages(1);
        let mut pcb_bytes = [0u8; 84];
        pcb_bytes[56..60].copy_from_slice(&sp_top.to_le_bytes());
        pcb_bytes[60..64].copy_from_slice(&entry.to_le_bytes());
        pcb_bytes[64..68].copy_from_slice(&Psl::new_user().to_u32().to_le_bytes());
        pcb_bytes[68..72].copy_from_slice(&p0br.0.to_le_bytes());
        pcb_bytes[72..76].copy_from_slice(&total_pages.to_le_bytes());
        // P1 unused (stack lives at the top of P0 — see DESIGN.md).
        pcb_bytes[76..80].copy_from_slice(&0u32.to_le_bytes());
        pcb_bytes[80..84].copy_from_slice(&0u32.to_le_bytes());
        self.poke(pcb, &pcb_bytes);
        pcb
    }
}

/// A booted machine captured as plain data: the physical-memory contents
/// after layout (trimmed of trailing zero bytes), the page-table registers,
/// and the boot register file. Unlike [`System`] this is `Send`, so a warm
/// cache can hand one image to any worker thread; rehydration via
/// [`System::from_boot_image`] costs a memcpy instead of a full layout.
#[derive(Debug, Clone)]
pub struct BootImage {
    config: SystemConfig,
    /// Physical memory up to the last nonzero byte; the rest is zero.
    phys: Vec<u8>,
    tables: PageTables,
    regs: [u32; 16],
    psl: Psl,
    nproc: usize,
    entries: KernelEntries,
}

impl BootImage {
    /// The configuration the image was built for.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Size in bytes of the retained (nonzero) physical-memory prefix.
    pub fn retained_bytes(&self) -> usize {
        self.phys.len()
    }
}

/// How many steps pass between watchdog deadline checks. `Instant::now()`
/// is far too expensive per step; at ~3M simulated instructions/s this
/// stride still bounds overrun detection to well under a millisecond.
const WATCHDOG_STRIDE: u32 = 2048;

/// A booted machine.
#[derive(Debug)]
pub struct System {
    /// The CPU (with memory, monitor, and statistics attached).
    pub cpu: Cpu,
    /// Number of user processes.
    pub nproc: usize,
    /// Kernel entry points.
    pub entries: KernelEntries,
    /// Scheduled fault injections for the measured interval.
    faults: FaultPlan,
    /// Cooperative watchdog deadline; the run loops panic with
    /// [`WatchdogExpired`] when it passes.
    deadline: Option<std::time::Instant>,
    watchdog_countdown: u32,
}

impl System {
    /// Rehydrate a machine from a captured [`BootImage`]: fresh memory
    /// system (cold cache, TB, and write buffer — exactly the reset state a
    /// cold build leaves them in), image bytes loaded, table registers and
    /// boot register file restored. [`SystemBuilder::build`] routes through
    /// this, so restored and freshly built machines are indistinguishable.
    pub fn from_boot_image(img: &BootImage) -> System {
        let mut mem = MemorySystem::new(img.config.mem);
        mem.tables = img.tables;
        mem.phys_mut().load(PhysAddr(0), &img.phys);
        let mut cpu = Cpu::new(img.config.cpu, mem);
        cpu.regs = img.regs;
        cpu.psl = img.psl;
        cpu.set_pc(img.regs[15]);
        System {
            cpu,
            nproc: img.nproc,
            entries: img.entries.clone(),
            faults: FaultPlan::none(),
            deadline: None,
            watchdog_countdown: WATCHDOG_STRIDE,
        }
    }

    /// Install a fault plan. Events fire between instructions of the next
    /// *measured* interval, keyed by the measured-instruction count (the
    /// warm-up is never perturbed).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Arm (or disarm, with `None`) the cooperative watchdog. When the
    /// deadline passes, the run loops panic with [`WatchdogExpired`];
    /// the pool supervisor catches it and classifies the shard as timed
    /// out. Checked every [`WATCHDOG_STRIDE`] steps.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.watchdog_countdown = WATCHDOG_STRIDE;
    }

    #[inline]
    fn check_watchdog(&mut self) {
        self.watchdog_countdown -= 1;
        if self.watchdog_countdown == 0 {
            self.watchdog_countdown = WATCHDOG_STRIDE;
            if let Some(d) = self.deadline {
                if std::time::Instant::now() >= d {
                    std::panic::panic_any(WatchdogExpired);
                }
            }
        }
    }

    /// Fire every fault due at the current measured-instruction count.
    #[inline]
    fn poll_faults(&mut self) {
        while let Some(ev) = self.faults.peek() {
            if ev.at_instruction > self.cpu.stats.instructions {
                break;
            }
            self.faults.advance();
            self.apply_fault(ev.kind);
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Parity => self.cpu.mem.inject_parity_fault(),
            FaultKind::TbInvalidate => {
                // What a guest TBIA does (see `exec`'s MTPR handling): the
                // refills are serviced by the ordinary TB-miss microcode,
                // counted by both instruments.
                self.cpu.mem.tb_mut().invalidate_all();
                self.cpu.flush_decode_cache();
            }
            FaultKind::DeviceInterrupt => self.cpu.post_interrupt(DEVICE_IPL, VEC_DEVICE),
            FaultKind::SoftRequest(level) => self.cpu.request_soft_interrupt(level),
            FaultKind::SmcWrite => {
                // DMA-style store of a code byte's own value at the current
                // PC: bumps the code-watch epoch (cached decodes for the
                // line are discarded and re-decoded identically) without
                // touching timing or counters.
                let pc = VirtAddr(self.cpu.pc());
                if let Ok(pa) = self.cpu.mem.raw_translate(pc) {
                    let v = self.cpu.mem.value_read(pa, 1);
                    self.cpu.mem.value_write(pa, 1, v);
                }
            }
        }
    }

    /// Run `n` instructions (interrupt dispatches count as one step).
    /// Returns `false` if the machine halted.
    pub fn run_instructions(&mut self, n: u64) -> bool {
        for _ in 0..n {
            if let StepOutcome::Halted = self.cpu.step() {
                return false;
            }
            self.check_watchdog();
        }
        true
    }

    /// Warm up (monitor stopped), then clear all counters and measure `n`
    /// instructions with the monitor running — the paper's experimental
    /// procedure. Returns the measurement.
    pub fn measure(&mut self, warmup: u64, n: u64) -> Measurement {
        let base = self.begin_measurement(warmup);
        for _ in 0..n {
            if let StepOutcome::Halted = self.cpu.step() {
                break;
            }
            self.check_watchdog();
            self.poll_faults();
        }
        self.cpu.hist.stop();
        self.snapshot(base)
    }

    /// [`System::measure`] plus interval sampling: the cumulative counters
    /// are snapshotted at the first step boundary past each multiple of
    /// `interval_cycles`, and each sample holds the *delta* from the
    /// previous snapshot. Returns the whole-run measurement and the time
    /// series; merging the series reproduces the measurement exactly.
    ///
    /// # Panics
    /// Panics if `interval_cycles` is zero.
    pub fn measure_sampled(
        &mut self,
        warmup: u64,
        n: u64,
        interval_cycles: u64,
    ) -> (Measurement, TimeSeries) {
        assert!(interval_cycles > 0, "interval_cycles must be positive");
        let base = self.begin_measurement(warmup);
        let mut series = TimeSeries::default();
        let mut prev = Measurement::default();
        let mut prev_cycle = 0u64;
        let mut next_boundary = interval_cycles;
        for _ in 0..n {
            if let StepOutcome::Halted = self.cpu.step() {
                break;
            }
            self.check_watchdog();
            self.poll_faults();
            // Instructions are not preemptible: the boundary is the first
            // step boundary at or past the interval mark.
            let rel = self.cpu.cycle - base;
            if rel >= next_boundary {
                let cum = self.snapshot(base);
                series.samples.push(IntervalSample {
                    start_cycle: prev_cycle,
                    end_cycle: rel,
                    delta: cum.diff(&prev),
                });
                prev = cum;
                prev_cycle = rel;
                while next_boundary <= rel {
                    next_boundary += interval_cycles;
                }
            }
        }
        self.cpu.hist.stop();
        let total = self.snapshot(base);
        let rel = self.cpu.cycle - base;
        if rel > prev_cycle {
            // Final partial interval.
            series.samples.push(IntervalSample {
                start_cycle: prev_cycle,
                end_cycle: rel,
                delta: total.diff(&prev),
            });
        }
        (total, series)
    }

    /// Warm up and reset every counter; returns the base cycle number.
    fn begin_measurement(&mut self, warmup: u64) -> u64 {
        self.cpu.hist.stop();
        self.run_instructions(warmup);
        self.cpu.hist.clear();
        self.cpu.stats = vax_cpu::CpuStats::new();
        self.cpu.mem.stats.clear();
        let base = self.cpu.cycle;
        self.cpu.hist.start();
        base
    }

    /// The cumulative measurement since `base` (histogram cloned).
    fn snapshot(&self, base: u64) -> Measurement {
        Measurement {
            hist: self.cpu.hist.clone(),
            cpu_stats: self.cpu.stats.clone(),
            mem_stats: self.cpu.mem.stats,
            cycles: self.cpu.cycle - base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::{Opcode, Reg};
    use vax_asm::{Asm, Operand};

    fn spin_process() -> ProcessSpec {
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(100), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.label("loop");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Reg(Reg::new(3))],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(100), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.insn(Opcode::Brb, &[], Some("loop"));
        ProcessSpec::new(asm.assemble().unwrap(), "entry")
    }

    #[test]
    fn boots_and_runs_user_code() {
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(spin_process());
        let mut sys = b.build();
        assert!(sys.run_instructions(5_000));
        // Interrupt dispatches are steps but not instructions.
        assert!(sys.cpu.stats.instructions >= 4_900);
        // The loop retired many SOBGTRs.
        let sob = sys.cpu.stats.opcode_counts[Opcode::Sobgtr as usize];
        assert!(sob > 1_000, "SOBGTR count {sob}");
        assert!(sys.cpu.stats.hw_interrupts > 0, "timer must fire");
    }

    #[test]
    fn round_robin_switches_processes() {
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(spin_process());
        b.add_process(spin_process());
        b.add_process(spin_process());
        let mut sys = b.build();
        assert!(sys.run_instructions(300_000));
        assert!(
            sys.cpu.stats.context_switches >= 2,
            "expected switches, got {}",
            sys.cpu.stats.context_switches
        );
        assert!(sys.cpu.stats.sw_interrupts > 0, "softints must deliver");
    }

    #[test]
    fn boot_image_rehydrates_identically() {
        let image = {
            let mut b = SystemBuilder::new(SystemConfig::default());
            b.add_process(spin_process());
            b.add_process(spin_process());
            b.build_image()
        };
        assert!(image.retained_bytes() > 0);
        assert!(image.retained_bytes() < 8 << 20, "image must be trimmed");
        let measure = |sys: &mut System| sys.measure(2_000, 10_000);
        let a = measure(&mut System::from_boot_image(&image));
        let b = measure(&mut System::from_boot_image(&image));
        assert_eq!(a, b, "two rehydrations must measure identically");
    }

    #[test]
    fn measurement_procedure() {
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(spin_process());
        let mut sys = b.build();
        let m = sys.measure(2_000, 10_000);
        assert!(m.cpu_stats.instructions >= 9_900 && m.cpu_stats.instructions <= 10_000);
        assert!(m.cycles > 10_000, "CPI must exceed 1");
        // Histogram cycle conservation: every cycle was recorded.
        assert_eq!(m.hist.total_cycles(), m.cycles);
    }
}
