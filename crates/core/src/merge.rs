//! Deterministic result merging: the [`Mergeable`] trait and the
//! index-ordered reduction used by the sharded execution engine.
//!
//! The paper's composite workload is literally "the sum of the five
//! experiments' histograms"; this module names that structure. Every
//! counter block the simulator produces — [`Histogram`], [`CpuStats`],
//! [`MemStats`], and the whole [`Measurement`] — forms a commutative
//! monoid under counter addition with `Default::default()` as identity
//! (the laws are property-tested in `tests/merge_properties.rs`). Parallel
//! runs lean on that: shards complete in nondeterministic order, but
//! [`merge_ordered`] reduces them by `(workload, shard)` index, so the
//! composite is bit-identical to a serial run regardless of scheduling.

use upc_monitor::Histogram;
use vax_cpu::CpuStats;
use vax_mem::MemStats;

use crate::measurement::Measurement;

/// A counter block that can absorb another block of the same shape.
///
/// Implementations must satisfy the monoid laws the deterministic-merge
/// guarantee rests on, with `Default::default()` as the identity:
///
/// * identity — `default ⊕ a = a`;
/// * associativity — `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`;
/// * commutativity — `a ⊕ b = b ⊕ a` (counter sums commute, so any
///   fixed merge order is as good as any other — we fix index order).
pub trait Mergeable: Default {
    /// Fold `other` into `self` (`self ← self ⊕ other`).
    fn merge_from(&mut self, other: &Self);
}

impl Mergeable for Histogram {
    fn merge_from(&mut self, other: &Self) {
        Histogram::merge(self, other);
    }
}

impl Mergeable for CpuStats {
    fn merge_from(&mut self, other: &Self) {
        CpuStats::merge(self, other);
    }
}

impl Mergeable for MemStats {
    fn merge_from(&mut self, other: &Self) {
        MemStats::merge(self, other);
    }
}

impl Mergeable for Measurement {
    fn merge_from(&mut self, other: &Self) {
        Measurement::merge(self, other);
    }
}

/// Reduce `parts` in iteration order into one block.
///
/// The caller fixes determinism by the order of `parts` (the pool stores
/// shard results by `(workload, shard)` index, not completion order);
/// commutativity makes any fixed order equivalent, but index order keeps
/// the parallel reduction byte-identical to the serial loop by
/// construction rather than by argument.
pub fn merge_ordered<T, I>(parts: I) -> T
where
    T: Mergeable,
    I: IntoIterator,
    I::Item: std::borrow::Borrow<T>,
{
    use std::borrow::Borrow;
    let mut total = T::default();
    for p in parts {
        total.merge_from(p.borrow());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(cycles: u64, instructions: u64, d_reads: u64) -> Measurement {
        let mut m = Measurement {
            cycles,
            ..Measurement::default()
        };
        m.cpu_stats.instructions = instructions;
        m.mem_stats.d_reads = d_reads;
        m
    }

    #[test]
    fn merge_ordered_matches_sequential_inherent_merge() {
        let parts = vec![m(100, 10, 3), m(50, 5, 2), m(25, 1, 9)];
        let total: Measurement = merge_ordered(&parts);
        let mut want = parts[0].clone();
        want.merge(&parts[1]);
        want.merge(&parts[2]);
        assert_eq!(total, want);
        assert_eq!(total.cycles, 175);
        assert_eq!(total.instructions(), 16);
        assert_eq!(total.mem_stats.d_reads, 14);
    }

    #[test]
    fn merge_ordered_of_nothing_is_identity() {
        let total: Measurement = merge_ordered(std::iter::empty::<Measurement>());
        assert_eq!(total, Measurement::default());
        let stats: MemStats = merge_ordered(std::iter::empty::<MemStats>());
        assert_eq!(stats, MemStats::default());
    }

    #[test]
    fn trait_and_inherent_merge_agree_per_component() {
        let a = m(10, 2, 1);
        let b = m(7, 3, 4);
        let mut via_trait = a.cpu_stats.clone();
        via_trait.merge_from(&b.cpu_stats);
        let mut via_inherent = a.cpu_stats.clone();
        via_inherent.merge(&b.cpu_stats);
        assert_eq!(via_trait, via_inherent);

        let mut hist_t = a.hist.clone();
        hist_t.merge_from(&b.hist);
        assert_eq!(hist_t, a.hist, "empty boards merge to empty");
    }
}
