//! Measurement results: the raw material of the paper's tables.

use upc_monitor::Histogram;
use vax_cpu::CpuStats;
use vax_mem::MemStats;

/// Everything one measurement run produced: the µPC histogram (both
/// planes), the CPU's own counters, and the memory-system counters.
///
/// Measurements are mergeable — the paper's composite workload is "the sum
/// of the five UPC histograms" — and diffable, which is how the interval
/// sampler derives per-interval deltas from cumulative counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Measurement {
    /// The histogram board contents.
    pub hist: Histogram,
    /// CPU counters over the interval.
    pub cpu_stats: CpuStats,
    /// Memory-system counters over the interval.
    pub mem_stats: MemStats,
    /// Total cycles in the interval.
    pub cycles: u64,
}

impl Measurement {
    /// Instructions retired in the interval.
    pub fn instructions(&self) -> u64 {
        self.cpu_stats.instructions
    }

    /// Cycles per instruction — the paper's headline metric.
    pub fn cpi(&self) -> f64 {
        if self.instructions() == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions() as f64
    }

    /// Merge another measurement (composite workloads).
    pub fn merge(&mut self, other: &Measurement) {
        self.hist.merge(&other.hist);
        self.cpu_stats.merge(&other.cpu_stats);
        self.mem_stats.merge(&other.mem_stats);
        self.cycles += other.cycles;
    }

    /// Component-wise `self - earlier`: the activity between two cumulative
    /// snapshots of the same machine.
    ///
    /// # Panics
    /// Panics if any counter of `earlier` exceeds its value in `self`.
    pub fn diff(&self, earlier: &Measurement) -> Measurement {
        Measurement {
            hist: self.hist.diff(&earlier.hist),
            cpu_stats: self.cpu_stats.diff(&earlier.cpu_stats),
            mem_stats: self.mem_stats.diff(&earlier.mem_stats),
            cycles: self
                .cycles
                .checked_sub(earlier.cycles)
                .expect("Measurement::diff: cycle counter ran backwards"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> Measurement {
        Measurement::default()
    }

    #[test]
    fn cpi() {
        let mut m = empty();
        m.cycles = 1060;
        m.cpu_stats.instructions = 100;
        assert!((m.cpi() - 10.6).abs() < 1e-9);
        assert_eq!(empty().cpi(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = empty();
        a.cycles = 100;
        a.cpu_stats.instructions = 10;
        a.mem_stats.d_reads = 5;
        let mut b = empty();
        b.cycles = 50;
        b.cpu_stats.instructions = 5;
        b.mem_stats.d_reads = 2;
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.instructions(), 15);
        assert_eq!(a.mem_stats.d_reads, 7);
    }

    #[test]
    fn diff_inverts_merge() {
        let mut later = empty();
        later.cycles = 150;
        later.cpu_stats.instructions = 15;
        later.mem_stats.d_reads = 7;
        later.mem_stats.read_stall_cycles = 30;
        let mut earlier = empty();
        earlier.cycles = 100;
        earlier.cpu_stats.instructions = 10;
        earlier.mem_stats.d_reads = 5;
        earlier.mem_stats.read_stall_cycles = 12;
        let delta = later.diff(&earlier);
        assert_eq!(delta.cycles, 50);
        assert_eq!(delta.instructions(), 5);
        assert_eq!(delta.mem_stats.d_reads, 2);
        assert_eq!(delta.mem_stats.read_stall_cycles, 18);
        // Adding the delta back reproduces the later snapshot's counters.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.cycles, later.cycles);
        assert_eq!(rebuilt.mem_stats, later.mem_stats);
    }
}
