//! Measurement results: the raw material of the paper's tables.

use upc_monitor::Histogram;
use vax_cpu::CpuStats;
use vax_mem::MemStats;

/// Everything one measurement run produced: the µPC histogram (both
/// planes), the CPU's own counters, and the memory-system counters.
///
/// Measurements are mergeable — the paper's composite workload is "the sum
/// of the five UPC histograms".
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The histogram board contents.
    pub hist: Histogram,
    /// CPU counters over the interval.
    pub cpu_stats: CpuStats,
    /// Memory-system counters over the interval.
    pub mem_stats: MemStats,
    /// Total cycles in the interval.
    pub cycles: u64,
}

impl Measurement {
    /// Instructions retired in the interval.
    pub fn instructions(&self) -> u64 {
        self.cpu_stats.instructions
    }

    /// Cycles per instruction — the paper's headline metric.
    pub fn cpi(&self) -> f64 {
        if self.instructions() == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions() as f64
    }

    /// Merge another measurement (composite workloads).
    pub fn merge(&mut self, other: &Measurement) {
        self.hist.merge(&other.hist);
        self.cpu_stats.merge(&other.cpu_stats);
        let o = &other.mem_stats;
        let s = &mut self.mem_stats;
        s.d_reads += o.d_reads;
        s.d_read_misses += o.d_read_misses;
        s.d_writes += o.d_writes;
        s.d_write_hits += o.d_write_hits;
        s.i_reads += o.i_reads;
        s.i_read_misses += o.i_read_misses;
        s.tb_miss_d += o.tb_miss_d;
        s.tb_miss_i += o.tb_miss_i;
        s.unaligned_refs += o.unaligned_refs;
        s.pte_reads += o.pte_reads;
        s.pte_read_misses += o.pte_read_misses;
        s.read_stall_cycles += o.read_stall_cycles;
        s.write_stall_cycles += o.write_stall_cycles;
        self.cycles += other.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> Measurement {
        Measurement {
            hist: Histogram::new_16k(),
            cpu_stats: CpuStats::new(),
            mem_stats: MemStats::new(),
            cycles: 0,
        }
    }

    #[test]
    fn cpi() {
        let mut m = empty();
        m.cycles = 1060;
        m.cpu_stats.instructions = 100;
        assert!((m.cpi() - 10.6).abs() < 1e-9);
        assert_eq!(empty().cpi(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = empty();
        a.cycles = 100;
        a.cpu_stats.instructions = 10;
        a.mem_stats.d_reads = 5;
        let mut b = empty();
        b.cycles = 50;
        b.cpu_stats.instructions = 5;
        b.mem_stats.d_reads = 2;
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.instructions(), 15);
        assert_eq!(a.mem_stats.d_reads, 7);
    }
}
