//! Interval sampling: a time series of per-interval [`Measurement`] deltas.
//!
//! The paper's histogram board accumulates over a whole run; this module
//! adds the time dimension. [`crate::System::measure_sampled`] snapshots the
//! cumulative counters roughly every `interval_cycles` cycles and stores the
//! *delta* from the previous snapshot, so each [`IntervalSample`] is a small
//! self-contained measurement of that slice of simulated time: its CPI, its
//! stall breakdown, its interrupt headway. Summing every sample reproduces
//! the whole-run measurement exactly (counter conservation), which the test
//! suite checks.

use crate::measurement::Measurement;

/// One interval's worth of activity.
#[derive(Debug, Clone)]
pub struct IntervalSample {
    /// Cycle number (since measurement start) at the start of the interval.
    pub start_cycle: u64,
    /// Cycle number at the end of the interval.
    pub end_cycle: u64,
    /// The delta measurement for this interval.
    pub delta: Measurement,
}

impl IntervalSample {
    /// Interval length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// CPI over this interval alone.
    pub fn cpi(&self) -> f64 {
        self.delta.cpi()
    }

    /// Read-stall cycles in this interval.
    pub fn read_stalls(&self) -> u64 {
        self.delta.mem_stats.read_stall_cycles
    }

    /// Write-stall cycles in this interval.
    pub fn write_stalls(&self) -> u64 {
        self.delta.mem_stats.write_stall_cycles
    }

    /// Mean cycles between interrupts in this interval (interrupt headway,
    /// Table 7). Zero when no interrupt fell in the interval.
    pub fn interrupt_headway(&self) -> f64 {
        let n = self.delta.cpu_stats.total_interrupts();
        if n == 0 {
            return 0.0;
        }
        self.cycles() as f64 / n as f64
    }
}

/// The sampled run: ordered, contiguous intervals.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Samples in time order; `samples[i].end_cycle ==
    /// samples[i+1].start_cycle`.
    pub samples: Vec<IntervalSample>,
}

impl TimeSeries {
    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no interval was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merge every interval back into one measurement. By construction this
    /// equals the whole-run measurement (conservation).
    pub fn merged(&self) -> Measurement {
        let mut total = Measurement::default();
        for s in &self.samples {
            total.merge(&s.delta);
        }
        total
    }

    /// Cycle stamp of the last sample's end (0 when empty): the offset at
    /// which the next spliced series would begin.
    pub fn end_cycle(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.end_cycle)
    }

    /// Append `other`'s samples rebased by `cycle_offset`, so several
    /// independently-measured series (each starting at cycle 0) form one
    /// contiguous timeline. Returns `cycle_offset` shifted past the spliced
    /// samples — feed it to the next `splice` call:
    ///
    /// ```
    /// # use vax780::TimeSeries;
    /// # let (a, b) = (TimeSeries::default(), TimeSeries::default());
    /// let mut composite = TimeSeries::default();
    /// let mut offset = 0;
    /// offset = composite.splice(offset, &a);
    /// offset = composite.splice(offset, &b);
    /// ```
    ///
    /// Splicing at `self.end_cycle()` keeps the series contiguous
    /// (`samples[i].end_cycle == samples[i+1].start_cycle`); a larger
    /// offset models unrecorded cycles between the runs (a measurement
    /// whose tail produced no sample).
    ///
    /// # Panics
    /// Panics if `cycle_offset` is earlier than the current end of the
    /// series — the splice would run time backwards.
    pub fn splice(&mut self, cycle_offset: u64, other: &TimeSeries) -> u64 {
        assert!(
            cycle_offset >= self.end_cycle(),
            "TimeSeries::splice: offset {cycle_offset} precedes series end {}",
            self.end_cycle()
        );
        for s in &other.samples {
            self.samples.push(IntervalSample {
                start_cycle: s.start_cycle + cycle_offset,
                end_cycle: s.end_cycle + cycle_offset,
                delta: s.delta.clone(),
            });
        }
        cycle_offset + other.end_cycle()
    }

    /// Render as CSV: one row per interval with the headline per-interval
    /// statistics (cycles, instructions, CPI, stall breakdown, events).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "start_cycle,end_cycle,cycles,instructions,cpi,\
             read_stall_cycles,write_stall_cycles,ib_reads,\
             cache_read_misses,tb_misses,interrupts,context_switches,\
             interrupt_headway\n",
        );
        for s in &self.samples {
            let d = &s.delta;
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{},{},{},{},{},{},{},{:.1}",
                s.start_cycle,
                s.end_cycle,
                s.cycles(),
                d.instructions(),
                s.cpi(),
                s.read_stalls(),
                s.write_stalls(),
                d.mem_stats.i_reads,
                d.mem_stats.total_read_misses(),
                d.mem_stats.total_tb_misses(),
                d.cpu_stats.total_interrupts(),
                d.cpu_stats.context_switches,
                s.interrupt_headway(),
            );
        }
        out
    }

    /// Parse a [`TimeSeries::to_csv`] export back into a series.
    ///
    /// The CSV is a lossy projection of the full measurement — it carries
    /// totals, not their components, and no histogram — so the parsed
    /// series stores each total in the first component counter
    /// (`total_read_misses` into `d_read_misses`, `total_tb_misses` into
    /// `tb_miss_d`, `total_interrupts` into `hw_interrupts`) and sets
    /// `delta.cycles` to the interval length. Every exported column is
    /// preserved: re-exporting the parsed series reproduces the CSV text
    /// byte for byte (the derived `cpi` and `interrupt_headway` columns
    /// recompute identically from the preserved fields).
    ///
    /// # Errors
    /// Returns a message naming the offending line when the header or a
    /// row does not match the export format.
    pub fn from_csv(text: &str) -> Result<TimeSeries, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let expected = TimeSeries::default().to_csv();
        if header != expected.trim_end() {
            return Err(format!("unrecognized CSV header: '{header}'"));
        }
        let mut series = TimeSeries::default();
        for (i, line) in lines.enumerate() {
            let row = i + 2; // 1-based, after the header
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 13 {
                return Err(format!(
                    "line {row}: expected 13 fields, found {}",
                    fields.len()
                ));
            }
            let int = |col: usize| -> Result<u64, String> {
                fields[col]
                    .parse()
                    .map_err(|_| format!("line {row}: bad integer '{}'", fields[col]))
            };
            let start_cycle = int(0)?;
            let end_cycle = int(1)?;
            if end_cycle < start_cycle {
                return Err(format!("line {row}: end_cycle precedes start_cycle"));
            }
            if int(2)? != end_cycle - start_cycle {
                return Err(format!("line {row}: cycles column disagrees with bounds"));
            }
            let mut delta = Measurement {
                cycles: end_cycle - start_cycle,
                ..Measurement::default()
            };
            delta.cpu_stats.instructions = int(3)?;
            delta.mem_stats.read_stall_cycles = int(5)?;
            delta.mem_stats.write_stall_cycles = int(6)?;
            delta.mem_stats.i_reads = int(7)?;
            delta.mem_stats.d_read_misses = int(8)?;
            delta.mem_stats.tb_miss_d = int(9)?;
            delta.cpu_stats.hw_interrupts = int(10)?;
            delta.cpu_stats.context_switches = int(11)?;
            // Columns 4 (cpi) and 12 (interrupt_headway) are derived; they
            // are regenerated on export rather than stored.
            series.samples.push(IntervalSample {
                start_cycle,
                end_cycle,
                delta,
            });
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start: u64, end: u64, instructions: u64) -> IntervalSample {
        let mut delta = Measurement {
            cycles: end - start,
            ..Measurement::default()
        };
        delta.cpu_stats.instructions = instructions;
        delta.mem_stats.read_stall_cycles = 3;
        IntervalSample {
            start_cycle: start,
            end_cycle: end,
            delta,
        }
    }

    #[test]
    fn merged_sums_intervals() {
        let ts = TimeSeries {
            samples: vec![sample(0, 100, 10), sample(100, 250, 20)],
        };
        let m = ts.merged();
        assert_eq!(m.cycles, 250);
        assert_eq!(m.instructions(), 30);
        assert_eq!(m.mem_stats.read_stall_cycles, 6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let ts = TimeSeries {
            samples: vec![sample(0, 100, 10)],
        };
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("start_cycle,end_cycle,"));
        assert!(lines[1].starts_with("0,100,100,10,10.0000,3,0,"));
    }

    #[test]
    fn csv_roundtrips_exactly() {
        let ts = TimeSeries {
            samples: vec![sample(0, 100, 10), sample(100, 250, 20)],
        };
        let csv = ts.to_csv();
        let parsed = TimeSeries::from_csv(&csv).unwrap();
        assert_eq!(parsed.to_csv(), csv);
        assert_eq!(parsed.merged().instructions(), 30);
        assert!(TimeSeries::from_csv("bogus header\n1,2\n").is_err());
        assert!(TimeSeries::from_csv("").is_err());
    }

    #[test]
    fn splice_rebases_and_roundtrips() {
        let a = TimeSeries {
            samples: vec![sample(0, 100, 10), sample(100, 250, 20)],
        };
        let b = TimeSeries {
            samples: vec![sample(0, 40, 4), sample(40, 90, 6)],
        };
        let mut spliced = TimeSeries::default();
        let off = spliced.splice(0, &a);
        assert_eq!(off, 250);
        assert_eq!(spliced.to_csv(), a.to_csv(), "identity splice at offset 0");
        let end = spliced.splice(off, &b);
        assert_eq!(end, 340);
        assert_eq!(spliced.end_cycle(), 340);
        // Contiguous timeline across the seam.
        for w in spliced.samples.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle);
        }
        // Conservation: the spliced series merges to the sum of the parts.
        let mut want = a.merged();
        want.merge(&b.merged());
        assert_eq!(spliced.merged(), want);
        // Round trip: rebasing the tail back by the splice offset
        // reproduces `b` exactly.
        let mut back = TimeSeries::default();
        for s in &spliced.samples[a.len()..] {
            back.samples.push(IntervalSample {
                start_cycle: s.start_cycle - off,
                end_cycle: s.end_cycle - off,
                delta: s.delta.clone(),
            });
        }
        assert_eq!(back.to_csv(), b.to_csv());
        assert_eq!(back.merged(), b.merged());
    }

    #[test]
    fn splice_allows_gaps_but_not_overlap() {
        let a = TimeSeries {
            samples: vec![sample(0, 100, 10)],
        };
        let mut ts = TimeSeries::default();
        ts.splice(0, &a);
        // A gap (unsampled tail cycles) is legal and preserved.
        let end = ts.splice(130, &a);
        assert_eq!(end, 230);
        assert_eq!(ts.samples[1].start_cycle, 130);
        let overlap = std::panic::catch_unwind(move || ts.splice(50, &a));
        assert!(overlap.is_err(), "overlapping splice must panic");
    }

    #[test]
    fn headway() {
        let mut s = sample(0, 1000, 10);
        assert_eq!(s.interrupt_headway(), 0.0);
        s.delta.cpu_stats.hw_interrupts = 4;
        assert!((s.interrupt_headway() - 250.0).abs() < 1e-9);
    }
}
