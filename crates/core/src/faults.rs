//! Deterministic fault injection.
//!
//! Emer & Clark measured a *live* machine, so their histograms include the
//! rare paths — machine checks, interrupt bursts, TB invalidations — at
//! whatever rate the machine happened to produce them. A reproduction can
//! do better: schedule those events *on demand*, from a seeded plan, and
//! prove the conservation invariants still hold. Every injected fault is
//! routed through an already dually-instrumented mechanism (interrupt
//! dispatch microcode, TB-miss service, the code-watch epoch), so the
//! eight `vax_analysis::validate` cross-checks pass under any plan by
//! construction.
//!
//! A [`FaultPlan`] is generated from `(fault_seed, workload, shard)` via the
//! same `rand::SeedStream` splitting as the workload seeds, so plans are
//! decorrelated across grid cells yet fully reproducible: the same seed
//! always yields the same event schedule, and exports stay byte-identical
//! across runs and job counts.

use rand::{Rng, SeedStream};

/// One injectable fault class (the CLI `--fault-classes` vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// SBI/memory parity error: latched in the memory system, delivered as
    /// a machine check (SCB slot 3, IPL 30).
    Parity,
    /// TB invalidation storm: bursts of full-TB invalidates (as a guest
    /// TBIA would do), each followed by a decode-cache flush.
    TbStorm,
    /// Hardware interrupt burst: external-device interrupts (SCB slot 4,
    /// IPL 21) at short headways.
    HwBurst,
    /// Software interrupt burst: SIRR-style requests at random levels.
    SwBurst,
    /// Self-modifying-code burst: DMA-style byte stores over current code,
    /// invalidating cached decodes without changing behaviour.
    Smc,
}

impl FaultClass {
    /// Every class, in the canonical (generation) order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Parity,
        FaultClass::TbStorm,
        FaultClass::HwBurst,
        FaultClass::SwBurst,
        FaultClass::Smc,
    ];

    /// The CLI/manifest name of this class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Parity => "parity",
            FaultClass::TbStorm => "tb-storm",
            FaultClass::HwBurst => "hw-burst",
            FaultClass::SwBurst => "sw-burst",
            FaultClass::Smc => "smc",
        }
    }

    /// Parse one class name.
    pub fn parse(s: &str) -> Result<FaultClass, String> {
        FaultClass::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
                format!(
                    "unknown fault class '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Parse a comma-separated class list (`parity,tb-storm`). Duplicates are
/// collapsed; order is normalized to the canonical order so the manifest
/// records a canonical form.
pub fn parse_classes(csv: &str) -> Result<Vec<FaultClass>, String> {
    let mut picked = [false; 5];
    for part in csv.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err("empty fault class in list".to_string());
        }
        let c = FaultClass::parse(part)?;
        picked[FaultClass::ALL.iter().position(|x| *x == c).unwrap()] = true;
    }
    Ok(FaultClass::ALL
        .into_iter()
        .zip(picked)
        .filter_map(|(c, on)| on.then_some(c))
        .collect())
}

/// A concrete fault to apply between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Latch a parity fault (machine check on the next step).
    Parity,
    /// Invalidate the whole TB and flush the decode cache.
    TbInvalidate,
    /// Post an external-device hardware interrupt.
    DeviceInterrupt,
    /// Request a software interrupt at this level (1..=15).
    SoftRequest(u8),
    /// Rewrite a code byte at the current PC (same value, epoch bump).
    SmcWrite,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Retired-instruction count (within the measured interval) at or after
    /// which the fault fires.
    pub at_instruction: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A seeded, sorted schedule of faults for one (workload, shard) cell.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generate the plan for one grid cell. `instructions` is the measured
    /// instruction budget of the cell; event density scales with it so
    /// short smoke runs still exercise every enabled class at least once.
    pub fn generate(
        fault_seed: u64,
        workload_index: usize,
        shard: usize,
        instructions: u64,
        classes: &[FaultClass],
    ) -> FaultPlan {
        let mut rng = SeedStream::new(fault_seed)
            .stream(workload_index as u64)
            .stream(shard as u64)
            .rng();
        let span = instructions.max(1);
        let mut events = Vec::new();
        // Canonical class order keeps the rng draw sequence (and thus the
        // schedule) independent of the order classes were named on the CLI.
        for class in FaultClass::ALL {
            if !classes.contains(&class) {
                continue;
            }
            match class {
                FaultClass::Parity => {
                    let n = (span / 100_000).max(1);
                    for _ in 0..n {
                        events.push(FaultEvent {
                            at_instruction: rng.gen_range(0..span),
                            kind: FaultKind::Parity,
                        });
                    }
                }
                FaultClass::TbStorm => {
                    let bursts = (span / 150_000).max(1);
                    for _ in 0..bursts {
                        let mut at = rng.gen_range(0..span);
                        let len = rng.gen_range(4..=12);
                        for _ in 0..len {
                            events.push(FaultEvent {
                                at_instruction: at,
                                kind: FaultKind::TbInvalidate,
                            });
                            at = at.saturating_add(rng.gen_range(50..=200));
                        }
                    }
                }
                FaultClass::HwBurst => {
                    let bursts = (span / 120_000).max(1);
                    for _ in 0..bursts {
                        let mut at = rng.gen_range(0..span);
                        let len = rng.gen_range(3..=8);
                        for _ in 0..len {
                            events.push(FaultEvent {
                                at_instruction: at,
                                kind: FaultKind::DeviceInterrupt,
                            });
                            at = at.saturating_add(rng.gen_range(20..=100));
                        }
                    }
                }
                FaultClass::SwBurst => {
                    let bursts = (span / 120_000).max(1);
                    for _ in 0..bursts {
                        let mut at = rng.gen_range(0..span);
                        let len = rng.gen_range(2..=6);
                        for _ in 0..len {
                            events.push(FaultEvent {
                                at_instruction: at,
                                kind: FaultKind::SoftRequest(rng.gen_range(1..=15u8)),
                            });
                            at = at.saturating_add(rng.gen_range(30..=150));
                        }
                    }
                }
                FaultClass::Smc => {
                    let bursts = (span / 150_000).max(1);
                    for _ in 0..bursts {
                        let mut at = rng.gen_range(0..span);
                        let len = rng.gen_range(2..=5);
                        for _ in 0..len {
                            events.push(FaultEvent {
                                at_instruction: at,
                                kind: FaultKind::SmcWrite,
                            });
                            at = at.saturating_add(rng.gen_range(10..=50));
                        }
                    }
                }
            }
        }
        // Stable sort: simultaneous events fire in canonical class order.
        events.sort_by_key(|e| e.at_instruction);
        FaultPlan { events, next: 0 }
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether every event has been consumed (or none were scheduled).
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// The next unconsumed event, if any.
    pub fn peek(&self) -> Option<FaultEvent> {
        self.events.get(self.next).copied()
    }

    /// Consume the next event.
    pub fn advance(&mut self) {
        self.next += 1;
    }
}

/// Panic payload thrown by the cooperative watchdog when a shard exceeds
/// its deadline ([`crate::System::set_deadline`]). The pool supervisor
/// downcasts panic payloads to this type to classify timeouts.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogExpired;

impl std::fmt::Display for WatchdogExpired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard watchdog deadline expired")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(7, 2, 3, 50_000, &FaultClass::ALL);
        let b = FaultPlan::generate(7, 2, 3, 50_000, &FaultClass::ALL);
        assert_eq!(a.events, b.events);
        assert!(!a.is_empty());
    }

    #[test]
    fn cells_are_decorrelated() {
        let a = FaultPlan::generate(7, 0, 0, 50_000, &FaultClass::ALL);
        let b = FaultPlan::generate(7, 0, 1, 50_000, &FaultClass::ALL);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn schedule_is_sorted_and_class_filter_applies() {
        let plan = FaultPlan::generate(11, 0, 0, 300_000, &[FaultClass::Parity]);
        assert!(plan
            .events
            .windows(2)
            .all(|w| w[0].at_instruction <= w[1].at_instruction));
        assert!(plan.events.iter().all(|e| e.kind == FaultKind::Parity));
        assert!(plan.len() >= 3);
    }

    #[test]
    fn class_names_roundtrip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::parse(c.name()).unwrap(), c);
        }
        assert!(FaultClass::parse("bogus").is_err());
    }

    #[test]
    fn class_list_parses_and_normalizes() {
        let v = parse_classes("smc, parity,smc").unwrap();
        assert_eq!(v, vec![FaultClass::Parity, FaultClass::Smc]);
        assert!(parse_classes("parity,,smc").is_err());
        assert!(parse_classes("nope").is_err());
    }
}
