//! The VMS-lite kernel, generated as real VAX machine code.
//!
//! The paper measured live VMS timesharing: its per-instruction statistics
//! *include* operating-system activity (one of the UPC method's selling
//! points). Our kernel reproduces the activity classes that matter to the
//! tables: periodic hardware (interval timer) interrupts, software
//! interrupt requests and deliveries, round-robin context switching through
//! SVPCTX/LDPCTX (which flushes the TB process half), and CHMK system
//! services exercising queue instructions and privileged-register access.

use vax_arch::{Opcode, Reg};
use vax_asm::{Asm, Image, Operand};

use Operand::{Imm, Label, Lit, Reg as R};

/// Kernel behaviour knobs, calibrated against paper Table 7.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Context switch every N timer ticks.
    pub switch_every_ticks: u32,
    /// Request a software interrupt every N timer ticks.
    pub softint_every_ticks: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        // With the default 9000-cycle timer (≈850 instructions at the
        // paper's 10.6 CPI): hardware+software interrupt headway ≈640
        // instructions, software-interrupt request headway ≈2550, context
        // switch headway ≈6400 — Table 7's 637 / 2539 / 6418.
        KernelConfig {
            switch_every_ticks: 8,
            softint_every_ticks: 3,
        }
    }
}

/// IPR numbers used by the kernel code (must match `vax_cpu::ipr`).
const PR_PCBB: u8 = 16;
const PR_IPL: u8 = 18;
const PR_SIRR: u8 = 20;

/// The CHMK service codes the kernel implements.
pub mod services {
    /// No-op service (fast system-call path).
    pub const NULL: u32 = 0;
    /// Queue service: INSQUE/REMQUE/PROBER on a kernel queue.
    pub const QUEUE: u32 = 1;
    /// Voluntary reschedule.
    pub const YIELD: u32 = 2;
}

/// Labels of kernel entry points, resolved from the assembled image.
#[derive(Debug, Clone)]
pub struct KernelEntries {
    /// Boot sequence (initial PC).
    pub boot: u32,
    /// Interval-timer interrupt service routine (SCB slot 1).
    pub timer_isr: u32,
    /// Software-interrupt service routine (SCB slot 2).
    pub softint_isr: u32,
    /// CHMK dispatcher (SCB slot 0).
    pub chmk_handler: u32,
    /// Machine-check service routine (SCB slot 3).
    pub mchk_isr: u32,
    /// External-device interrupt service routine (SCB slot 4).
    pub device_isr: u32,
}

/// Generate the kernel image at `origin` (a system virtual address) for
/// `pcb_vas.len()` processes whose PCBs live at the given system addresses.
///
/// # Panics
/// Panics if assembly fails — the kernel is generated code, so a failure is
/// a bug, not an input error.
pub fn build(origin: u32, pcb_vas: &[u32], config: KernelConfig) -> (Image, KernelEntries) {
    assert!(!pcb_vas.is_empty(), "kernel needs at least one process");
    let mut a = Asm::new(origin);

    // ---- boot: load the first process context and drop to user mode ----
    a.label("boot");
    a.insn(
        Opcode::Movl,
        &[Label("pcbtab".into()), R(Reg::new(0))],
        None,
    );
    a.insn(Opcode::Mtpr, &[R(Reg::new(0)), Lit(PR_PCBB)], None);
    a.insn(Opcode::Ldpctx, &[], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- interval timer ISR ----
    a.label("timer_isr");
    a.insn(Opcode::Pushr, &[Lit(0b11)], None); // save R0, R1
    a.insn(Opcode::Incl, &[Label("tick_count".into())], None);
    // Software-interrupt request countdown.
    a.insn(Opcode::Decl, &[Label("softint_ctr".into())], None);
    a.insn(Opcode::Bneq, &[], Some("no_soft"));
    a.insn(
        Opcode::Movl,
        &[Imm(config.softint_every_ticks), Label("softint_ctr".into())],
        None,
    );
    a.insn(Opcode::Mtpr, &[Lit(3), Lit(PR_SIRR)], None);
    a.label("no_soft");
    // Context-switch countdown.
    a.insn(Opcode::Decl, &[Label("switch_ctr".into())], None);
    a.insn(Opcode::Bneq, &[], Some("no_switch"));
    a.insn(
        Opcode::Movl,
        &[Imm(config.switch_every_ticks), Label("switch_ctr".into())],
        None,
    );
    a.insn(Opcode::Popr, &[Lit(0b11)], None);
    a.insn(Opcode::Svpctx, &[], None);
    a.insn(Opcode::Brb, &[], Some("resched"));
    a.label("no_switch");
    a.insn(Opcode::Popr, &[Lit(0b11)], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- reschedule: pick the next process (round robin) ----
    a.label("resched");
    a.insn(
        Opcode::Movl,
        &[Label("cur_proc".into()), R(Reg::new(1))],
        None,
    );
    a.insn(Opcode::Incl, &[R(Reg::new(1))], None);
    a.insn(Opcode::Cmpl, &[R(Reg::new(1)), Label("nproc".into())], None);
    a.insn(Opcode::Blss, &[], Some("rs_ok"));
    a.insn(Opcode::Clrl, &[R(Reg::new(1))], None);
    a.label("rs_ok");
    a.insn(
        Opcode::Movl,
        &[R(Reg::new(1)), Label("cur_proc".into())],
        None,
    );
    a.insn(
        Opcode::Movl,
        &[
            Operand::Indexed(Box::new(Label("pcbtab".into())), Reg::new(1)),
            R(Reg::new(0)),
        ],
        None,
    );
    a.insn(Opcode::Mtpr, &[R(Reg::new(0)), Lit(PR_PCBB)], None);
    a.insn(Opcode::Ldpctx, &[], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- software interrupt ISR: small bookkeeping ----
    a.label("softint_isr");
    a.insn(Opcode::Pushr, &[Lit(0b11)], None);
    a.insn(
        Opcode::Movl,
        &[Label("soft_work".into()), R(Reg::new(0))],
        None,
    );
    a.insn(Opcode::Addl2, &[Lit(1), R(Reg::new(0))], None);
    a.insn(
        Opcode::Movl,
        &[R(Reg::new(0)), Label("soft_work".into())],
        None,
    );
    a.insn(Opcode::Bicl2, &[Lit(0), R(Reg::new(1))], None);
    a.insn(Opcode::Popr, &[Lit(0b11)], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- CHMK dispatcher ----
    // Stack on entry: [code][PC][PSL], lowest first.
    a.label("chmk_handler");
    a.insn(
        Opcode::Movl,
        &[Operand::AutoInc(Reg::SP), R(Reg::new(0))],
        None,
    );
    a.insn(Opcode::Caseb, &[R(Reg::new(0)), Lit(0), Lit(2)], None);
    a.case_table(&["svc_null", "svc_queue", "svc_yield"]);
    // Out-of-range service code: return.
    a.insn(Opcode::Rei, &[], None);

    a.label("svc_null");
    a.insn(Opcode::Rei, &[], None);

    a.label("svc_queue");
    a.insn(Opcode::Pushr, &[Lit(0b1110)], None); // R1-R3
    a.insn(Opcode::Mtpr, &[Lit(8), Lit(PR_IPL)], None); // block softints
    a.insn(
        Opcode::Insque,
        &[Label("qnode".into()), Label("qhead".into())],
        None,
    );
    a.insn(
        Opcode::Remque,
        &[Label("qnode".into()), R(Reg::new(3))],
        None,
    );
    a.insn(
        Opcode::Prober,
        &[Lit(0), Lit(4), Label("qhead".into())],
        None,
    );
    a.insn(Opcode::Mtpr, &[Lit(0), Lit(PR_IPL)], None);
    a.insn(Opcode::Popr, &[Lit(0b1110)], None);
    a.insn(Opcode::Rei, &[], None);

    a.label("svc_yield");
    a.insn(Opcode::Svpctx, &[], None);
    a.insn(Opcode::Brb, &[], Some("resched"));

    // ---- machine-check ISR: log the error summary and dismiss ----
    // (Placed after all short branches: these ISRs are entered only
    // through the SCB, so their position cannot stretch a BRB.)
    a.label("mchk_isr");
    a.insn(Opcode::Pushr, &[Lit(0b11)], None);
    a.insn(Opcode::Incl, &[Label("mchk_count".into())], None);
    a.insn(Opcode::Popr, &[Lit(0b11)], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- external-device ISR: acknowledge and dismiss ----
    a.label("device_isr");
    a.insn(Opcode::Pushr, &[Lit(0b11)], None);
    a.insn(Opcode::Incl, &[Label("device_count".into())], None);
    a.insn(Opcode::Popr, &[Lit(0b11)], None);
    a.insn(Opcode::Rei, &[], None);

    // ---- kernel data ----
    a.align(4);
    a.label("tick_count");
    a.long(0);
    a.label("softint_ctr");
    a.long(config.softint_every_ticks);
    a.label("switch_ctr");
    a.long(config.switch_every_ticks);
    a.label("cur_proc");
    a.long(0);
    a.label("soft_work");
    a.long(0);
    a.label("mchk_count");
    a.long(0);
    a.label("device_count");
    a.long(0);
    a.label("nproc");
    a.long(pcb_vas.len() as u32);
    // Self-linked queue head; patched after assembly (the label's own
    // address is only known now).
    a.label("qhead");
    a.long(0);
    a.long(0);
    a.label("qnode");
    a.long(0);
    a.long(0);
    a.label("pcbtab");
    for &pcb in pcb_vas {
        a.long(pcb);
    }

    let mut image = a.assemble().expect("kernel assembly failed");
    // Patch qhead to be a self-linked (empty) queue.
    let qhead = image.addr_of("qhead");
    let off = (qhead - image.origin) as usize;
    image.bytes[off..off + 4].copy_from_slice(&qhead.to_le_bytes());
    image.bytes[off + 4..off + 8].copy_from_slice(&qhead.to_le_bytes());

    let entries = KernelEntries {
        boot: image.addr_of("boot"),
        timer_isr: image.addr_of("timer_isr"),
        softint_isr: image.addr_of("softint_isr"),
        chmk_handler: image.addr_of("chmk_handler"),
        mchk_isr: image.addr_of("mchk_isr"),
        device_isr: image.addr_of("device_isr"),
    };
    (image, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_assembles() {
        let (image, entries) = build(
            0x8000_0200,
            &[0x8000_1000, 0x8000_1200],
            KernelConfig::default(),
        );
        assert_eq!(entries.boot, 0x8000_0200);
        assert!(entries.timer_isr > entries.boot);
        assert!(image.bytes.len() > 100);
        // qhead is self-linked.
        let off = (image.addr_of("qhead") - image.origin) as usize;
        let flink = u32::from_le_bytes(image.bytes[off..off + 4].try_into().unwrap());
        assert_eq!(flink, image.addr_of("qhead"));
    }

    #[test]
    fn pcb_table_contents() {
        let pcbs = [0x8000_1000, 0x8000_1200, 0x8000_1400];
        let (image, _) = build(0x8000_0200, &pcbs, KernelConfig::default());
        let off = (image.addr_of("pcbtab") - image.origin) as usize;
        for (i, &pcb) in pcbs.iter().enumerate() {
            let v = u32::from_le_bytes(
                image.bytes[off + 4 * i..off + 4 * i + 4]
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(v, pcb);
        }
    }
}
