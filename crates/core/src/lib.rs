//! # vax780
//!
//! The full simulated VAX-11/780 system: CPU + memory subsystem + µPC
//! histogram monitor, plus a "VMS-lite" kernel written in generated VAX
//! machine code (timer interrupts, software interrupts, round-robin
//! scheduling via SVPCTX/LDPCTX, and CHMK system services), and an
//! experiment runner that mirrors the paper's measurement procedure
//! (warm up, clear counters, start the board, run, stop, read).
//!
//! ```no_run
//! use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
//! use vax_asm::{Asm, Operand};
//! use vax_arch::{Opcode, Reg};
//!
//! // A process that spins decrementing R2.
//! let mut asm = Asm::new(0x200);
//! asm.label("entry");
//! asm.insn(Opcode::Movl, &[Operand::Imm(1_000_000), Operand::Reg(Reg::new(2))], None);
//! asm.label("loop");
//! asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
//! asm.insn(Opcode::Brb, &[], Some("loop"));
//! let image = asm.assemble().unwrap();
//!
//! let mut builder = SystemBuilder::new(SystemConfig::default());
//! builder.add_process(ProcessSpec::new(image, "entry"));
//! let mut system = builder.build();
//! system.run_instructions(10_000);
//! ```

pub mod faults;
pub mod kernel;
pub mod measurement;
pub mod merge;
pub mod sampler;
pub mod system;

pub use faults::{parse_classes, FaultClass, FaultEvent, FaultKind, FaultPlan, WatchdogExpired};
pub use kernel::KernelConfig;
pub use measurement::Measurement;
pub use merge::{merge_ordered, Mergeable};
pub use sampler::{IntervalSample, TimeSeries};
pub use system::{BootImage, ProcessSpec, System, SystemBuilder, SystemConfig};
pub use vax_cpu::CpuConfig;
