//! Directed-microbenchmark emission: one steady-state probe loop per
//! opcode × addressing-mode grid cell.
//!
//! A probe loop executes `reps` copies of a single *probed* instruction
//! inside a strictly periodic scaffold (register re-initialization plus an
//! unconditional `BRW` back edge), so that any measurement window of an
//! exact multiple of the loop period sums a whole number of iterations —
//! per-instruction cost falls out of the delta against an identical
//! scaffold with zero probe copies. The probed instruction carries the
//! grid cell's addressing mode on one operand; every other operand gets a
//! fixed safe default (small literal for reads, a scratch register for
//! writes, a pointer into the image's data area for addresses).
//!
//! The image embeds everything the probed modes can reach:
//!
//! ```text
//! origin+0x000  "src"      512 B of the longword 0x0000_0002 — the target
//!                          of every probed memory operand. The pattern is
//!                          chosen so any interpretation is safe: small as
//!                          a string/decimal length, nonzero as an integer
//!                          divisor, a clean zero as a float.
//! origin+0x200  "ptr"      32 longwords, each the address of "src" — the
//!                          pointer table the deferred modes bounce through.
//! origin+0x400  (pad)
//! origin+0x600  "scratch"  1 KiB of zeros — CHARACTER/DECIMAL destination
//!                          buffers and translate tables land here.
//! origin+0xA00  stack strip; SP is re-pointed at its midpoint every
//!                          iteration so PUSHR/POPR probes cannot drift.
//! origin+0xB00  "loop"     the scaffold and probe bodies.
//! ```
//!
//! Not every grid cell is measurable: branches would escape the loop,
//! SYSTEM-group opcodes trap or require privilege, and literal/immediate
//! specifiers exist only for read access. Those cells carry a
//! [`SkipReason`] instead of a probe, and `reproduce characterize --list`
//! prints the full grid with those reasons.

use crate::builder::{Asm, AsmError, Image, Operand};
use vax_arch::opcode::OPCODE_TABLE;
use vax_arch::{AccessType, AddressingMode, BranchKind, Opcode, OpcodeGroup, OperandKind, Reg};

/// Base register carrying the probed operand's address (or value, in
/// register mode). Re-initialized every iteration.
pub const BASE_REG: Reg = Reg::new(6);
/// Register holding the scratch-area address; the default for address and
/// bit-field-base operands. Re-initialized every iteration.
pub const ADDR_REG: Reg = Reg::new(7);
/// Default destination register for write/modify operands (quad writes
/// also touch R5).
pub const DEST_REG: Reg = Reg::new(4);

/// Probe image origin (page 0 stays unmapped).
pub const ORIGIN: u32 = 0x200;
/// Address of the `src` data region.
pub const SRC_ADDR: u32 = ORIGIN;
/// Bytes in the `src` region.
pub const SRC_LEN: u32 = 0x200;
/// The longword pattern filling `src` (see module docs for why 2).
pub const SRC_FILL: u32 = 2;
/// Address of the pointer table.
pub const PTR_ADDR: u32 = ORIGIN + 0x200;
/// Entries in the pointer table (bounds the autoincrement-deferred walk).
pub const PTR_ENTRIES: u32 = 32;
/// Address of the scratch region.
pub const SCRATCH_ADDR: u32 = ORIGIN + 0x400;
/// SP re-initialization value: the midpoint of the stack strip, so pushes
/// and pops both stay inside it.
pub const SP_INIT: u32 = ORIGIN + 0x880;
/// Scaffold instructions per iteration (three MOVLs + the BRW back edge).
pub const SCAFFOLD_INSNS: u32 = 4;
/// Displacements forcing each displacement width (byte/word/long); the
/// base register is biased by the same amount so the effective address
/// still lands on the data region.
pub const BYTE_DISP: i32 = 16;
/// Displacement forcing word width.
pub const WORD_DISP: i32 = 300;
/// Displacement forcing long width.
pub const LONG_DISP: i32 = 70_000;
/// Upper bound on probe copies per iteration: keeps every autoincrement /
/// autodecrement walk inside its region (16 reps × 8-byte quad = 128 B).
pub const MAX_REPS: u32 = 16;

/// Why a grid cell cannot be probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The opcode branches, calls, jumps or returns — it would escape the
    /// measurement loop.
    ChangesPc,
    /// SYSTEM-group opcode: privileged, trapping, or context-changing.
    SystemGroup,
    /// The opcode has no operand specifiers to carry the mode.
    NoSpecifiers,
    /// Literal/immediate specifiers exist only for read access and the
    /// opcode has no read operand.
    ReadOnlyMode,
}

impl SkipReason {
    /// Human-readable reason for the `--list` grid and the skip table.
    pub const fn describe(self) -> &'static str {
        match self {
            SkipReason::ChangesPc => "changes PC (branch/call/jump)",
            SkipReason::SystemGroup => "SYSTEM group (privileged or trapping)",
            SkipReason::NoSpecifiers => "no operand specifiers",
            SkipReason::ReadOnlyMode => "literal/immediate is read-only; no read operand",
        }
    }
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// One measurable grid cell: the probed opcode, the addressing mode under
/// test, and which specifier position carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTarget {
    /// Probed opcode.
    pub opcode: Opcode,
    /// Addressing mode under test.
    pub mode: AddressingMode,
    /// Specifier position carrying the probed mode.
    pub operand: usize,
}

/// One cell of the full grid: measurable or skipped.
#[derive(Debug, Clone, Copy)]
pub struct GridCell {
    /// The opcode row.
    pub opcode: Opcode,
    /// The addressing-mode column.
    pub mode: AddressingMode,
    /// The probe, or why there is none.
    pub target: Result<ProbeTarget, SkipReason>,
}

/// Decide whether `(opcode, mode)` is probeable and, if so, which operand
/// carries the mode: literal/immediate go on the first read operand, every
/// other mode on the first specifier.
pub fn probe_target(opcode: Opcode, mode: AddressingMode) -> Result<ProbeTarget, SkipReason> {
    if opcode.branch_kind() != BranchKind::None {
        return Err(SkipReason::ChangesPc);
    }
    if opcode.group() == OpcodeGroup::System {
        return Err(SkipReason::SystemGroup);
    }
    if opcode.specifier_count() == 0 {
        return Err(SkipReason::NoSpecifiers);
    }
    let operand = match mode {
        AddressingMode::Literal | AddressingMode::Immediate => opcode
            .operands()
            .iter()
            .position(|k| matches!(k, OperandKind::Spec(AccessType::Read, _)))
            .ok_or(SkipReason::ReadOnlyMode)?,
        _ => 0,
    };
    Ok(ProbeTarget {
        opcode,
        mode,
        operand,
    })
}

/// The full opcode × addressing-mode grid, in `OPCODE_TABLE` ×
/// [`AddressingMode::ALL`] order.
pub fn probe_grid() -> Vec<GridCell> {
    let mut grid = Vec::with_capacity(OPCODE_TABLE.len() * AddressingMode::ALL.len());
    for info in OPCODE_TABLE {
        for &mode in &AddressingMode::ALL {
            grid.push(GridCell {
                opcode: info.opcode,
                mode,
                target: probe_target(info.opcode, mode),
            });
        }
    }
    grid
}

/// Stable machine-readable key for a mode (JSON fields, `--modes` values).
pub const fn mode_key(mode: AddressingMode) -> &'static str {
    match mode {
        AddressingMode::Literal => "literal",
        AddressingMode::Register => "register",
        AddressingMode::RegisterDeferred => "register_deferred",
        AddressingMode::Autodecrement => "autodecrement",
        AddressingMode::Autoincrement => "autoincrement",
        AddressingMode::AutoincrementDeferred => "autoincrement_deferred",
        AddressingMode::ByteDisp => "byte_disp",
        AddressingMode::ByteDispDeferred => "byte_disp_deferred",
        AddressingMode::WordDisp => "word_disp",
        AddressingMode::WordDispDeferred => "word_disp_deferred",
        AddressingMode::LongDisp => "long_disp",
        AddressingMode::LongDispDeferred => "long_disp_deferred",
        AddressingMode::Immediate => "immediate",
        AddressingMode::Absolute => "absolute",
        AddressingMode::PcRelative => "pc_relative",
        AddressingMode::PcRelativeDeferred => "pc_relative_deferred",
    }
}

/// Inverse of [`mode_key`].
pub fn mode_from_key(key: &str) -> Option<AddressingMode> {
    AddressingMode::ALL
        .iter()
        .copied()
        .find(|&m| mode_key(m) == key)
}

/// The probed instruction's operand list: the probed mode at
/// `target.operand`, safe defaults everywhere else.
pub fn probe_operands(target: &ProbeTarget) -> Vec<Operand> {
    let mut ops = Vec::with_capacity(target.opcode.specifier_count());
    for (spec_i, kind) in target.opcode.operands().iter().enumerate() {
        let OperandKind::Spec(access, _) = kind else {
            unreachable!("branch opcodes are never probed");
        };
        let op = if spec_i == target.operand {
            probed_operand(target.mode)
        } else {
            default_operand(*access)
        };
        ops.push(op);
    }
    ops
}

/// The operand expression carrying the probed mode.
fn probed_operand(mode: AddressingMode) -> Operand {
    match mode {
        AddressingMode::Literal => Operand::Lit(4),
        AddressingMode::Immediate => Operand::Imm(4),
        AddressingMode::Register => Operand::Reg(BASE_REG),
        AddressingMode::RegisterDeferred => Operand::Deferred(BASE_REG),
        AddressingMode::Autoincrement => Operand::AutoInc(BASE_REG),
        AddressingMode::Autodecrement => Operand::AutoDec(BASE_REG),
        AddressingMode::AutoincrementDeferred => Operand::AutoIncDef(BASE_REG),
        AddressingMode::ByteDisp => Operand::Disp(BYTE_DISP, BASE_REG),
        AddressingMode::WordDisp => Operand::Disp(WORD_DISP, BASE_REG),
        AddressingMode::LongDisp => Operand::Disp(LONG_DISP, BASE_REG),
        AddressingMode::ByteDispDeferred => Operand::DispDef(BYTE_DISP, BASE_REG),
        AddressingMode::WordDispDeferred => Operand::DispDef(WORD_DISP, BASE_REG),
        AddressingMode::LongDispDeferred => Operand::DispDef(LONG_DISP, BASE_REG),
        AddressingMode::Absolute => Operand::Abs(SRC_ADDR),
        AddressingMode::PcRelative => Operand::Label("src".to_string()),
        AddressingMode::PcRelativeDeferred => Operand::LabelDef("ptr".to_string()),
    }
}

/// Safe default for a non-probed operand.
fn default_operand(access: AccessType) -> Operand {
    match access {
        // Small nonzero scalar: a safe length, shift count, and divisor.
        AccessType::Read => Operand::Lit(4),
        AccessType::Write | AccessType::Modify => Operand::Reg(DEST_REG),
        // Register mode on an address operand yields the register's value
        // as the address; on a field base it names a register field.
        AccessType::Address | AccessType::Field => Operand::Reg(ADDR_REG),
    }
}

/// The per-iteration value loaded into [`BASE_REG`], chosen so the probed
/// operand's effective address lands on the data region — or, for register
/// mode on the length-interpreting groups, a small direct value.
pub fn base_value(target: &ProbeTarget) -> u32 {
    match target.mode {
        AddressingMode::Register => match target.opcode.group() {
            // Operand 0 of these groups is a length / position scalar;
            // a huge value would make the execute loop run away (or, for
            // register bit fields, fault).
            OpcodeGroup::Character | OpcodeGroup::Decimal | OpcodeGroup::Field => 4,
            _ => SRC_ADDR,
        },
        AddressingMode::RegisterDeferred | AddressingMode::Autoincrement => SRC_ADDR,
        // Walk downward but stay inside `src`.
        AddressingMode::Autodecrement => SRC_ADDR + MAX_REPS * 8,
        AddressingMode::AutoincrementDeferred => PTR_ADDR,
        AddressingMode::ByteDisp => SRC_ADDR.wrapping_sub(BYTE_DISP as u32),
        AddressingMode::WordDisp => SRC_ADDR.wrapping_sub(WORD_DISP as u32),
        AddressingMode::LongDisp => SRC_ADDR.wrapping_sub(LONG_DISP as u32),
        AddressingMode::ByteDispDeferred => PTR_ADDR.wrapping_sub(BYTE_DISP as u32),
        AddressingMode::WordDispDeferred => PTR_ADDR.wrapping_sub(WORD_DISP as u32),
        AddressingMode::LongDispDeferred => PTR_ADDR.wrapping_sub(LONG_DISP as u32),
        // Modes that do not involve the base register.
        AddressingMode::Literal
        | AddressingMode::Immediate
        | AddressingMode::Absolute
        | AddressingMode::PcRelative
        | AddressingMode::PcRelativeDeferred => SRC_ADDR,
    }
}

/// An assembled probe (or baseline) loop.
#[derive(Debug, Clone)]
pub struct ProbeLoop {
    /// The process image; execution starts at its `entry` label.
    pub image: Image,
    /// Probe copies per iteration (0 for the baseline loop).
    pub reps: u32,
    /// Instructions per iteration, scaffold included.
    pub period: u32,
    /// Code bytes per iteration (the I-stream footprint of one lap).
    pub loop_bytes: u32,
}

/// Assemble the probe loop for `target` with `reps` probe copies per
/// iteration, or the baseline loop (identical scaffold, no probes) when
/// `target` is `None`.
///
/// # Errors
/// Propagates assembler errors (none are expected for a valid target).
///
/// # Panics
/// Panics if `reps` is 0 with a target, exceeds [`MAX_REPS`], or a
/// baseline is requested with nonzero reps.
pub fn probe_loop(target: Option<&ProbeTarget>, reps: u32) -> Result<ProbeLoop, AsmError> {
    match target {
        Some(_) => assert!(
            (1..=MAX_REPS).contains(&reps),
            "reps must be in 1..={MAX_REPS}"
        ),
        None => assert_eq!(reps, 0, "baseline loop has no probe copies"),
    }
    let mut asm = Asm::new(ORIGIN);
    asm.label("src");
    for _ in 0..SRC_LEN / 4 {
        asm.long(SRC_FILL);
    }
    asm.label("ptr");
    for _ in 0..PTR_ENTRIES {
        asm.long(SRC_ADDR);
    }
    asm.block(SCRATCH_ADDR - (PTR_ADDR + PTR_ENTRIES * 4));
    asm.label("scratch");
    asm.block(0x400);
    // Stack strip: SP parks at its midpoint so pushes and pops both stay
    // inside the image.
    asm.block(SP_INIT - (SCRATCH_ADDR + 0x400));
    asm.label("sp");
    asm.block(0x80);
    asm.label("entry");
    asm.label("loop");
    let base = target.map_or(SRC_ADDR, base_value);
    asm.insn(
        Opcode::Movl,
        &[Operand::Imm(base), Operand::Reg(BASE_REG)],
        None,
    );
    asm.insn(
        Opcode::Movl,
        &[Operand::Imm(SCRATCH_ADDR), Operand::Reg(ADDR_REG)],
        None,
    );
    asm.insn(
        Opcode::Movl,
        &[Operand::Imm(SP_INIT), Operand::Reg(Reg::SP)],
        None,
    );
    if let Some(t) = target {
        let ops = probe_operands(t);
        for _ in 0..reps {
            asm.insn(t.opcode, &ops, None);
        }
    }
    asm.insn(Opcode::Brw, &[], Some("loop"));
    let image = asm.assemble()?;
    let loop_bytes = image.end() - image.addr_of("loop");
    Ok(ProbeLoop {
        image,
        reps,
        period: SCAFFOLD_INSNS + reps,
        loop_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::decode;

    #[test]
    fn grid_covers_every_cell_once() {
        let grid = probe_grid();
        assert_eq!(grid.len(), OPCODE_TABLE.len() * 16);
        let probeable = grid.iter().filter(|c| c.target.is_ok()).count();
        // Most of the table is probeable; every skip has a reason.
        assert!(probeable > 1000, "only {probeable} probeable cells");
        for cell in &grid {
            if let Err(r) = cell.target {
                assert!(!r.describe().is_empty());
            }
        }
    }

    #[test]
    fn branches_and_system_ops_are_skipped() {
        assert_eq!(
            probe_target(Opcode::Brb, AddressingMode::Register),
            Err(SkipReason::ChangesPc)
        );
        // CHMK both branches and is privileged; the PC check fires first.
        assert_eq!(
            probe_target(Opcode::Chmk, AddressingMode::Register),
            Err(SkipReason::ChangesPc)
        );
        assert_eq!(
            probe_target(Opcode::Halt, AddressingMode::Register),
            Err(SkipReason::SystemGroup)
        );
    }

    #[test]
    fn literal_goes_on_the_first_read_operand() {
        // MOVL [r, w]: literal probes operand 0.
        let t = probe_target(Opcode::Movl, AddressingMode::Literal).unwrap();
        assert_eq!(t.operand, 0);
        // CLRL [w]: no read operand — literal cell is skipped.
        assert_eq!(
            probe_target(Opcode::Clrl, AddressingMode::Literal),
            Err(SkipReason::ReadOnlyMode)
        );
        // But CLRL still probes writable modes on operand 0.
        let t = probe_target(Opcode::Clrl, AddressingMode::RegisterDeferred).unwrap();
        assert_eq!(t.operand, 0);
    }

    #[test]
    fn mode_keys_round_trip() {
        for &m in &AddressingMode::ALL {
            assert_eq!(mode_from_key(mode_key(m)), Some(m), "{m:?}");
        }
        assert_eq!(mode_from_key("frobnicate"), None);
    }

    #[test]
    fn probe_loop_layout_matches_constants() {
        let t = probe_target(Opcode::Addl2, AddressingMode::ByteDisp).unwrap();
        let p = probe_loop(Some(&t), 4).unwrap();
        assert_eq!(p.image.addr_of("src"), SRC_ADDR);
        assert_eq!(p.image.addr_of("ptr"), PTR_ADDR);
        assert_eq!(p.image.addr_of("scratch"), SCRATCH_ADDR);
        assert_eq!(p.image.addr_of("sp"), SP_INIT);
        assert_eq!(p.image.addr_of("entry"), p.image.addr_of("loop"));
        assert_eq!(p.period, SCAFFOLD_INSNS + 4);
        // The pointer table holds src addresses.
        let off = (PTR_ADDR - ORIGIN) as usize;
        let ptr0 = u32::from_le_bytes(p.image.bytes[off..off + 4].try_into().unwrap());
        assert_eq!(ptr0, SRC_ADDR);
    }

    #[test]
    fn baseline_loop_matches_scaffold() {
        let b = probe_loop(None, 0).unwrap();
        assert_eq!(b.period, SCAFFOLD_INSNS);
        // 3 MOVL #imm,Rn at 7 bytes each + BRW at 3 bytes.
        assert_eq!(b.loop_bytes, 24);
    }

    #[test]
    fn probed_instruction_decodes_back_to_its_mode() {
        let t = probe_target(Opcode::Movl, AddressingMode::PcRelativeDeferred).unwrap();
        let p = probe_loop(Some(&t), 1).unwrap();
        // Walk the loop: three scaffold MOVLs, then the probe.
        let start = (p.image.addr_of("loop") - ORIGIN) as usize;
        let mut at = start;
        for _ in 0..3 {
            let insn = decode(&p.image.bytes[at..]).unwrap();
            assert_eq!(insn.opcode, Opcode::Movl);
            at += insn.len as usize;
        }
        let probe = decode(&p.image.bytes[at..]).unwrap();
        assert_eq!(probe.opcode, Opcode::Movl);
        assert_eq!(probe.specifiers[0].mode, AddressingMode::PcRelativeDeferred);
        // The deferred displacement points at the pointer table.
        let pc_after = ORIGIN + at as u32 + 1 + 5;
        let ea = pc_after.wrapping_add(probe.specifiers[0].value as u32);
        assert_eq!(ea, PTR_ADDR);
    }

    #[test]
    #[should_panic(expected = "reps must be in")]
    fn zero_reps_probe_panics() {
        let t = probe_target(Opcode::Movl, AddressingMode::Register).unwrap();
        let _ = probe_loop(Some(&t), 0);
    }
}
