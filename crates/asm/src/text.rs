//! The text front end: a VAX MACRO-ish subset.
//!
//! ```text
//! ; comments run to end of line
//! start:  MOVL  #10, R2        ; immediate
//! loop:   ADDL2 #1, R3
//!         SOBGTR R2, loop      ; branch target is a label
//!         MOVL  4(R5), R0      ; displacement
//!         MOVL  @8(R5), R0     ; displacement deferred
//!         MOVL  (R1)+, -(SP)   ; autoincrement / autodecrement
//!         MOVL  (R1)[R3], R0   ; indexed
//!         MOVL  @#^X2000, R0   ; absolute
//!         MOVL  data, R0       ; PC-relative label reference
//!         HALT
//! data:   .long 123
//!         .byte 1, 2, 3
//!         .blkb 16
//!         .align 4
//! ```

use crate::builder::{Asm, AsmError, Image, Operand};
use std::fmt;
use vax_arch::{Opcode, Reg};

/// Text-assembly errors, with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Syntax error with description.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Error from the second (assembly) phase.
    Asm(AsmError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError::Asm(e)
    }
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(s: &str) -> Option<Reg> {
    let u = s.to_ascii_uppercase();
    match u.as_str() {
        "AP" => Some(Reg::AP),
        "FP" => Some(Reg::FP),
        "SP" => Some(Reg::SP),
        "PC" => Some(Reg::PC),
        _ => {
            let n = u.strip_prefix('R')?.parse::<u8>().ok()?;
            if n < 16 {
                Some(Reg::new(n))
            } else {
                None
            }
        }
    }
}

fn parse_number(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("^X").or_else(|| s.strip_prefix("^x")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(rest) = s.strip_prefix('-') {
        return parse_number(rest).map(|v| -v);
    }
    s.parse::<i64>().ok()
}

/// Parse one operand token.
fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err(err(line, "empty operand"));
    }
    // Indexed suffix [Rx].
    if let Some(open) = tok.rfind('[') {
        if let Some(rest) = tok[open..]
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
        {
            let ix =
                parse_reg(rest).ok_or_else(|| err(line, format!("bad index register `{rest}`")))?;
            let base = parse_operand(&tok[..open], line)?;
            return Ok(Operand::Indexed(Box::new(base), ix));
        }
    }
    // Immediate / literal.
    if let Some(rest) = tok.strip_prefix('#') {
        let v = parse_number(rest).ok_or_else(|| err(line, format!("bad immediate `{rest}`")))?;
        return Ok(if (0..64).contains(&v) {
            Operand::Lit(v as u8)
        } else {
            Operand::Imm(v as u32)
        });
    }
    // Absolute @#addr.
    if let Some(rest) = tok.strip_prefix("@#") {
        let v = parse_number(rest).ok_or_else(|| err(line, format!("bad address `{rest}`")))?;
        return Ok(Operand::Abs(v as u32));
    }
    // Deferred displacement @d(Rn).
    if let Some(rest) = tok.strip_prefix('@') {
        if let Some(open) = rest.find('(') {
            let d = if open == 0 {
                0
            } else {
                parse_number(&rest[..open])
                    .ok_or_else(|| err(line, format!("bad displacement `{}`", &rest[..open])))?
            };
            let inner = rest[open..]
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| err(line, "unbalanced parentheses"))?;
            let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register `{inner}`")))?;
            return Ok(Operand::DispDef(d as i32, r));
        }
        return Err(err(line, format!("bad deferred operand `{tok}`")));
    }
    // -(Rn)
    if let Some(rest) = tok.strip_prefix("-(") {
        let r = rest
            .strip_suffix(')')
            .and_then(parse_reg)
            .ok_or_else(|| err(line, format!("bad autodecrement `{tok}`")))?;
        return Ok(Operand::AutoDec(r));
    }
    // (Rn)+ and (Rn)
    if let Some(rest) = tok.strip_prefix('(') {
        if let Some(inner) = rest.strip_suffix(")+") {
            let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register `{inner}`")))?;
            return Ok(Operand::AutoInc(r));
        }
        if let Some(inner) = rest.strip_suffix(')') {
            let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register `{inner}`")))?;
            return Ok(Operand::Deferred(r));
        }
        return Err(err(line, "unbalanced parentheses"));
    }
    // disp(Rn)
    if let Some(open) = tok.find('(') {
        let d = parse_number(&tok[..open])
            .ok_or_else(|| err(line, format!("bad displacement `{}`", &tok[..open])))?;
        let inner = tok[open..]
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| err(line, "unbalanced parentheses"))?;
        let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register `{inner}`")))?;
        return Ok(Operand::Disp(d as i32, r));
    }
    // Plain register.
    if let Some(r) = parse_reg(tok) {
        return Ok(Operand::Reg(r));
    }
    // Otherwise a label reference.
    Ok(Operand::Label(tok.to_string()))
}

/// Split an operand list on commas, respecting no nesting beyond `[...]`.
fn split_operands(s: &str) -> Vec<String> {
    s.split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Assemble a text program at `origin`.
///
/// # Errors
/// [`ParseError`] for syntax errors (with line numbers) and any assembly
/// error from the builder.
pub fn parse(source: &str, origin: u32) -> Result<Image, ParseError> {
    let mut asm = Asm::new(origin);
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(semi) = text.find(';') {
            text = &text[..semi];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }
        // Labels.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line, "bad label"));
            }
            asm.label(name);
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = text.strip_prefix('.') {
            let (dir, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            match dir.to_ascii_lowercase().as_str() {
                "byte" => {
                    let mut v = Vec::new();
                    for t in split_operands(args) {
                        let n = parse_number(&t).ok_or_else(|| err(line, "bad .byte value"))?;
                        v.push(n as u8);
                    }
                    asm.bytes(&v);
                }
                "word" => {
                    for t in split_operands(args) {
                        let n = parse_number(&t).ok_or_else(|| err(line, "bad .word value"))?;
                        asm.word(n as u16);
                    }
                }
                "long" => {
                    for t in split_operands(args) {
                        let n = parse_number(&t).ok_or_else(|| err(line, "bad .long value"))?;
                        asm.long(n as u32);
                    }
                }
                "ascii" => {
                    let trimmed = args.trim();
                    let inner = trimmed
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err(line, ".ascii needs a quoted string"))?;
                    asm.bytes(inner.as_bytes());
                }
                "blkb" => {
                    let n = parse_number(args).ok_or_else(|| err(line, "bad .blkb count"))?;
                    asm.block(n as u32);
                }
                "align" => {
                    let n = parse_number(args).ok_or_else(|| err(line, "bad .align value"))?;
                    if !(n as u32).is_power_of_two() {
                        return Err(err(line, ".align must be a power of two"));
                    }
                    asm.align(n as u32);
                }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        // Instruction.
        let (mn, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let opcode =
            Opcode::from_mnemonic(mn).ok_or_else(|| err(line, format!("unknown opcode `{mn}`")))?;
        let mut toks = split_operands(rest);
        let target = if opcode.has_branch_disp() {
            Some(
                toks.pop()
                    .ok_or_else(|| err(line, format!("{mn} needs a branch target")))?,
            )
        } else {
            None
        };
        let mut operands = Vec::with_capacity(toks.len());
        for t in &toks {
            operands.push(parse_operand(t, line)?);
        }
        asm.insn(opcode, &operands, target.as_deref());
    }
    Ok(asm.assemble()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::decode;

    #[test]
    fn full_program() {
        let src = r#"
            ; count down from ten
            start:  MOVL #10, R2
            loop:   ADDL2 #1, R3
                    SOBGTR R2, loop
                    MOVL 4(R5), R0
                    MOVL @8(R5), R1
                    MOVL (R1)+, -(SP)
                    MOVL (R1)[R3], R0
                    MOVL @#^X2000, R0
                    MOVL data, R0
                    HALT
            data:   .long 123
        "#;
        let img = parse(src, 0x1000).unwrap();
        assert!(img.labels.contains_key("start"));
        assert!(img.labels.contains_key("loop"));
        let first = decode(&img.bytes).unwrap();
        assert_eq!(first.opcode, Opcode::Movl);
    }

    #[test]
    fn literal_vs_immediate() {
        let img = parse("MOVL #5, R0", 0).unwrap();
        assert_eq!(img.bytes, vec![0xD0, 0x05, 0x50]);
        let img2 = parse("MOVL #100, R0", 0).unwrap();
        assert_eq!(img2.bytes[1], 0x8F, "values over 63 use immediate mode");
    }

    #[test]
    fn directives() {
        let img = parse(
            ".byte 1, 2\n.word 772\n.long ^X10\n.ascii \"hi\"\n.align 4\n.blkb 2",
            0,
        )
        .unwrap();
        assert_eq!(
            img.bytes,
            vec![1, 2, 4, 3, 0x10, 0, 0, 0, b'h', b'i', 0, 0, 0, 0]
        );
    }

    #[test]
    fn syntax_errors_have_lines() {
        let e = parse("MOVL #1 R0\nXYZZY R1", 0).unwrap_err();
        match e {
            ParseError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other}"),
        }
        let e2 = parse("\nXYZZY R1", 0).unwrap_err();
        match e2 {
            ParseError::Syntax { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("XYZZY"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn branch_targets() {
        let img = parse("l: BRB l", 0).unwrap();
        assert_eq!(img.bytes, vec![0x11, 0xFE]); // branch-to-self
    }
}
