//! The programmatic assembler.

use std::collections::HashMap;
use std::fmt;
use vax_arch::encode::encode_into;
use vax_arch::{Instruction, Opcode, OperandKind, Reg, Specifier};

/// An assembler-level operand: like [`Specifier`] but may reference labels.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Short literal 0–63.
    Lit(u8),
    /// Immediate `#value` (I-stream constant).
    Imm(u32),
    /// Register mode.
    Reg(Reg),
    /// Register deferred `(Rn)`.
    Deferred(Reg),
    /// Autoincrement `(Rn)+`.
    AutoInc(Reg),
    /// Autodecrement `-(Rn)`.
    AutoDec(Reg),
    /// Autoincrement deferred `@(Rn)+`.
    AutoIncDef(Reg),
    /// Displacement `disp(Rn)`.
    Disp(i32, Reg),
    /// Displacement deferred `@disp(Rn)`.
    DispDef(i32, Reg),
    /// Absolute `@#addr`.
    Abs(u32),
    /// PC-relative reference to a label.
    Label(String),
    /// PC-relative *deferred* reference to a label: the longword at the
    /// label holds the operand's address (`@disp(PC)`). This is how the
    /// probe generator reaches mode F/PC without hand-computed
    /// displacements.
    LabelDef(String),
    /// Indexed: base operand plus `[Rx]`.
    Indexed(Box<Operand>, Reg),
}

impl Operand {
    /// Encoded length in bytes for an operand of `size` data bytes.
    fn encoded_len(&self, size: u32) -> u32 {
        match self {
            Operand::Lit(_) | Operand::Reg(_) => 1,
            Operand::Deferred(_)
            | Operand::AutoInc(_)
            | Operand::AutoDec(_)
            | Operand::AutoIncDef(_) => 1,
            Operand::Imm(_) => 1 + size,
            Operand::Disp(d, _) | Operand::DispDef(d, _) => {
                1 + if (-128..=127).contains(d) {
                    1
                } else if (-32768..=32767).contains(d) {
                    2
                } else {
                    4
                }
            }
            Operand::Abs(_) => 5,
            Operand::Label(_) | Operand::LabelDef(_) => 5, // always long PC-relative
            Operand::Indexed(base, _) => 1 + base.encoded_len(size),
        }
    }

    /// Resolve to a [`Specifier`], with `pc_after` the address just past
    /// this specifier's encoding (for PC-relative forms).
    fn resolve(&self, labels: &HashMap<String, u32>, pc_after: u32) -> Result<Specifier, AsmError> {
        Ok(match self {
            Operand::Lit(v) => Specifier::literal(*v),
            Operand::Imm(v) => Specifier::immediate(*v),
            Operand::Reg(r) => Specifier::register(*r),
            Operand::Deferred(r) => Specifier::deferred(*r),
            Operand::AutoInc(r) => Specifier {
                mode: vax_arch::AddressingMode::Autoincrement,
                reg: *r,
                value: 0,
                index: None,
            },
            Operand::AutoDec(r) => Specifier {
                mode: vax_arch::AddressingMode::Autodecrement,
                reg: *r,
                value: 0,
                index: None,
            },
            Operand::AutoIncDef(r) => Specifier {
                mode: vax_arch::AddressingMode::AutoincrementDeferred,
                reg: *r,
                value: 0,
                index: None,
            },
            Operand::Disp(d, r) => Specifier::displacement(*d, *r),
            Operand::DispDef(d, r) => {
                let mut s = Specifier::displacement(*d, *r);
                s.mode = match s.mode {
                    vax_arch::AddressingMode::ByteDisp => {
                        vax_arch::AddressingMode::ByteDispDeferred
                    }
                    vax_arch::AddressingMode::WordDisp => {
                        vax_arch::AddressingMode::WordDispDeferred
                    }
                    _ => vax_arch::AddressingMode::LongDispDeferred,
                };
                s
            }
            Operand::Abs(a) => Specifier::absolute(*a),
            Operand::Label(name) => {
                let target = *labels
                    .get(name)
                    .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                Specifier {
                    mode: vax_arch::AddressingMode::PcRelative,
                    reg: Reg::PC,
                    value: target.wrapping_sub(pc_after) as i32 as i64,
                    index: None,
                }
            }
            Operand::LabelDef(name) => {
                let target = *labels
                    .get(name)
                    .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                Specifier {
                    mode: vax_arch::AddressingMode::PcRelativeDeferred,
                    reg: Reg::PC,
                    value: target.wrapping_sub(pc_after) as i32 as i64,
                    index: None,
                }
            }
            Operand::Indexed(base, ix) => base.resolve(labels, pc_after)?.indexed(*ix),
        })
    }
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch displacement did not fit the opcode's width.
    BranchOutOfRange {
        /// The opcode.
        opcode: &'static str,
        /// The displacement that did not fit.
        disp: i64,
    },
    /// Operand count does not match the opcode signature.
    OperandCount {
        /// The opcode.
        opcode: &'static str,
        /// Expected specifier count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// A branch opcode without a target, or a target on a non-branch.
    BranchTarget(&'static str),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { opcode, disp } => {
                write!(f, "{opcode}: branch displacement {disp} out of range")
            }
            AsmError::OperandCount {
                opcode,
                expected,
                got,
            } => write!(f, "{opcode}: expected {expected} operands, got {got}"),
            AsmError::BranchTarget(op) => write!(f, "{op}: branch target mismatch"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Insn {
        opcode: Opcode,
        operands: Vec<Operand>,
        target: Option<String>,
    },
    Bytes(Vec<u8>),
    Align(u32),
    /// Reserve n zero bytes.
    Block(u32),
    /// A CASEx displacement table: one word per target, each relative to
    /// the table's own start address (VAX CASE semantics).
    CaseTable(Vec<String>),
}

/// An assembled image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Base virtual address.
    pub origin: u32,
    /// The machine code / data bytes.
    pub bytes: Vec<u8>,
    /// Label addresses.
    pub labels: HashMap<String, u32>,
}

impl Image {
    /// Address of a label.
    ///
    /// # Panics
    /// Panics if the label does not exist.
    pub fn addr_of(&self, label: &str) -> u32 {
        *self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("no such label `{label}`"))
    }

    /// End address (origin + length).
    pub fn end(&self) -> u32 {
        self.origin + self.bytes.len() as u32
    }
}

/// The two-pass assembler.
#[derive(Debug, Clone)]
pub struct Asm {
    origin: u32,
    items: Vec<Item>,
    /// Label name → item index at which it is defined.
    label_defs: Vec<(String, usize)>,
}

impl Asm {
    /// Start assembling at virtual address `origin`.
    pub fn new(origin: u32) -> Asm {
        Asm {
            origin,
            items: Vec::new(),
            label_defs: Vec::new(),
        }
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.label_defs.push((name.to_string(), self.items.len()));
        self
    }

    /// Append an instruction. `target` supplies the branch-displacement
    /// label for opcodes that have one.
    pub fn insn(
        &mut self,
        opcode: Opcode,
        operands: &[Operand],
        target: Option<&str>,
    ) -> &mut Self {
        self.items.push(Item::Insn {
            opcode,
            operands: operands.to_vec(),
            target: target.map(str::to_string),
        });
        self
    }

    /// Append raw data bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.items.push(Item::Bytes(data.to_vec()));
        self
    }

    /// Append a longword constant.
    pub fn long(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Append a word constant.
    pub fn word(&mut self, v: u16) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Reserve `n` zero bytes.
    pub fn block(&mut self, n: u32) -> &mut Self {
        self.items.push(Item::Block(n));
        self
    }

    /// Align to a power-of-two boundary.
    pub fn align(&mut self, to: u32) -> &mut Self {
        assert!(to.is_power_of_two());
        self.items.push(Item::Align(to));
        self
    }

    /// Emit a CASEx displacement table (place immediately after the CASEx
    /// instruction). Each entry is a word displacement from the table start
    /// to the target label.
    pub fn case_table(&mut self, targets: &[&str]) -> &mut Self {
        self.items.push(Item::CaseTable(
            targets.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    fn item_len(item: &Item, at: u32, labels_known: bool) -> u32 {
        match item {
            Item::Insn {
                opcode, operands, ..
            } => {
                let mut len = 1u32;
                let mut oi = 0;
                for kind in opcode.operands() {
                    match kind {
                        OperandKind::Spec(_, dt) => {
                            // A count mismatch is reported in pass 2; size
                            // the missing operand as one byte meanwhile.
                            len += operands.get(oi).map_or(1, |o| o.encoded_len(dt.size()));
                            oi += 1;
                        }
                        OperandKind::Branch(w) => len += w.size(),
                    }
                }
                let _ = labels_known;
                len
            }
            Item::Bytes(b) => b.len() as u32,
            Item::Block(n) => *n,
            Item::Align(to) => (to - (at % to)) % to,
            Item::CaseTable(targets) => 2 * targets.len() as u32,
        }
    }

    /// Run both passes and produce the image.
    ///
    /// # Errors
    /// Any [`AsmError`]: undefined/duplicate labels, operand count
    /// mismatches, out-of-range branch displacements.
    pub fn assemble(&self) -> Result<Image, AsmError> {
        // Pass 1: addresses.
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut addrs = Vec::with_capacity(self.items.len());
        {
            let mut at = self.origin;
            let mut def_iter = self.label_defs.iter().peekable();
            for (i, item) in self.items.iter().enumerate() {
                while let Some((name, idx)) = def_iter.peek() {
                    if *idx == i {
                        if labels.insert(name.clone(), at).is_some() {
                            return Err(AsmError::DuplicateLabel(name.clone()));
                        }
                        def_iter.next();
                    } else {
                        break;
                    }
                }
                addrs.push(at);
                at += Self::item_len(item, at, false);
            }
            // Labels at the very end.
            for (name, idx) in def_iter {
                if *idx == self.items.len() {
                    if labels.insert(name.clone(), at).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                } else {
                    return Err(AsmError::DuplicateLabel(name.clone()));
                }
            }
        }
        // Pass 2: encode.
        let mut bytes = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            let at = addrs[i];
            match item {
                Item::Bytes(b) => bytes.extend_from_slice(b),
                Item::Block(n) => bytes.extend(std::iter::repeat_n(0u8, *n as usize)),
                Item::Align(to) => {
                    let pad = (to - (at % to)) % to;
                    bytes.extend(std::iter::repeat_n(0u8, pad as usize));
                }
                Item::CaseTable(targets) => {
                    for name in targets {
                        let t = *labels
                            .get(name)
                            .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                        let d = t as i64 - at as i64;
                        if !(-32768..=32767).contains(&d) {
                            return Err(AsmError::BranchOutOfRange {
                                opcode: "CASE table",
                                disp: d,
                            });
                        }
                        bytes.extend_from_slice(&(d as i16).to_le_bytes());
                    }
                }
                Item::Insn {
                    opcode,
                    operands,
                    target,
                } => {
                    let expected = opcode.specifier_count();
                    if operands.len() != expected {
                        return Err(AsmError::OperandCount {
                            opcode: opcode.mnemonic(),
                            expected,
                            got: operands.len(),
                        });
                    }
                    if target.is_some() != opcode.has_branch_disp() {
                        return Err(AsmError::BranchTarget(opcode.mnemonic()));
                    }
                    // Resolve specifiers with running PC.
                    let mut cursor = at + 1;
                    let mut specs = Vec::with_capacity(expected);
                    let mut oi = 0;
                    for kind in opcode.operands() {
                        match kind {
                            OperandKind::Spec(_, dt) => {
                                let enc = operands[oi].encoded_len(dt.size());
                                cursor += enc;
                                specs.push(operands[oi].resolve(&labels, cursor)?);
                                oi += 1;
                            }
                            OperandKind::Branch(w) => cursor += w.size(),
                        }
                    }
                    let disp = match target {
                        Some(name) => {
                            let t = *labels
                                .get(name)
                                .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                            let insn_len = Self::item_len(item, at, true);
                            let d = t as i64 - (at + insn_len) as i64;
                            let ok = match opcode.operands().iter().find(|k| k.is_branch_disp()) {
                                Some(OperandKind::Branch(w)) if w.size() == 1 => {
                                    (-128..=127).contains(&d)
                                }
                                _ => (-32768..=32767).contains(&d),
                            };
                            if !ok {
                                return Err(AsmError::BranchOutOfRange {
                                    opcode: opcode.mnemonic(),
                                    disp: d,
                                });
                            }
                            Some(d as i32)
                        }
                        None => None,
                    };
                    let insn = Instruction::new(*opcode, specs, disp);
                    encode_into(&insn, &mut bytes);
                }
            }
        }
        Ok(Image {
            origin: self.origin,
            bytes,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::decode;

    #[test]
    fn simple_program() {
        let mut asm = Asm::new(0x1000);
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(10), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.label("loop");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Reg(Reg::new(3))],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
        let img = asm.assemble().unwrap();
        assert_eq!(img.addr_of("loop"), 0x1000 + 7);
        // First instruction decodes back.
        let insn = decode(&img.bytes).unwrap();
        assert_eq!(insn.opcode, Opcode::Movl);
        // The SOB branch displacement points back at `loop`.
        let sob_off = 7 + 3;
        let sob = decode(&img.bytes[sob_off..]).unwrap();
        assert_eq!(sob.opcode, Opcode::Sobgtr);
        let sob_addr = 0x1000 + sob_off as u32;
        let target = (sob_addr + sob.len).wrapping_add(sob.branch_disp.unwrap() as u32);
        assert_eq!(target, img.addr_of("loop"));
    }

    #[test]
    fn forward_label_pc_relative() {
        let mut asm = Asm::new(0x2000);
        asm.insn(
            Opcode::Movl,
            &[Operand::Label("data".into()), Operand::Reg(Reg::new(1))],
            None,
        );
        asm.insn(Opcode::Halt, &[], None);
        asm.label("data");
        asm.long(0xDEADBEEF);
        let img = asm.assemble().unwrap();
        let insn = decode(&img.bytes).unwrap();
        // PC after first specifier = origin + 1 + 5; value + that = data.
        let pc_after: u32 = 0x2000 + 6;
        assert_eq!(
            pc_after.wrapping_add(insn.specifiers[0].value as u32),
            img.addr_of("data")
        );
    }

    #[test]
    fn alignment_and_blocks() {
        let mut asm = Asm::new(0x100);
        asm.bytes(&[1, 2, 3]);
        asm.align(4);
        asm.label("here");
        asm.block(8);
        let img = asm.assemble().unwrap();
        assert_eq!(img.addr_of("here"), 0x104);
        assert_eq!(img.bytes.len(), 12);
    }

    #[test]
    fn errors() {
        let mut asm = Asm::new(0);
        asm.insn(Opcode::Brb, &[], Some("nowhere"));
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );

        let mut asm2 = Asm::new(0);
        asm2.label("x").label("x");
        assert!(matches!(asm2.assemble(), Err(AsmError::DuplicateLabel(_))));

        let mut asm3 = Asm::new(0);
        asm3.insn(Opcode::Movl, &[Operand::Lit(1)], None);
        assert!(matches!(
            asm3.assemble(),
            Err(AsmError::OperandCount { .. })
        ));

        let mut asm4 = Asm::new(0);
        asm4.label("far");
        asm4.block(300);
        asm4.insn(Opcode::Brb, &[], Some("far"));
        assert!(matches!(
            asm4.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn indexed_operand() {
        let mut asm = Asm::new(0);
        asm.insn(
            Opcode::Movl,
            &[
                Operand::Indexed(Box::new(Operand::Deferred(Reg::new(1))), Reg::new(4)),
                Operand::Reg(Reg::new(0)),
            ],
            None,
        );
        let img = asm.assemble().unwrap();
        assert_eq!(img.bytes, vec![0xD0, 0x44, 0x61, 0x50]);
    }
}
