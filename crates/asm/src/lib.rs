//! # vax-asm
//!
//! A small two-pass VAX assembler with two front ends:
//!
//! * a **builder API** ([`Asm`]) used programmatically by the kernel
//!   builder and the workload generators — items are opcodes with symbolic
//!   operands and labels;
//! * a **text front end** ([`parse`]) accepting a VAX MACRO-ish subset for
//!   examples and tests.
//!
//! Label-referencing operands assemble to PC-relative (longword
//! displacement) form; branch displacements use the width fixed by the
//! opcode and error out of range.
//!
//! ```
//! use vax_asm::{Asm, Operand};
//! use vax_arch::{Opcode, Reg};
//!
//! let mut asm = Asm::new(0x1000);
//! asm.label("loop");
//! asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
//! let image = asm.assemble().unwrap();
//! assert_eq!(image.origin, 0x1000);
//! assert!(!image.bytes.is_empty());
//! ```

pub mod builder;
pub mod probe;
pub mod text;

pub use builder::{Asm, AsmError, Image, Operand};
pub use probe::{
    mode_from_key, mode_key, probe_grid, probe_loop, probe_target, GridCell, ProbeLoop,
    ProbeTarget, SkipReason,
};
pub use text::{parse, ParseError};
