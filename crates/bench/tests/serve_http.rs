//! End-to-end exercise of `reproduce serve` over a real loopback socket:
//! hostile submissions answer typed 4xx, a valid job runs to completion
//! with downloadable artifacts, a repeated job reports warm-cache hits
//! in its `runtime.json`, and `POST /shutdown` drains the daemon to a
//! clean exit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon child plus the address it bound; killed on drop so a failing
/// test cannot leak the process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start the daemon on an OS-assigned port and learn it from the
/// startup line on stderr.
fn start_daemon(root: &Path) -> Daemon {
    start_daemon_with(root, &[])
}

fn start_daemon_with(root: &Path, extra: &[&str]) -> Daemon {
    let mut child = reproduce()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--root",
            root.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn reproduce serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stderr");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// One HTTP exchange. Returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..head_end]).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, raw[head_end + 4..].to_vec())
}

fn http_text(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let (status, bytes) = http(addr, method, path, body);
    (status, String::from_utf8_lossy(&bytes).into_owned())
}

/// Poll a job until it leaves the queued/running states.
fn await_job(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_text(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "status poll failed: {body}");
        if body.contains("\"done\"") || body.contains("\"failed\"") {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} did not finish in time; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

const SMALL_RUN: &str = r#"{"kind": "run", "instructions": 2000, "seed": 42, "shards": 1}"#;

#[test]
fn serve_lifecycle_hostile_inputs_and_warm_caches() {
    let root = scratch("lifecycle");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    // --- Hostile submissions: typed 4xx, not crashes. ---------------
    // Truncated JSON body → 400 with a byte offset from the parser.
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(r#"{"kind": "run""#));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("byte"), "expected a byte offset: {body}");
    // Duplicate keys → 400 naming the key and offset.
    let (status, body) = http_text(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind": "run", "seed": 1, "seed": 2}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("duplicate key 'seed'"), "{body}");
    // Wrong type → 400 naming the field.
    let (status, body) = http_text(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind": "run", "instructions": "many"}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("instructions"), "{body}");
    // Out-of-range grid → 400.
    let (status, body) = http_text(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind": "run", "shards": 100000}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("shards"), "{body}");
    // Unknown field → 400.
    let (status, body) = http_text(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind": "run", "outt": "oops"}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown field 'outt'"), "{body}");
    // Malformed HTTP (no double CRLF, dead method) handled at the
    // message layer.
    let (status, _) = http_text(&addr, "GET", "/teapot", None);
    assert_eq!(status, 404, "unknown path is a 404");
    let (status, _) = http_text(&addr, "DELETE", "/jobs", None);
    assert_eq!(status, 405, "wrong method on a real path is a 405");

    // Nothing was admitted.
    let (status, body) = http_text(&addr, "GET", "/jobs", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"jobs\": []"), "{body}");

    // --- A valid job runs to completion. ----------------------------
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(SMALL_RUN));
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"id\":\"j-000001\""), "{body}");
    let final_status = await_job(&addr, "j-000001");
    assert!(final_status.contains("\"done\""), "{final_status}");
    assert!(final_status.contains("\"code\": 0"), "{final_status}");

    // Artifacts list and download.
    let (status, listing) = http_text(&addr, "GET", "/jobs/j-000001/artifacts", None);
    assert_eq!(status, 200);
    for name in [
        "manifest.json",
        "measurement.json",
        "spec.json",
        "runtime.json",
    ] {
        assert!(listing.contains(name), "missing {name} in {listing}");
    }
    let (status, manifest) =
        http_text(&addr, "GET", "/jobs/j-000001/artifacts/manifest.json", None);
    assert_eq!(status, 200);
    assert!(manifest.contains("\"experiment\""), "{manifest}");
    // The served bytes are exactly the on-disk bytes.
    let on_disk = std::fs::read(root.join("j-000001").join("manifest.json")).unwrap();
    assert_eq!(manifest.as_bytes(), &on_disk[..]);

    // Path traversal is a 404, never a file read.
    for evil in [
        "/jobs/j-000001/artifacts/..",
        "/jobs/j-000001/artifacts/%2e%2e",
        "/jobs/j-000001/artifacts/..%2fspec.json",
    ] {
        let (status, _) = http_text(&addr, "GET", evil, None);
        assert_eq!(status, 404, "{evil} must 404");
    }
    let (status, _) = http_text(&addr, "GET", "/jobs/j-000001/artifacts/nope.json", None);
    assert_eq!(status, 404);
    let (status, _) = http_text(&addr, "GET", "/jobs/j-999999", None);
    assert_eq!(status, 404);

    // --- The same spec again: served from the warm caches. ----------
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(SMALL_RUN));
    assert_eq!(status, 202, "{body}");
    let final_status = await_job(&addr, "j-000002");
    assert!(final_status.contains("\"done\""), "{final_status}");
    let (status, runtime) = http_text(&addr, "GET", "/jobs/j-000002/artifacts/runtime.json", None);
    assert_eq!(status, 200);
    for counter in ["workload_cache_hits", "boot_cache_hits"] {
        assert!(runtime.contains(counter), "missing {counter}: {runtime}");
    }
    assert!(
        !runtime.contains("\"workload_cache_hits\": 0"),
        "second identical job must hit the workload cache: {runtime}"
    );
    assert!(
        !runtime.contains("\"boot_cache_hits\": 0"),
        "second identical job must hit the boot cache: {runtime}"
    );
    // And the warm job's measurement is byte-identical to the cold one.
    let (_, cold) = http(
        &addr,
        "GET",
        "/jobs/j-000001/artifacts/measurement.json",
        None,
    );
    let (_, warm) = http(
        &addr,
        "GET",
        "/jobs/j-000002/artifacts/measurement.json",
        None,
    );
    assert_eq!(cold, warm, "warm-cache run diverged from cold run");

    // --- Events stream ends with the terminal state. ----------------
    let (status, events) = http_text(&addr, "GET", "/jobs/j-000002/events", None);
    assert_eq!(status, 200);
    let last = events.lines().last().unwrap();
    assert!(last.contains("\"done\""), "{events}");

    // --- Drain. -----------------------------------------------------
    let (status, body) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202, "{body}");
    let exit = daemon.child.wait().expect("wait for daemon");
    assert!(exit.success(), "drain must exit 0, got {exit:?}");
    // New connections are refused once drained.
    assert!(TcpStream::connect(&addr).is_err(), "socket must be closed");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn health_endpoints_report_ready_and_drain() {
    let root = scratch("health");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    let (status, body) = http_text(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ready\""), "{body}");
    let (status, body) = http_text(&addr, "GET", "/readyz", None);
    assert_eq!(status, 200, "{body}");
    let (status, _) = http_text(&addr, "DELETE", "/healthz", None);
    assert_eq!(status, 405);

    // After the drain signal, /healthz stays 200 (liveness) but reports
    // draining, and /readyz flips to 503 — while the daemon still
    // answers requests.
    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    // The daemon exits once the (idle) worker drains; health answers
    // race that exit, so tolerate a refused connection.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let Ok(mut stream) = TcpStream::connect(&addr) else {
            break;
        };
        let _ = stream.write_all(b"GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        let text = String::from_utf8_lossy(&raw);
        if !raw.is_empty() {
            assert!(text.contains("503"), "draining readyz must be 503: {text}");
            assert!(text.contains("\"draining\""), "{text}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon neither answered nor exited"
        );
    }
    let exit = daemon.child.wait().expect("wait for daemon");
    assert!(exit.success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn connection_cap_sheds_load_with_retry_after() {
    let root = scratch("conncap");
    let mut daemon = start_daemon_with(&root, &["--max-connections", "2"]);
    let addr = daemon.addr.clone();

    // Two idle connections pin both slots (their handlers sit in the
    // request read until we close them).
    let idle_a = TcpStream::connect(&addr).expect("first idle connection");
    let idle_b = TcpStream::connect(&addr).expect("second idle connection");
    std::thread::sleep(Duration::from_millis(300));

    // The third connection is shed inline: 503 plus Retry-After.
    let mut over = TcpStream::connect(&addr).expect("over-cap connection");
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    over.read_to_end(&mut raw).expect("read shed response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("Retry-After: 1"), "{text}");
    drop(over);

    // Freeing the slots restores service.
    drop(idle_a);
    drop(idle_b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_text(&addr, "GET", "/jobs", None);
        if status == 200 {
            assert!(body.contains("\"jobs\""), "{body}");
            break;
        }
        assert_eq!(status, 503, "unexpected status {status}: {body}");
        assert!(Instant::now() < deadline, "cap never released");
        std::thread::sleep(Duration::from_millis(100));
    }

    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    let exit = daemon.child.wait().expect("wait for daemon");
    assert!(exit.success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn submissions_during_drain_are_refused() {
    let root = scratch("drain");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();
    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    // The daemon may close the listener at any poll tick; both a 503
    // and a refused connection are correct drain behavior.
    if let Ok(mut stream) = TcpStream::connect(&addr) {
        let request = format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{SMALL_RUN}",
            SMALL_RUN.len()
        );
        if stream.write_all(request.as_bytes()).is_ok() {
            let mut raw = Vec::new();
            let _ = stream.read_to_end(&mut raw);
            let text = String::from_utf8_lossy(&raw);
            assert!(
                raw.is_empty() || text.contains("503"),
                "drain must refuse submissions: {text}"
            );
        }
    }
    let exit = daemon.child.wait().expect("wait for daemon");
    assert!(exit.success());
    let _ = std::fs::remove_dir_all(&root);
}
