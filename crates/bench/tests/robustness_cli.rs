//! End-to-end robustness checks against the real `reproduce` binary:
//! crash-safe resume (SIGKILL mid-run, then `resume` completes the grid
//! byte-identically) and the strict/retry exit-code contract.
//!
//! These run the debug binary on deliberately small grids, so each test
//! costs seconds, not minutes.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("robustness-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Artifact file names in `dir` (top level only; the checkpoints journal
/// is bookkeeping, not an export).
fn artifact_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.path().is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

fn count_checkpoint_cells(dir: &Path) -> usize {
    let cp = dir.join("checkpoints");
    match std::fs::read_dir(&cp) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("cell-"))
            .count(),
        Err(_) => 0,
    }
}

#[test]
fn killed_run_resumes_to_byte_identical_artifacts() {
    let clean = scratch("clean");
    let interrupted = scratch("interrupted");
    let grid = |out: &Path| {
        vec![
            "--instructions".to_string(),
            "60000".to_string(),
            "--shards".to_string(),
            "2".to_string(),
            "--seed".to_string(),
            "7".to_string(),
            "--jobs".to_string(),
            "1".to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--out".to_string(),
            out.display().to_string(),
            "--quiet".to_string(),
        ]
    };

    // Reference: the same grid, never interrupted.
    let status = reproduce().args(grid(&clean)).status().unwrap();
    assert!(status.success());

    // Victim: identical invocation, killed once a couple of cells have
    // been journaled.
    let mut child = reproduce()
        .args(grid(&interrupted))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut finished_early = false;
    loop {
        if count_checkpoint_cells(&interrupted) >= 2 {
            break;
        }
        if child.try_wait().unwrap().is_some() {
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint cells appeared within 60s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    if !finished_early {
        child.kill().unwrap(); // SIGKILL on unix: no destructors run
    }
    let _ = child.wait();

    // Resume must finish the grid (or, if the child won the race, simply
    // re-export the completed one) and reproduce the reference bytes.
    let status = reproduce()
        .args(["resume", &interrupted.display().to_string(), "--quiet"])
        .status()
        .unwrap();
    assert!(status.success(), "resume failed");

    let names = artifact_names(&clean);
    assert_eq!(names, artifact_names(&interrupted));
    assert!(names.contains(&"manifest.json".to_string()));
    for name in &names {
        let a = std::fs::read(clean.join(name)).unwrap();
        let b = std::fs::read(interrupted.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs after kill + resume");
    }

    std::fs::remove_dir_all(&clean).unwrap();
    std::fs::remove_dir_all(&interrupted).unwrap();
}

#[test]
fn strict_mode_fails_on_quarantine_and_retries_recover() {
    let dir = scratch("strict");
    // Shard (0,0) panics more times than --retries allows: the cell is
    // quarantined, the manifest says so, and --strict turns that into a
    // nonzero exit while the partial export still lands.
    let status = reproduce()
        .args([
            "--instructions",
            "2000",
            "--seed",
            "7",
            "--format",
            "json",
            "--out",
            &dir.display().to_string(),
            "--inject-panic",
            "0:0:9",
            "--retries",
            "1",
            "--strict",
            "--quiet",
        ])
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1), "strict degraded run must exit 1");
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"degraded\": true"), "{manifest}");

    // With enough retries the same injection heals invisibly.
    let status = reproduce()
        .args([
            "--instructions",
            "2000",
            "--seed",
            "7",
            "--format",
            "json",
            "--out",
            &dir.display().to_string(),
            "--inject-panic",
            "0:0:1",
            "--retries",
            "2",
            "--strict",
            "--quiet",
        ])
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "recovered run must exit 0");
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"degraded\": false"), "{manifest}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_seed_runs_are_reproducible_from_the_command_line() {
    let a = scratch("fault-a");
    let b = scratch("fault-b");
    for dir in [&a, &b] {
        let status = reproduce()
            .args([
                "--instructions",
                "2000",
                "--seed",
                "7",
                "--fault-seed",
                "11",
                "--format",
                "json",
                "--out",
                &dir.display().to_string(),
                "--quiet",
            ])
            .status()
            .unwrap();
        assert!(status.success());
    }
    for name in artifact_names(&a) {
        let x = std::fs::read(a.join(&name)).unwrap();
        let y = std::fs::read(b.join(&name)).unwrap();
        assert_eq!(x, y, "{name} differs between identical --fault-seed runs");
    }
    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}
