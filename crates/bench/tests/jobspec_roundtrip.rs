//! Property test: the `JobSpec` codec is canonical — for any valid spec,
//! encode → decode → encode is byte-stable. This is what lets a job
//! directory's `spec.json` serve as the job's identity: re-submitting it
//! produces the same canonical bytes, and any textual difference between
//! two spec files is a real difference in the experiment.

use vax780::FaultClass;
use vax_bench::jobspec::{JobSpec, ProbeSpec, RefuteSpec, RunSpec};

/// SplitMix64 — enough randomness for a property sweep, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

const EXPERIMENTS: &[&str] = &["all", "table1", "table2", "table5", "events", "fig1"];
const OPCODES: &[&str] = &["MOVL", "ADDL2", "CMPL", "TSTL", "BICL2"];
const MODES: &[&str] = &["register", "literal", "byte_disp", "long_disp", "immediate"];

fn random_run(rng: &mut Rng) -> RunSpec {
    let fault_seed = if rng.chance(2) {
        Some(rng.below(1_000_000))
    } else {
        None
    };
    RunSpec {
        jobs: if rng.chance(2) {
            Some(1 + rng.below(16))
        } else {
            None
        },
        retries: if rng.chance(2) {
            Some(rng.below(4))
        } else {
            None
        },
        // Quarter-second deadlines have exact binary representations, so
        // the codec is not being tested on float formatting.
        deadline_secs: if rng.chance(4) {
            Some((1 + rng.below(40)) as f64 * 0.25)
        } else {
            None
        },
        instructions: 1 + rng.below(10_000_000),
        // The JSON integer domain is i64; specs cannot carry seeds above
        // i64::MAX (the CLI can, but such seeds don't serve any purpose).
        seed: rng.next() >> 1,
        shards: 1 + rng.below(8),
        experiment: EXPERIMENTS[rng.below(EXPERIMENTS.len() as u64) as usize].to_string(),
        per_workload: rng.chance(2),
        interval_cycles: 1 + rng.below(1_000_000),
        profile: rng.chance(2),
        top: 1 + rng.below(50),
        flight_recorder: rng.below(256),
        fault_classes: match fault_seed {
            None => Vec::new(),
            // Canonical order, as the decoder normalizes to.
            Some(s) if s % 3 == 0 => vec![FaultClass::Parity],
            Some(_) => FaultClass::ALL.to_vec(),
        },
        fault_seed,
        strict: rng.chance(2),
    }
}

fn random_probe(rng: &mut Rng) -> ProbeSpec {
    let npick = rng.below(OPCODES.len() as u64) as usize;
    ProbeSpec {
        jobs: if rng.chance(2) {
            Some(1 + rng.below(8))
        } else {
            None
        },
        retries: if rng.chance(2) {
            Some(rng.below(3))
        } else {
            None
        },
        deadline_secs: if rng.chance(4) {
            Some((1 + rng.below(40)) as f64 * 0.25)
        } else {
            None
        },
        opcodes: OPCODES[..npick].iter().map(|s| s.to_string()).collect(),
        modes: MODES[..rng.below(MODES.len() as u64) as usize]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        reps: 1 + rng.below(16),
        iters: 1 + rng.below(512),
        warmup: rng.below(10_000),
    }
}

fn random_spec(rng: &mut Rng) -> JobSpec {
    match rng.below(3) {
        0 => JobSpec::Run(random_run(rng)),
        1 => JobSpec::Characterize(random_probe(rng)),
        _ => JobSpec::Refute(RefuteSpec {
            probe: random_probe(rng),
            // Tolerances with exact binary representations dodge float
            // formatting questions the codec is not responsible for.
            abs_tol: (rng.below(8)) as f64 * 0.25,
            rel_tol: (rng.below(4)) as f64 * 0.125,
            max_refutations: rng.below(32),
            model: None,
        }),
    }
}

#[test]
fn encode_decode_encode_is_byte_stable() {
    let mut rng = Rng(0x1984_0780);
    for case in 0..500 {
        let spec = random_spec(&mut rng);
        let first = spec.encode().to_string_pretty();
        let decoded = JobSpec::decode(&first)
            .unwrap_or_else(|e| panic!("case {case}: canonical text failed decode: {e}\n{first}"));
        let second = decoded.encode().to_string_pretty();
        assert_eq!(first, second, "case {case}: encoding is not a fixed point");
        assert_eq!(decoded, spec, "case {case}: decode lost information");
    }
}

#[test]
fn compact_and_pretty_agree_on_content() {
    let mut rng = Rng(7);
    for _ in 0..50 {
        let spec = random_spec(&mut rng);
        let compact = JobSpec::decode(&spec.encode().to_string_compact()).unwrap();
        assert_eq!(compact, spec, "compact text must decode identically");
    }
}

#[test]
fn decoding_is_idempotent_under_field_reordering() {
    // The decoder accepts fields in any order; the re-encoding is still
    // the one canonical form.
    let reordered = r#"{
        "strict": true,
        "seed": 11,
        "kind": "run",
        "instructions": 5000,
        "format_version": 1
    }"#;
    let spec = JobSpec::decode(reordered).unwrap();
    let canonical = spec.encode().to_string_pretty();
    let again = JobSpec::decode(&canonical).unwrap();
    assert_eq!(again.encode().to_string_pretty(), canonical);
}
