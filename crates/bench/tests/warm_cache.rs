//! Warm-cache correctness: a run served from the codegen/boot caches
//! must be byte-identical to a cold run, and the engine must actually
//! hit the caches on a repeated experiment definition.
//!
//! Referenced by `crate::cache`'s module docs as the property test for
//! "cached and uncached runs are byte-identical by construction".

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use vax_bench::cache::CacheCounts;
use vax_bench::cli::{Format, Options};
use vax_bench::engine::{JobEngine, JobRequest};
use vax_bench::progress::Verbosity;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("warm-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_run(out: &Path) -> Options {
    Options {
        instructions: 2_000,
        seed: 42,
        shards: 2,
        format: Format::Json,
        out: Some(out.to_path_buf()),
        verbosity: Verbosity::Quiet,
        ..Options::default()
    }
}

fn read_dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| {
            let name = e.file_name().into_string().unwrap();
            let body = std::fs::read(e.path()).unwrap();
            (name, body)
        })
        .collect()
}

#[test]
fn warm_run_is_byte_identical_to_cold_run() {
    let cold_dir = scratch("cold");
    let warm_dir = scratch("warm");

    // One engine, two executions of the same experiment definition: the
    // first populates the caches (all misses), the second runs entirely
    // from them (all hits).
    let engine = JobEngine::new();
    let cold = engine.execute(&JobRequest::Run(small_run(&cold_dir)));
    assert_eq!(cold.code, 0, "cold run failed");
    let cells = 5 * 2; // 5 workloads × 2 shards
    assert_eq!(
        engine.caches().workload_counts(),
        CacheCounts {
            hits: 0,
            misses: cells
        },
        "a cold run must miss every cell"
    );

    let warm = engine.execute(&JobRequest::Run(small_run(&warm_dir)));
    assert_eq!(warm.code, 0, "warm run failed");
    assert_eq!(
        engine.caches().workload_counts(),
        CacheCounts {
            hits: cells,
            misses: cells
        },
        "a repeated run must hit every cell's workload image"
    );
    assert_eq!(
        engine.caches().boot_counts(),
        CacheCounts {
            hits: cells,
            misses: cells
        },
        "a repeated run must hit every cell's boot image"
    );

    let cold_files = read_dir_files(&cold_dir);
    let warm_files = read_dir_files(&warm_dir);
    assert!(
        cold_files.contains_key("measurement.json"),
        "run exported no measurement.json: {:?}",
        cold_files.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        cold_files.keys().collect::<Vec<_>>(),
        warm_files.keys().collect::<Vec<_>>(),
        "cold and warm runs exported different artifact sets"
    );
    for (name, cold_body) in &cold_files {
        assert_eq!(
            cold_body, &warm_files[name],
            "artifact {name} differs between cold and warm runs"
        );
    }

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
}

#[test]
fn distinct_experiments_do_not_cross_contaminate() {
    // Different seeds must never share cache entries — and must still
    // produce different measurements through the cached path.
    let dir_a = scratch("seed-a");
    let dir_b = scratch("seed-b");
    let engine = JobEngine::new();
    let mut run_a = small_run(&dir_a);
    run_a.shards = 1;
    let mut run_b = small_run(&dir_b);
    run_b.shards = 1;
    run_b.seed = 43;
    assert_eq!(engine.execute(&JobRequest::Run(run_a)).code, 0);
    assert_eq!(engine.execute(&JobRequest::Run(run_b)).code, 0);
    assert_eq!(
        engine.caches().workload_counts(),
        CacheCounts {
            hits: 0,
            misses: 10
        },
        "different seeds must be distinct cache entries"
    );
    let a = std::fs::read(dir_a.join("measurement.json")).unwrap();
    let b = std::fs::read(dir_b.join("measurement.json")).unwrap();
    assert_ne!(a, b, "different seeds must measure differently");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
