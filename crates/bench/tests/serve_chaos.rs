//! Chaos harness for `reproduce serve`: SIGKILL the daemon at a
//! randomized point mid-job, restart it on the same `--root`, and assert
//! that every accepted job still finishes — with final artifacts
//! byte-identical to an uninterrupted CLI run — plus the cancellation
//! and deadline endpoints' terminal semantics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon child plus the address it bound; killed on drop so a failing
/// test cannot leak the process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start the daemon on an OS-assigned port and learn it from the
/// startup line on stderr.
fn start_daemon(root: &Path) -> Daemon {
    let mut child = reproduce()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--root",
            root.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn reproduce serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stderr");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// One HTTP exchange. Returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..head_end]).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, raw[head_end + 4..].to_vec())
}

fn http_text(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let (status, bytes) = http(addr, method, path, body);
    (status, String::from_utf8_lossy(&bytes).into_owned())
}

/// Poll a job until it reaches any terminal state; returns the final
/// status body.
fn await_terminal(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_text(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "status poll failed: {body}");
        for terminal in [
            "\"done\"",
            "\"failed\"",
            "\"canceled\"",
            "\"deadline_exceeded\"",
        ] {
            if body.contains(terminal) {
                return body;
            }
        }
        assert!(
            Instant::now() < deadline,
            "job {id} did not reach a terminal state; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Count completed cell checkpoints in a job directory.
fn cells_done(job_dir: &Path) -> usize {
    let checkpoints = job_dir.join("checkpoints");
    match std::fs::read_dir(&checkpoints) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("cell-") && n.ends_with(".json"))
            })
            .count(),
        Err(_) => 0,
    }
}

/// A run large enough that SIGKILL reliably lands mid-grid: 5 workloads
/// × 6 shards = 30 cells on the daemon's single default worker.
const BIG_RUN: &str = r#"{"kind": "run", "instructions": 200000, "seed": 7, "shards": 6}"#;
const SMALL_RUN: &str = r#"{"kind": "run", "instructions": 2000, "seed": 42, "shards": 1}"#;

#[test]
fn sigkill_mid_job_recovers_resumes_and_matches_cli_bytes() {
    let root = scratch("sigkill");
    let daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    // Job A (will be running when the daemon dies) + job B (queued).
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(BIG_RUN));
    assert_eq!(status, 202, "{body}");
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(SMALL_RUN));
    assert_eq!(status, 202, "{body}");

    // Randomize the kill point: wait for K completed cells, then
    // SIGKILL. Seeded from the wall clock; printed so a failure is
    // reproducible by pinning K.
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as usize;
    let kill_after = 1 + nanos % 3;
    println!("chaos: SIGKILL after {kill_after} completed cell(s)");
    let job_a = root.join("j-000001");
    let kill_deadline = Instant::now() + Duration::from_secs(60);
    while cells_done(&job_a) < kill_after {
        assert!(
            Instant::now() < kill_deadline,
            "job never reached {kill_after} cells"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let at_kill = cells_done(&job_a);
    let mut daemon = daemon;
    daemon.child.kill().expect("SIGKILL the daemon");
    let _ = daemon.child.wait();
    println!("chaos: killed with {at_kill} cell(s) checkpointed");
    assert!(
        at_kill < 30,
        "daemon died after the grid finished; kill earlier"
    );

    // Restart on the same root: the journal brings both jobs back.
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    // Health reports recovering or ready (recovery can finish fast);
    // either way it must converge to ready/200.
    let mut states_seen = Vec::new();
    let ready_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_text(&addr, "GET", "/healthz", None);
        assert_eq!(status, 200, "healthz is liveness, always 200: {body}");
        let state = ["recovering", "ready", "draining"]
            .iter()
            .find(|s| body.contains(&format!("\"{s}\"")))
            .copied()
            .unwrap_or("unknown");
        if states_seen.last() != Some(&state) {
            states_seen.push(state);
        }
        if state == "ready" {
            break;
        }
        assert_ne!(state, "draining", "restarted daemon must not drain itself");
        assert!(
            Instant::now() < ready_deadline,
            "daemon never became ready; states: {states_seen:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("chaos: health states seen: {states_seen:?}");

    // Both jobs reach done — the interrupted one via checkpoint resume,
    // the queued one via a normal run.
    let final_a = await_terminal(&addr, "j-000001");
    assert!(final_a.contains("\"done\""), "{final_a}");
    let final_b = await_terminal(&addr, "j-000002");
    assert!(final_b.contains("\"done\""), "{final_b}");

    // The recovered job counted its recovery, and — because the kill
    // landed after the checkpoint header — its resume.
    let (status, runtime) = http_text(&addr, "GET", "/jobs/j-000001/artifacts/runtime.json", None);
    assert_eq!(status, 200, "{runtime}");
    assert!(
        runtime.contains("\"jobs_recovered\": 1"),
        "recovered job must count jobs_recovered: {runtime}"
    );
    assert!(
        runtime.contains("\"jobs_resumed\": 1"),
        "recovered job with checkpoints must resume: {runtime}"
    );
    assert!(
        runtime.contains("\"recover\""),
        "recover span missing: {runtime}"
    );

    // Byte-identity: every artifact the CLI writes for the same spec
    // must match the recovered job's, byte for byte. runtime.json is
    // excluded (its counters legitimately differ across an interrupt).
    let cli_out = root.join("cli-run");
    let out = reproduce()
        .args([
            "--instructions",
            "200000",
            "--seed",
            "7",
            "--shards",
            "6",
            "--format",
            "json",
            "--out",
            cli_out.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run CLI reference");
    assert!(out.status.success(), "CLI reference run failed");
    let mut compared = 0;
    for entry in std::fs::read_dir(&cli_out).unwrap().filter_map(Result::ok) {
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let name = entry.file_name().into_string().unwrap();
        if name == "runtime.json" {
            continue;
        }
        let cli_bytes = std::fs::read(entry.path()).unwrap();
        let served_bytes = std::fs::read(job_a.join(&name))
            .unwrap_or_else(|e| panic!("recovered job missing artifact {name}: {e}"));
        assert_eq!(
            cli_bytes, served_bytes,
            "artifact {name} diverged after recovery"
        );
        compared += 1;
    }
    assert!(
        compared >= 2,
        "expected to compare several artifacts, got {compared}"
    );

    // Journal compaction: exactly one spec-bearing record per job
    // survives the restart (later state transitions append spec-less
    // records).
    let journal = std::fs::read_to_string(root.join("journal.ndjson")).unwrap();
    for id in ["j-000001", "j-000002"] {
        let with_spec = journal
            .lines()
            .filter(|l| l.contains(id) && l.contains("\"spec\""))
            .count();
        assert_eq!(with_spec, 1, "journal not compacted for {id}:\n{journal}");
    }

    // Clean shutdown of the recovered daemon.
    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    let exit = daemon.child.wait().expect("wait for daemon");
    assert!(exit.success(), "recovered daemon must drain to exit 0");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancel_running_job_is_terminal_and_preserves_checkpoints() {
    let root = scratch("cancel-running");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    let (status, _) = http_text(&addr, "POST", "/jobs", Some(BIG_RUN));
    assert_eq!(status, 202);
    let job_dir = root.join("j-000001");

    // Wait until at least one cell is checkpointed (the job is mid-run),
    // and confirm artifacts are 409-gated while it runs.
    let deadline = Instant::now() + Duration::from_secs(60);
    while cells_done(&job_dir) < 1 {
        assert!(Instant::now() < deadline, "job never started checkpointing");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, body) = http_text(&addr, "GET", "/jobs/j-000001/artifacts", None);
    assert_eq!(status, 409, "running job's artifacts must be gated: {body}");

    let (status, body) = http_text(&addr, "POST", "/jobs/j-000001/cancel", None);
    assert_eq!(status, 202, "cancel of a running job is accepted: {body}");
    assert!(body.contains("\"canceling\""), "{body}");

    let final_status = await_terminal(&addr, "j-000001");
    assert!(final_status.contains("\"canceled\""), "{final_status}");
    assert!(final_status.contains("\"code\": null"), "{final_status}");

    // The grid stopped early, but completed cells stay checkpointed and
    // the (terminal) artifacts are now downloadable.
    let done = cells_done(&job_dir);
    assert!(done >= 1, "partial checkpoints must survive cancel");
    assert!(done < 30, "cancel should land before the grid finishes");
    let (status, listing) = http_text(&addr, "GET", "/jobs/j-000001/artifacts", None);
    assert_eq!(status, 200, "{listing}");
    assert!(listing.contains("status.json"), "{listing}");
    // No final export for a canceled run.
    assert!(
        !job_dir.join("measurement.json").exists(),
        "canceled job must not export final artifacts"
    );
    let (status, runtime) = http_text(&addr, "GET", "/jobs/j-000001/artifacts/runtime.json", None);
    assert_eq!(status, 200);
    assert!(runtime.contains("\"jobs_canceled\": 1"), "{runtime}");

    // A second cancel is a 409: the job is already terminal.
    let (status, body) = http_text(&addr, "POST", "/jobs/j-000001/cancel", None);
    assert_eq!(status, 409, "{body}");

    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    assert!(daemon.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancel_queued_job_is_immediate_and_unknown_is_404() {
    let root = scratch("cancel-queued");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    let (status, body) = http_text(&addr, "POST", "/jobs/j-000042/cancel", None);
    assert_eq!(status, 404, "{body}");

    // The first job occupies the worker; the second sits queued.
    let (status, _) = http_text(&addr, "POST", "/jobs", Some(BIG_RUN));
    assert_eq!(status, 202);
    let (status, _) = http_text(&addr, "POST", "/jobs", Some(SMALL_RUN));
    assert_eq!(status, 202);

    let (status, body) = http_text(&addr, "POST", "/jobs/j-000002/cancel", None);
    assert_eq!(status, 200, "queued cancel is immediate: {body}");
    assert!(body.contains("\"canceled\""), "{body}");
    let (status, body) = http_text(&addr, "GET", "/jobs/j-000002", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"canceled\""), "{body}");

    // Unblock the worker and shut down.
    let (status, _) = http_text(&addr, "POST", "/jobs/j-000001/cancel", None);
    assert_eq!(status, 202);
    await_terminal(&addr, "j-000001");
    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    assert!(daemon.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deadline_exceeded_is_terminal_within_a_cell_boundary() {
    let root = scratch("deadline");
    let mut daemon = start_daemon(&root);
    let addr = daemon.addr.clone();

    let spec =
        r#"{"kind": "run", "instructions": 200000, "seed": 7, "shards": 6, "deadline_secs": 0.05}"#;
    let (status, body) = http_text(&addr, "POST", "/jobs", Some(spec));
    assert_eq!(status, 202, "{body}");

    let final_status = await_terminal(&addr, "j-000001");
    assert!(
        final_status.contains("\"deadline_exceeded\""),
        "{final_status}"
    );
    assert!(final_status.contains("\"code\": null"), "{final_status}");

    // Whatever completed before the deadline stays checkpointed; the
    // final export never happened.
    let job_dir = root.join("j-000001");
    assert!(
        cells_done(&job_dir) < 30,
        "deadline must stop the grid early"
    );
    assert!(
        !job_dir.join("measurement.json").exists(),
        "deadline-exceeded job must not export final artifacts"
    );
    let (status, listing) = http_text(&addr, "GET", "/jobs/j-000001/artifacts", None);
    assert_eq!(status, 200, "{listing}");
    assert!(listing.contains("status.json"), "{listing}");

    let (status, _) = http_text(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 202);
    assert!(daemon.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&root);
}
