//! The `--progress` heartbeat and the `runtime.json` roll-up.
//!
//! Both are thin consumers of the [`vax_trace::Tracer`]:
//!
//! * [`Heartbeat`] is a background thread that periodically renders the
//!   tracer's live counters and per-worker activity as one compact JSON
//!   line on **stderr** (stdout stays machine-clean for `--format json`).
//!   This is the feed ROADMAP item 2's streaming daemon will relay to
//!   subscribers: each line is self-contained, so a consumer can attach
//!   mid-run and still know cells done/total, throughput, ETA, and what
//!   every worker is doing right now.
//! * [`runtime_json`] rolls the finished tracer up into the
//!   `runtime.json` export artifact: counters, per-phase span totals, and
//!   instant-event tallies. All *counts* in it are deterministic for a
//!   deterministic run grid (invariant in `--jobs`); the microsecond
//!   totals are wall-clock and are stripped by the `reproduce diff`
//!   machinery before comparison.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vax_analysis::Json;
use vax_trace::Tracer;

/// One heartbeat line: the tracer's counters and worker states right now,
/// as a compact JSON object. `elapsed_ms` is the run's age; it (and the
/// derived rates) are the only nondeterministic members.
pub fn progress_line(tracer: &Tracer, elapsed_ms: u64) -> Json {
    let counters = tracer.counters();
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    let cells_done = get("cells_done");
    let cells_total = get("cells_total");
    let instructions = get("instructions");
    let elapsed_s = elapsed_ms as f64 / 1000.0;
    let instr_per_sec = if elapsed_s > 0.0 {
        instructions as f64 / elapsed_s
    } else {
        0.0
    };
    // ETA by linear extrapolation over cells; unknowable until the first
    // cell lands, and null rather than a guess when it is.
    let eta = if cells_done > 0 && cells_total >= cells_done {
        Json::Num(elapsed_s / cells_done as f64 * (cells_total - cells_done) as f64)
    } else {
        Json::Null
    };
    let workers: Vec<Json> = tracer
        .worker_states()
        .into_iter()
        .map(|(tid, state)| {
            Json::Obj(vec![
                ("tid".to_string(), Json::Int(tid as i64)),
                (
                    "state".to_string(),
                    match state {
                        Some(s) => Json::Str(s),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("type".to_string(), Json::Str("progress".to_string())),
        ("elapsed_ms".to_string(), Json::Int(elapsed_ms as i64)),
        ("cells_done".to_string(), Json::Int(cells_done as i64)),
        ("cells_total".to_string(), Json::Int(cells_total as i64)),
        ("instructions".to_string(), Json::Int(instructions as i64)),
        ("instr_per_sec".to_string(), Json::Num(instr_per_sec)),
        ("eta_seconds".to_string(), eta),
        // Recovery and cancellation counters (serve daemon lifecycle;
        // zero for ordinary CLI runs).
        (
            "jobs_recovered".to_string(),
            Json::Int(get("jobs_recovered") as i64),
        ),
        (
            "jobs_resumed".to_string(),
            Json::Int(get("jobs_resumed") as i64),
        ),
        (
            "jobs_canceled".to_string(),
            Json::Int(get("jobs_canceled") as i64),
        ),
        (
            "retry_backoff_ms".to_string(),
            Json::Int(get("retry_backoff_ms") as i64),
        ),
        ("workers".to_string(), Json::Arr(workers)),
    ])
}

/// Roll the finished tracer up into the `runtime.json` artifact.
///
/// Shape: `{"format_version", "counters": {name: n}, "phases": {name:
/// {"count": n, "total_us": t}}, "events": {name: n}}`. Keys are sorted
/// (BTreeMap order) so the bytes are stable; `total_us` is the only
/// wall-clock member and is excluded from `reproduce diff` comparisons.
pub fn runtime_json(tracer: &Tracer) -> Json {
    let counters: Vec<(String, Json)> = tracer
        .counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Json::Int(v as i64)))
        .collect();
    let phases: Vec<(String, Json)> = tracer
        .phase_totals()
        .into_iter()
        .map(|(name, t)| {
            (
                name,
                Json::Obj(vec![
                    ("count".to_string(), Json::Int(t.count as i64)),
                    ("total_us".to_string(), Json::Int(t.total_us as i64)),
                ]),
            )
        })
        .collect();
    let events: Vec<(String, Json)> = tracer
        .instant_totals()
        .into_iter()
        .map(|(name, n)| (name, Json::Int(n as i64)))
        .collect();
    Json::Obj(vec![
        ("format_version".to_string(), Json::Int(1)),
        ("counters".to_string(), Json::Obj(counters)),
        ("phases".to_string(), Json::Obj(phases)),
        ("events".to_string(), Json::Obj(events)),
    ])
}

/// The background heartbeat thread. Construct with [`Heartbeat::start`];
/// dropping it stops the thread promptly (it sleeps in short slices) and
/// joins it, so no line is ever emitted after the owner moved on.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Start emitting a [`progress_line`] on stderr every `period_ms`
    /// milliseconds (clamped to ≥ 1). With a disabled tracer the thread
    /// still runs but reports zeros — callers normally gate on
    /// [`Tracer::is_enabled`] before starting one.
    pub fn start(tracer: Tracer, period_ms: u64) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let period = Duration::from_millis(period_ms.max(1));
        let handle = std::thread::Builder::new()
            .name("heartbeat".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut next = started + period;
                while !stop_flag.load(Ordering::Relaxed) {
                    // Sleep in ≤50 ms slices so Drop never waits a full
                    // period for the thread to notice the stop flag.
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(50)));
                        continue;
                    }
                    next += period;
                    let elapsed_ms = started.elapsed().as_millis() as u64;
                    eprintln!("{}", progress_line(&tracer, elapsed_ms).to_string_compact());
                }
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_trace::{worker_tid, MAIN_TID};

    #[test]
    fn progress_line_reports_counters_and_workers() {
        let t = Tracer::enabled();
        t.counter_set("cells_total", 10);
        t.count(MAIN_TID, "cells_done", 4);
        t.count(MAIN_TID, "instructions", 2_000_000);
        t.count(MAIN_TID, "jobs_recovered", 1);
        t.count(MAIN_TID, "jobs_resumed", 1);
        t.count(MAIN_TID, "retry_backoff_ms", 35);
        t.set_thread_name(worker_tid(0), "worker-0");
        let _g = t.span(worker_tid(0), "simulate", vec![]);

        let j = progress_line(&t, 2_000);
        assert_eq!(j.get("type").and_then(Json::as_str), Some("progress"));
        assert_eq!(j.get("cells_done").and_then(Json::as_i64), Some(4));
        assert_eq!(j.get("cells_total").and_then(Json::as_i64), Some(10));
        assert_eq!(
            j.get("instr_per_sec").and_then(Json::as_f64),
            Some(1_000_000.0)
        );
        // 2 s for 4 cells → 3 s for the remaining 6.
        assert_eq!(j.get("eta_seconds").and_then(Json::as_f64), Some(3.0));
        // Recovery/cancel counters ride along; absent counters are 0.
        assert_eq!(j.get("jobs_recovered").and_then(Json::as_i64), Some(1));
        assert_eq!(j.get("jobs_resumed").and_then(Json::as_i64), Some(1));
        assert_eq!(j.get("jobs_canceled").and_then(Json::as_i64), Some(0));
        assert_eq!(j.get("retry_backoff_ms").and_then(Json::as_i64), Some(35));
        let workers = j.get("workers").and_then(Json::as_arr).unwrap();
        let sim = workers
            .iter()
            .find(|w| w.get("tid").and_then(Json::as_i64) == Some(worker_tid(0) as i64))
            .unwrap();
        assert_eq!(sim.get("state").and_then(Json::as_str), Some("simulate"));
        // The line is valid, parseable JSON — the contract the streaming
        // daemon depends on.
        let text = j.to_string_compact();
        assert!(Json::parse(&text).is_ok(), "{text}");
        assert!(!text.contains('\n'), "one line per heartbeat");
    }

    #[test]
    fn progress_line_eta_is_null_before_first_cell() {
        let t = Tracer::enabled();
        t.counter_set("cells_total", 10);
        let j = progress_line(&t, 500);
        assert!(matches!(j.get("eta_seconds"), Some(Json::Null)));
        let j = progress_line(&t, 0);
        assert_eq!(j.get("instr_per_sec").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn runtime_json_rolls_up_phases_counters_events() {
        let t = Tracer::enabled();
        drop(t.span(MAIN_TID, "run", vec![]));
        drop(t.span(MAIN_TID, "boot", vec![]));
        drop(t.span(MAIN_TID, "boot", vec![]));
        t.instant(MAIN_TID, "retry", vec![]);
        t.count(MAIN_TID, "cells_done", 5);

        let j = runtime_json(&t);
        assert_eq!(j.get("format_version").and_then(Json::as_i64), Some(1));
        let boot = j.get("phases").and_then(|p| p.get("boot")).unwrap();
        assert_eq!(boot.get("count").and_then(Json::as_i64), Some(2));
        assert!(boot.get("total_us").is_some());
        assert_eq!(
            j.get("events")
                .and_then(|e| e.get("retry"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("cells_done"))
                .and_then(Json::as_i64),
            Some(5)
        );
        // Serialization is stable: two renders of the same tracer agree.
        assert_eq!(
            runtime_json(&t).to_string_pretty(),
            j.to_string_pretty(),
            "deterministic bytes"
        );
    }

    #[test]
    fn heartbeat_thread_starts_and_stops_cleanly() {
        let t = Tracer::enabled();
        t.counter_set("cells_total", 1);
        let hb = Heartbeat::start(t, 5);
        std::thread::sleep(Duration::from_millis(30));
        drop(hb); // must stop and join without hanging
    }
}
