//! Content-addressed warm caches for the expensive per-cell setup phases:
//! workload code generation and kernel boot.
//!
//! Within one run every cell has a distinct seed, so a cold run records
//! only misses — the cache pays off when a long-lived engine (the
//! `reproduce serve` daemon) executes a *second* job with the same
//! experiment definition, which then skips codegen and boot entirely.
//!
//! Keys are FNV-1a hashes of the *content* that determines the phase's
//! output, never of argv or wall-clock state:
//!
//! * workload images — `(workload name, nproc, seed)`, the exact inputs of
//!   [`vax_workload::rte::shard_processes`];
//! * boot images — the generated process specs themselves (origin, code
//!   bytes, entry label, bss/stack page counts), so any codegen change
//!   automatically changes the boot key.
//!
//! Correctness leans on `SystemBuilder::build` being routed through
//! `BootImage` capture + rehydration: a cache hit replays the exact code
//! path a cold build takes, so cached and uncached runs are byte-identical
//! by construction (property-tested in `tests/warm_cache.rs`).
//!
//! The maps are bounded: once full, new entries are simply not retained
//! (hit/miss accounting is unaffected). Everything is `Send + Sync`; one
//! [`WarmCaches`] is shared by all workers of all jobs of an engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vax780::{ProcessSpec, System};
use vax_workload::Workload;

/// Most distinct `(workload, nproc, seed)` image sets retained.
const WORKLOAD_CACHE_CAP: usize = 256;
/// Most distinct booted-kernel images retained (each is a trimmed
/// physical-memory snapshot, typically a few hundred kilobytes).
const BOOT_CACHE_CAP: usize = 64;

/// Cumulative hit/miss counts for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the phase.
    pub misses: u64,
}

/// Shared warm caches for codegen and boot (see module docs).
#[derive(Debug, Default)]
pub struct WarmCaches {
    workload: Mutex<HashMap<u64, Arc<Vec<ProcessSpec>>>>,
    boot: Mutex<HashMap<u64, Arc<vax780::BootImage>>>,
    workload_hits: AtomicU64,
    workload_misses: AtomicU64,
    boot_hits: AtomicU64,
    boot_misses: AtomicU64,
}

/// 64-bit FNV-1a over a byte stream.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Hash a length-delimited string (delimiting prevents concatenation
    /// collisions between adjacent fields).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Key for a generated workload image set.
fn workload_key(workload: Workload, nproc: usize, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.str(workload.name());
    h.u64(nproc as u64);
    h.u64(seed);
    h.0
}

/// Key for a booted system: the full content of its process specs.
fn boot_key(specs: &[ProcessSpec]) -> u64 {
    let mut h = Fnv::new();
    h.u64(specs.len() as u64);
    for spec in specs {
        h.u64(spec.image.origin as u64);
        h.u64(spec.image.bytes.len() as u64);
        h.bytes(&spec.image.bytes);
        h.str(&spec.entry);
        h.u64(spec.bss_pages as u64);
        h.u64(spec.stack_pages as u64);
    }
    h.0
}

impl WarmCaches {
    /// An empty cache set.
    pub fn new() -> WarmCaches {
        WarmCaches::default()
    }

    /// The codegen phase through the cache: returns the process specs for
    /// `(workload, nproc, seed)` and whether they came from the cache.
    /// A miss runs [`vax_workload::rte::shard_processes`].
    pub fn processes(
        &self,
        workload: Workload,
        nproc: usize,
        seed: u64,
    ) -> (Arc<Vec<ProcessSpec>>, bool) {
        let key = workload_key(workload, nproc, seed);
        if let Some(specs) = self.workload.lock().unwrap().get(&key) {
            self.workload_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(specs), true);
        }
        let specs = Arc::new(vax_workload::rte::shard_processes(workload, nproc, seed));
        self.workload_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.workload.lock().unwrap();
        if map.len() < WORKLOAD_CACHE_CAP {
            map.insert(key, Arc::clone(&specs));
        }
        (specs, false)
    }

    /// The boot phase through the cache: returns a booted [`System`] for
    /// `specs` and whether its image came from the cache. A miss runs the
    /// full layout ([`vax_workload::rte::boot_image`]); either way the
    /// machine is rehydrated with `System::from_boot_image` — the same
    /// path `SystemBuilder::build` takes, so hits cannot diverge.
    pub fn boot(&self, specs: &Arc<Vec<ProcessSpec>>) -> (System, bool) {
        let key = boot_key(specs);
        if let Some(img) = self.boot.lock().unwrap().get(&key) {
            self.boot_hits.fetch_add(1, Ordering::Relaxed);
            return (System::from_boot_image(img), true);
        }
        let img = Arc::new(vax_workload::rte::boot_image(specs.as_ref().clone()));
        self.boot_misses.fetch_add(1, Ordering::Relaxed);
        let system = System::from_boot_image(&img);
        let mut map = self.boot.lock().unwrap();
        if map.len() < BOOT_CACHE_CAP {
            map.insert(key, img);
        }
        (system, false)
    }

    /// Cumulative workload-image (codegen) hit/miss counts.
    pub fn workload_counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.workload_hits.load(Ordering::Relaxed),
            misses: self.workload_misses.load(Ordering::Relaxed),
        }
    }

    /// Cumulative booted-kernel hit/miss counts.
    pub fn boot_counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.boot_hits.load(Ordering::Relaxed),
            misses: self.boot_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_cache_hits_on_repeat() {
        let caches = WarmCaches::new();
        let (a, hit_a) = caches.processes(Workload::TimesharingResearch, 2, 7);
        let (b, hit_b) = caches.processes(Workload::TimesharingResearch, 2, 7);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached value");
        assert_eq!(caches.workload_counts(), CacheCounts { hits: 1, misses: 1 });
    }

    #[test]
    fn workload_cache_distinguishes_inputs() {
        let caches = WarmCaches::new();
        let (_, h1) = caches.processes(Workload::TimesharingResearch, 2, 7);
        let (_, h2) = caches.processes(Workload::TimesharingResearch, 2, 8);
        let (_, h3) = caches.processes(Workload::TimesharingResearch, 3, 7);
        let (_, h4) = caches.processes(Workload::Educational, 2, 7);
        assert!(!h1 && !h2 && !h3 && !h4, "distinct inputs never hit");
    }

    #[test]
    fn boot_cache_hit_measures_identically_to_miss() {
        let caches = WarmCaches::new();
        let (specs, _) = caches.processes(Workload::SciEng, 2, 11);
        let (mut cold, hit1) = caches.boot(&specs);
        let (mut warm, hit2) = caches.boot(&specs);
        assert!(!hit1 && hit2);
        assert_eq!(caches.boot_counts(), CacheCounts { hits: 1, misses: 1 });
        let a = cold.measure(1_000, 5_000);
        let b = warm.measure(1_000, 5_000);
        assert_eq!(a, b, "cached boot must be indistinguishable from cold");
    }

    #[test]
    fn boot_key_tracks_spec_content() {
        let caches = WarmCaches::new();
        let (specs, _) = caches.processes(Workload::SciEng, 2, 11);
        let (_, _) = caches.boot(&specs);
        let mut mutated = specs.as_ref().clone();
        mutated[0].image.bytes[0] ^= 0xFF;
        let (_, hit) = caches.boot(&Arc::new(mutated));
        assert!(!hit, "changed code bytes must change the boot key");
    }
}
