//! `reproduce trace-check` — validate a Chrome Trace Event file.
//!
//! A trace that *loads* in Perfetto is not necessarily a trace that is
//! *right*: an unmatched `B`, a timestamp that runs backwards on a track,
//! or a phase name nothing else in the pipeline emits all indicate a bug
//! in the instrumentation, and the viewer will happily render garbage
//! around them. This validator checks the structural invariants the
//! `vax_trace` emitter promises — which is exactly what lets CI gate on
//! them:
//!
//! * the document is valid JSON, either `{"traceEvents": [...]}` or a
//!   bare event array;
//! * every event has a string `name`, a known `ph` code, a non-negative
//!   numeric `ts`, and an integer `tid`;
//! * timestamps are monotonic (non-decreasing) per `tid` in file order;
//! * `B`/`E` events pair up per `tid` like balanced parentheses, with
//!   matching names, and no span is left open at end of file;
//! * every duration-span name is one of the harness's known phases
//!   ([`KNOWN_PHASES`]).

use std::path::Path;

use vax_analysis::Json;

/// Every phase name the harness emits as a duration span (`B`/`E`).
/// `trace-check` rejects spans outside this list: an unknown name means
/// the emitter and the checker have drifted apart, which is precisely
/// what this gate exists to catch. Keep in sync with
/// `docs/OBSERVABILITY.md`.
pub const KNOWN_PHASES: &[&str] = &[
    "run",
    "queue-wait",
    "job",
    "cell",
    "codegen",
    "boot",
    "simulate",
    "checkpoint",
    "merge",
    "export",
    // `reproduce characterize` / `reproduce refute` probe pipeline.
    "baseline",
    "probe",
    "attribute",
    "refute",
    "minimize",
    // Serve-daemon restart recovery (`docs/SERVICE.md`).
    "recover",
];

/// Chrome Trace Event phase codes the harness may emit (plus `X` and `I`,
/// accepted for compatibility with hand-edited or foreign traces).
const KNOWN_PH: &[&str] = &["B", "E", "X", "i", "I", "C", "M"];

/// What a clean check found, for the one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in the file.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Distinct `tid` tracks.
    pub tracks: usize,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace ok: {} event(s), {} span(s), {} track(s)",
            self.events, self.spans, self.tracks
        )
    }
}

/// Validate the trace file at `path`. See [`check_trace_text`].
///
/// # Errors
/// Returns the first violation found (or an I/O message), suitable for
/// printing before a nonzero exit.
pub fn check_trace_file(path: &Path) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    check_trace_text(&text)
}

/// Validate Chrome-trace JSON text against the structural invariants
/// listed in the module docs.
///
/// # Errors
/// Returns a message locating the first violation (by event index).
pub fn check_trace_text(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Json::Arr(events) => events,
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("top-level object has no 'traceEvents' array")?,
        _ => return Err("expected a trace object or event array".to_string()),
    };

    // Per-tid state: last timestamp seen, and the open B-span name stack.
    let mut last_ts: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    let mut stacks: std::collections::BTreeMap<i64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut spans = 0usize;

    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing or non-string 'name'"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing or non-string 'ph'"))?;
        if !KNOWN_PH.contains(&ph) {
            return Err(format!("event {i} ('{name}'): unknown phase code '{ph}'"));
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i} ('{name}'): missing or non-numeric 'ts'"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!(
                "event {i} ('{name}'): negative or non-finite ts {ts}"
            ));
        }
        let tid = e.get("tid").and_then(Json::as_i64).ok_or(format!(
            "event {i} ('{name}'): missing or non-integer 'tid'"
        ))?;

        // Metadata events carry no meaningful timestamp ordering claim,
        // but ours are emitted in clock order too, so hold them to it.
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "event {i} ('{name}'): ts {ts} runs backwards on tid {tid} (previous {prev})"
            ));
        }
        *prev = ts;

        match ph {
            "B" => {
                if !KNOWN_PHASES.contains(&name) {
                    return Err(format!(
                        "event {i}: unknown span phase '{name}' (known: {})",
                        KNOWN_PHASES.join(", ")
                    ));
                }
                stacks.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == name => spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E '{name}' closes innermost B '{open}' on tid {tid}"
                        ))
                    }
                    None => {
                        return Err(format!("event {i}: E '{name}' with no open B on tid {tid}"))
                    }
                }
            }
            "X" => {
                if !KNOWN_PHASES.contains(&name) {
                    return Err(format!("event {i}: unknown span phase '{name}'"));
                }
                spans += 1;
            }
            _ => {}
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "end of file: B '{open}' on tid {tid} was never closed ({} span(s) still open)",
                stack.len()
            ));
        }
    }

    Ok(TraceSummary {
        events: events.len(),
        spans,
        tracks: last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_trace::{Tracer, MAIN_TID};

    fn check(text: &str) -> Result<TraceSummary, String> {
        check_trace_text(text)
    }

    #[test]
    fn accepts_a_real_tracer_export() {
        let t = Tracer::enabled();
        t.set_thread_name(MAIN_TID, "main");
        let run = t.span(MAIN_TID, "run", vec![]);
        {
            let _cell = t.span_under(1, "cell", run.id(), vec![]);
            let _sim = t.span(1, "simulate", vec![]);
        }
        t.instant(1, "retry", vec![]);
        t.count(MAIN_TID, "cells_done", 1);
        drop(run);
        let summary = check(&t.chrome_trace()).expect("tracer output must validate");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.tracks, 2);
        assert!(summary.to_string().contains("trace ok"));
    }

    #[test]
    fn accepts_a_bare_event_array() {
        let s = check(
            r#"[{"name":"run","ph":"B","ts":0,"tid":0},
                          {"name":"run","ph":"E","ts":5,"tid":0}]"#,
        )
        .unwrap();
        assert_eq!(s.spans, 1);
    }

    #[test]
    fn rejects_unbalanced_and_misnested_pairs() {
        let err = check(r#"[{"name":"run","ph":"B","ts":0,"tid":0}]"#).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        let err = check(r#"[{"name":"run","ph":"E","ts":0,"tid":0}]"#).unwrap_err();
        assert!(err.contains("no open B"), "{err}");

        let err = check(
            r#"[{"name":"run","ph":"B","ts":0,"tid":0},
                {"name":"cell","ph":"B","ts":1,"tid":0},
                {"name":"run","ph":"E","ts":2,"tid":0},
                {"name":"cell","ph":"E","ts":3,"tid":0}]"#,
        )
        .unwrap_err();
        assert!(err.contains("closes innermost"), "{err}");
    }

    #[test]
    fn rejects_backwards_timestamps_per_tid() {
        let err = check(
            r#"[{"name":"run","ph":"B","ts":10,"tid":0},
                {"name":"run","ph":"E","ts":5,"tid":0}]"#,
        )
        .unwrap_err();
        assert!(err.contains("runs backwards"), "{err}");

        // Monotonicity is per track: tids are ordered independently.
        assert!(check(
            r#"[{"name":"run","ph":"B","ts":10,"tid":0},
                {"name":"cell","ph":"B","ts":2,"tid":1},
                {"name":"cell","ph":"E","ts":3,"tid":1},
                {"name":"run","ph":"E","ts":11,"tid":0}]"#,
        )
        .is_ok());
    }

    #[test]
    fn rejects_unknown_phase_names_and_codes() {
        let err = check(r#"[{"name":"frobnicate","ph":"B","ts":0,"tid":0}]"#).unwrap_err();
        assert!(err.contains("unknown span phase"), "{err}");

        let err = check(r#"[{"name":"run","ph":"Z","ts":0,"tid":0}]"#).unwrap_err();
        assert!(err.contains("unknown phase code"), "{err}");

        // Instants and counters may use any name (they narrate, not nest).
        assert!(check(r#"[{"name":"anything","ph":"i","ts":0,"tid":0}]"#).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(check("not json").unwrap_err().contains("not valid JSON"));
        assert!(check("{}").unwrap_err().contains("traceEvents"));
        assert!(check("42").unwrap_err().contains("expected a trace"));
        let err = check(r#"[{"ph":"B","ts":0,"tid":0}]"#).unwrap_err();
        assert!(err.contains("'name'"), "{err}");
        let err = check(r#"[{"name":"run","ph":"B","tid":0}]"#).unwrap_err();
        assert!(err.contains("'ts'"), "{err}");
        let err = check(r#"[{"name":"run","ph":"B","ts":0}]"#).unwrap_err();
        assert!(err.contains("'tid'"), "{err}");
    }
}
