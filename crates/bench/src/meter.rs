//! Host self-metering: how fast does the simulator itself run?
//!
//! The paper measured a real 780 with a hardware monitor; we measure the
//! *simulator* with the host's own clock and memory accounting so that
//! performance regressions in the simulator show up in CI next to the
//! architectural numbers. A run produces a [`BenchReport`] — wall-clock
//! seconds, simulated cycles/sec and instructions/sec, and peak RSS — and
//! can persist it as `BENCH_<unix-ts>.json` for artifact upload.

use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use vax_analysis::Json;

use crate::fsio::write_atomic;

/// A started wall-clock measurement; call [`HostMeter::finish`] when the
/// simulated work is done.
#[derive(Debug)]
pub struct HostMeter {
    started: Instant,
}

impl HostMeter {
    /// Start timing now.
    pub fn start() -> HostMeter {
        HostMeter {
            started: Instant::now(),
        }
    }

    /// Stop timing and fold in the simulated totals.
    pub fn finish(self, simulated_cycles: u64, simulated_instructions: u64) -> BenchReport {
        let wall = self.started.elapsed().as_secs_f64();
        // Guard against a sub-resolution elapsed time on very short runs so
        // the rates stay finite.
        let denom = wall.max(1e-9);
        BenchReport {
            wall_seconds: wall,
            simulated_cycles,
            simulated_instructions,
            cycles_per_sec: simulated_cycles as f64 / denom,
            instructions_per_sec: simulated_instructions as f64 / denom,
            peak_rss_bytes: peak_rss_bytes(),
            unix_ts: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }
}

/// Self-metering results for one `reproduce` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Wall-clock seconds spent simulating.
    pub wall_seconds: f64,
    /// Total simulated machine cycles (all workloads, including warmup is
    /// excluded — this is the measured composite).
    pub simulated_cycles: u64,
    /// Total simulated instructions retired in the measured composite.
    pub simulated_instructions: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Simulated instructions per wall-clock second.
    pub instructions_per_sec: f64,
    /// Peak resident set size of this process in bytes, if the host exposes
    /// it (`/proc/self/status` `VmHWM`); `None` elsewhere.
    pub peak_rss_bytes: Option<u64>,
    /// Seconds since the Unix epoch when the report was produced.
    pub unix_ts: u64,
}

impl BenchReport {
    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut o = vec![
            ("format_version".to_string(), Json::Int(1)),
            ("unix_ts".to_string(), Json::Int(self.unix_ts as i64)),
            ("wall_seconds".to_string(), Json::Num(self.wall_seconds)),
            (
                "simulated_cycles".to_string(),
                Json::Int(self.simulated_cycles as i64),
            ),
            (
                "simulated_instructions".to_string(),
                Json::Int(self.simulated_instructions as i64),
            ),
            ("cycles_per_sec".to_string(), Json::Num(self.cycles_per_sec)),
            (
                "instructions_per_sec".to_string(),
                Json::Num(self.instructions_per_sec),
            ),
        ];
        o.push((
            "peak_rss_bytes".to_string(),
            match self.peak_rss_bytes {
                Some(b) => Json::Int(b as i64),
                None => Json::Null,
            },
        ));
        Json::Obj(o)
    }

    /// The conventional file name, `BENCH_<unix-ts>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.unix_ts)
    }

    /// One-line human summary for progress output.
    pub fn summary(&self) -> String {
        let rss = match self.peak_rss_bytes {
            Some(b) => format!(", peak RSS {:.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => String::new(),
        };
        format!(
            "host: {:.2}s wall, {:.2} M simulated cycles/sec, {:.2} M instructions/sec{rss}",
            self.wall_seconds,
            self.cycles_per_sec / 1e6,
            self.instructions_per_sec / 1e6,
        )
    }

    /// Write the report into `dir` as [`BenchReport::file_name`], returning
    /// the path written.
    ///
    /// # Errors
    /// Propagates directory-creation and write failures as strings.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join(self.file_name());
        write_atomic(&path, &self.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Peak resident set size in bytes, read from `/proc/self/status` (`VmHWM`,
/// reported in kB). Returns `None` on hosts without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parse the `VmHWM` line out of a `/proc/self/status` document.
///
/// Returns `None` — never an error, never a conflated `0` — when the line
/// is absent (procfs without per-process accounting, non-Linux fixtures)
/// or malformed. The unit suffix must literally be `kB` (that is what the
/// kernel prints); a bare number or an unexpected unit is treated as
/// malformed rather than guessed at, since a wrongly-scaled RSS is worse
/// in a regression dashboard than an honest `null`.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_produces_positive_rates() {
        let meter = HostMeter::start();
        // Burn a sliver of time so elapsed is nonzero.
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc > 0);
        let r = meter.finish(1_000_000, 100_000);
        assert!(r.wall_seconds > 0.0);
        assert!(r.cycles_per_sec > 0.0);
        assert!(r.instructions_per_sec > 0.0);
        assert!(r.cycles_per_sec > r.instructions_per_sec);
        assert!(r.unix_ts > 1_700_000_000, "a plausible current timestamp");
    }

    #[test]
    fn report_json_has_required_fields() {
        let r = BenchReport {
            wall_seconds: 1.5,
            simulated_cycles: 3_000_000,
            simulated_instructions: 300_000,
            cycles_per_sec: 2_000_000.0,
            instructions_per_sec: 200_000.0,
            peak_rss_bytes: Some(42 * 1024 * 1024),
            unix_ts: 1_754_000_000,
        };
        let j = r.to_json();
        for key in [
            "wall_seconds",
            "simulated_cycles",
            "simulated_instructions",
            "cycles_per_sec",
            "instructions_per_sec",
            "peak_rss_bytes",
            "unix_ts",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(r.file_name(), "BENCH_1754000000.json");
        let text = j.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("cycles_per_sec").unwrap().as_f64(), Some(2e6));
    }

    #[test]
    fn parses_vm_hwm() {
        let status = "Name:\treproduce\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads: 1\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name: x\n"), None);
    }

    #[test]
    fn parses_fixture_status_files() {
        let ok = include_str!("../tests/fixtures/proc_status_ok.txt");
        assert_eq!(parse_vm_hwm(ok), Some(51_200 * 1024));
        let missing = include_str!("../tests/fixtures/proc_status_no_vmhwm.txt");
        assert_eq!(parse_vm_hwm(missing), None, "absent VmHWM degrades to None");
    }

    #[test]
    fn malformed_vm_hwm_is_none_not_zero() {
        for bad in [
            "VmHWM:\t   garbage kB\n",
            "VmHWM:\t   2048\n",      // kernel always prints the unit
            "VmHWM:\t   2048 MB\n",   // unexpected unit: refuse to guess
            "VmHWM:\t   2048 kBkB\n", // the old trim_end_matches accepted this
            "VmHWM:\n",
        ] {
            assert_eq!(parse_vm_hwm(bad), None, "{bad:?}");
        }
        // VmHWM of a fresh process can legitimately be small but not absent;
        // zero parses as zero, distinct from None.
        assert_eq!(parse_vm_hwm("VmHWM:\t0 kB\n"), Some(0));
    }

    #[test]
    fn missing_vm_hwm_serializes_as_json_null() {
        let r = BenchReport {
            wall_seconds: 1.0,
            simulated_cycles: 1,
            simulated_instructions: 1,
            cycles_per_sec: 1.0,
            instructions_per_sec: 1.0,
            peak_rss_bytes: None,
            unix_ts: 1_754_000_000,
        };
        let j = r.to_json();
        assert!(
            matches!(j.get("peak_rss_bytes"), Some(Json::Null)),
            "absent RSS must be null, not 0 or missing"
        );
        let text = j.to_string_pretty();
        assert!(text.contains("\"peak_rss_bytes\": null"), "{text}");
        assert!(!r.summary().contains("RSS"), "no fabricated RSS in summary");
    }

    #[test]
    fn linux_host_reports_rss() {
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }
}
