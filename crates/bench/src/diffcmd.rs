//! `reproduce diff` — compare two exported run directories.
//!
//! Each directory is expected to hold the JSON artifacts a `--format json
//! --out DIR` run writes (manifest, measurement, tables, time series,
//! validation, optionally profile). Every artifact present in either
//! directory is parsed and structurally diffed with [`vax_analysis::diff_json`];
//! an artifact present on only one side is itself a failure. The binary
//! exits nonzero when any metric drifts outside tolerance, which is what
//! lets CI gate on a committed golden baseline.

use std::path::Path;

use vax_analysis::{diff_json, DiffReport, Json, Tolerance};

/// The JSON artifacts a run directory may contain, in report order.
/// `profile.json` and `BENCH_*.json` are run-shape dependent: the profile is
/// compared only when at least one side has it, and bench reports are never
/// compared (host timing is not reproducible).
pub const COMPARED_FILES: &[&str] = &[
    "manifest.json",
    "measurement.json",
    "tables.json",
    "timeseries.json",
    "validation.json",
    "profile.json",
    "costs.json",
    "runtime.json",
];

/// Fields whose values legitimately differ between otherwise identical runs
/// (provenance, not measurement). Top-level manifest keys only.
const PROVENANCE_KEYS: &[&str] = &["generated_unix_ts", "hostname"];

/// Wall-clock fields inside `runtime.json` (span durations). Stripped at
/// every nesting level before comparison, so the diff gates on the
/// deterministic counts — phase counts, counters, event tallies — and
/// never on host timing.
const TIMING_KEYS: &[&str] = &["total_us"];

/// The comparison result for one artifact file.
#[derive(Debug)]
pub struct FileDiff {
    /// Artifact file name (e.g. `tables.json`).
    pub file: &'static str,
    /// The structural diff, or a message describing why the file could not
    /// be compared (missing on one side, unreadable, unparseable).
    pub report: Result<DiffReport, String>,
}

impl FileDiff {
    /// True when this artifact compared clean.
    pub fn is_clean(&self) -> bool {
        matches!(&self.report, Ok(r) if r.is_clean())
    }
}

fn load_json(dir: &Path, name: &str) -> Result<Json, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Drop provenance members that are expected to differ run to run.
fn strip_provenance(j: Json) -> Json {
    match j {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .filter(|(k, _)| !PROVENANCE_KEYS.contains(&k.as_str()))
                .collect(),
        ),
        other => other,
    }
}

/// Recursively drop wall-clock members ([`TIMING_KEYS`]) at every level.
/// Applied to `runtime.json` only; the measurement artifacts have no
/// timing fields and keep the cheaper top-level provenance strip.
fn strip_timing(j: Json) -> Json {
    match j {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .filter(|(k, _)| !TIMING_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k, strip_timing(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_timing).collect()),
        other => other,
    }
}

/// The normalization applied to artifact `name` before diffing.
fn normalize(name: &str, j: Json) -> Json {
    if name == "runtime.json" {
        strip_timing(strip_provenance(j))
    } else {
        strip_provenance(j)
    }
}

/// Compare the artifact sets of two run directories.
///
/// # Errors
/// Returns `Err` when a directory does not exist or the two directories
/// share no known artifacts at all (comparing nothing must not pass).
pub fn diff_run_dirs(
    baseline: &Path,
    candidate: &Path,
    tol: &Tolerance,
) -> Result<Vec<FileDiff>, String> {
    for dir in [baseline, candidate] {
        if !dir.is_dir() {
            return Err(format!("{} is not a directory", dir.display()));
        }
    }
    let mut out = Vec::new();
    for &name in COMPARED_FILES {
        let in_a = baseline.join(name).is_file();
        let in_b = candidate.join(name).is_file();
        let report = match (in_a, in_b) {
            (false, false) => continue,
            (true, false) => Err(format!("missing in candidate {}", candidate.display())),
            (false, true) => Err(format!("missing in baseline {}", baseline.display())),
            (true, true) => match (load_json(baseline, name), load_json(candidate, name)) {
                (Ok(a), Ok(b)) => Ok(diff_json(&normalize(name, a), &normalize(name, b), tol)),
                (Err(e), _) | (_, Err(e)) => Err(e),
            },
        };
        out.push(FileDiff { file: name, report });
    }
    if out.is_empty() {
        return Err(format!(
            "no comparable artifacts found in {} and {} (expected e.g. tables.json)",
            baseline.display(),
            candidate.display()
        ));
    }
    Ok(out)
}

/// Render the per-file reports as a human-readable summary.
pub fn render_dir_diff(diffs: &[FileDiff]) -> String {
    let mut s = String::new();
    let mut drifted = 0usize;
    for d in diffs {
        match &d.report {
            Ok(r) if r.is_clean() => {
                s.push_str(&format!(
                    "{:<18} ok ({} metrics compared)\n",
                    d.file, r.compared
                ));
            }
            Ok(r) => {
                drifted += 1;
                s.push_str(&format!(
                    "{:<18} DRIFT ({} of {} metrics out of tolerance)\n",
                    d.file,
                    r.failures(),
                    r.compared
                ));
                s.push_str(&r.render());
            }
            Err(msg) => {
                drifted += 1;
                s.push_str(&format!("{:<18} ERROR: {msg}\n", d.file));
            }
        }
    }
    if drifted == 0 {
        s.push_str("all artifacts within tolerance\n");
    } else {
        s.push_str(&format!("{drifted} artifact(s) drifted\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_dir(dir: &Path, files: &[(&str, &str)]) {
        std::fs::create_dir_all(dir).unwrap();
        for (name, body) in files {
            std::fs::write(dir.join(name), body).unwrap();
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("vax-diffcmd-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn identical_dirs_are_clean() {
        let a = tmp("ident-a");
        let b = tmp("ident-b");
        let body = r#"{"cpi": 10.5, "cycles": 100}"#;
        write_dir(&a, &[("tables.json", body)]);
        write_dir(&b, &[("tables.json", body)]);
        let diffs = diff_run_dirs(&a, &b, &Tolerance::exact()).unwrap();
        assert_eq!(diffs.len(), 1);
        assert!(diffs.iter().all(FileDiff::is_clean));
        assert!(render_dir_diff(&diffs).contains("all artifacts within tolerance"));
    }

    #[test]
    fn drift_and_missing_files_fail() {
        let a = tmp("drift-a");
        let b = tmp("drift-b");
        write_dir(
            &a,
            &[
                ("tables.json", r#"{"cpi": 10.5}"#),
                ("validation.json", r#"{"clean": true}"#),
            ],
        );
        write_dir(&b, &[("tables.json", r#"{"cpi": 11.9}"#)]);
        let diffs = diff_run_dirs(&a, &b, &Tolerance::exact()).unwrap();
        assert_eq!(diffs.len(), 2);
        assert!(!diffs[0].is_clean(), "cpi drifted");
        assert!(!diffs[1].is_clean(), "validation.json missing in candidate");
        let rendered = render_dir_diff(&diffs);
        assert!(rendered.contains("DRIFT"), "{rendered}");
        assert!(rendered.contains("missing in candidate"), "{rendered}");
        // A relative tolerance wide enough to cover the delta passes it.
        let diffs = diff_run_dirs(&a, &b, &Tolerance::new(0.0, 0.2)).unwrap();
        assert!(diffs[0].is_clean());
        assert!(!diffs[1].is_clean(), "missing file never passes tolerance");
    }

    #[test]
    fn empty_intersection_is_an_error() {
        let a = tmp("empty-a");
        let b = tmp("empty-b");
        write_dir(&a, &[]);
        write_dir(&b, &[]);
        assert!(diff_run_dirs(&a, &b, &Tolerance::exact()).is_err());
        assert!(diff_run_dirs(&a, Path::new("/nonexistent-xyz"), &Tolerance::exact()).is_err());
    }

    #[test]
    fn runtime_json_ignores_wall_clock_but_gates_on_counts() {
        let a = tmp("rt-a");
        let b = tmp("rt-b");
        write_dir(
            &a,
            &[(
                "runtime.json",
                r#"{"counters": {"cells_done": 5},
                    "phases": {"boot": {"count": 5, "total_us": 1111}}}"#,
            )],
        );
        // Same counts, different wall-clock: clean.
        write_dir(
            &b,
            &[(
                "runtime.json",
                r#"{"counters": {"cells_done": 5},
                    "phases": {"boot": {"count": 5, "total_us": 9999}}}"#,
            )],
        );
        let diffs = diff_run_dirs(&a, &b, &Tolerance::exact()).unwrap();
        assert!(diffs[0].is_clean(), "total_us is stripped at depth");

        // Different counts: drift, even at identical wall-clock.
        write_dir(
            &b,
            &[(
                "runtime.json",
                r#"{"counters": {"cells_done": 4},
                    "phases": {"boot": {"count": 5, "total_us": 1111}}}"#,
            )],
        );
        let diffs = diff_run_dirs(&a, &b, &Tolerance::exact()).unwrap();
        assert!(!diffs[0].is_clean(), "counts must still gate");
    }

    #[test]
    fn provenance_keys_are_ignored_in_manifest() {
        let a = tmp("prov-a");
        let b = tmp("prov-b");
        write_dir(
            &a,
            &[("manifest.json", r#"{"seed": 1984, "generated_unix_ts": 1}"#)],
        );
        write_dir(
            &b,
            &[("manifest.json", r#"{"seed": 1984, "generated_unix_ts": 2}"#)],
        );
        let diffs = diff_run_dirs(&a, &b, &Tolerance::exact()).unwrap();
        assert!(diffs[0].is_clean(), "timestamps are provenance, not drift");
    }
}
