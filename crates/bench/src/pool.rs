//! A supervised scoped-thread job pool for the sharded execution engine.
//!
//! The simulated systems are deliberately `!Send` (the trace bus hands
//! `Rc<RefCell<dyn TraceSink>>` handles to every subsystem), so the pool
//! never moves a system between threads. Instead each worker *builds* its
//! systems locally: jobs go in as `Sync` descriptions (`&I`), results come
//! out as `Send` values (`O`), and the caller sees them in input order —
//! slot `i` of the returned vector always holds the output for `inputs[i]`,
//! no matter which worker ran it or when it finished. That input-indexed
//! contract is what lets the runner merge shard results deterministically.
//!
//! Supervision: a panicking job (shard panic or watchdog timeout) does not
//! poison the pool, deadlock the scope, or abandon the rest of the queue.
//! The worker retries the job in place up to `retries` more times — each
//! attempt builds a fresh system from the same seed, so a successful retry
//! is byte-identical to a first-attempt success — and only after exhausting
//! its attempts records a [`JobFailure`] and moves on. Every other job
//! still runs to completion, so the caller always gets the full picture:
//! all finished results *and* all failures, never just the first panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vax_trace::{worker_tid, SpanId, Tracer};

/// A job that exhausted its attempts: which input failed, how many times it
/// was tried, and the payload of the *last* panic (re-raise it with
/// [`std::panic::resume_unwind`], or render it with [`panic_message`]).
pub struct JobFailure {
    /// Index into the `inputs` slice of the job that failed.
    pub index: usize,
    /// Total attempts made (`1 + retries`).
    pub attempts: u32,
    /// The final panic payload, exactly as `catch_unwind` caught it.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobFailure")
            .field("index", &self.index)
            .field("attempts", &self.attempts)
            .field("message", &panic_message(&self.payload))
            .finish()
    }
}

/// Everything the pool produced: one slot per input (in input order;
/// `None` where the job exhausted its attempts) plus the failures, sorted
/// by input index.
pub struct PoolOutcome<O> {
    /// `slots[i]` holds the output for `inputs[i]`, or `None` if it failed.
    pub slots: Vec<Option<O>>,
    /// Jobs that exhausted every attempt, ordered by input index.
    pub failures: Vec<JobFailure>,
}

impl<O> PoolOutcome<O> {
    /// True when every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwrap into plain results; panics if any job failed.
    pub fn into_results(self) -> Vec<O> {
        assert!(
            self.failures.is_empty(),
            "PoolOutcome::into_results on a degraded outcome"
        );
        self.slots
            .into_iter()
            .map(|s| s.expect("no failure recorded yet a slot is empty"))
            .collect()
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` payloads cover `panic!` and `assert!`).
pub fn panic_message(payload: &Box<dyn Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if payload.downcast_ref::<vax780::WatchdogExpired>().is_some() {
        "shard watchdog deadline expired"
    } else {
        "<non-string panic payload>"
    }
}

/// Run `f` over every input on `jobs` worker threads under supervision.
///
/// `f(i, &inputs[i], attempt)` may run on any worker; workers pull the next
/// unclaimed index from a shared counter, so at most `jobs` calls are in
/// flight and long jobs don't starve short ones of a thread. With
/// `jobs == 1` the single worker processes indices `0..n` strictly in
/// order — the serial loop, verbatim. `attempt` starts at 0 and counts the
/// retries of that particular index.
///
/// A panicking attempt is retried in place up to `retries` more times; a
/// job that exhausts all `1 + retries` attempts becomes a [`JobFailure`]
/// and the worker moves on to the next index. The queue always drains.
///
/// # Panics
/// Panics if `jobs == 0` (the CLI rejects this before we get here).
pub fn run_supervised<I, O, F>(jobs: usize, inputs: &[I], retries: u32, f: F) -> PoolOutcome<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I, u32) -> O + Sync,
{
    run_supervised_traced(
        jobs,
        inputs,
        retries,
        &Tracer::disabled(),
        0,
        |_worker, i, input, attempt| f(i, input, attempt),
    )
}

/// [`run_supervised`] with per-worker observability.
///
/// Each worker gets its own trace track ([`worker_tid`], named
/// `worker-N`). On that track the pool records, per job: a `queue-wait`
/// span covering the gap between finishing the previous job and claiming
/// this one (recorded only when a job is actually claimed, so span counts
/// stay invariant under the worker count), and a `job` span per attempt
/// (parented under `parent`, normally the run's root span) inside which
/// `f` runs — so any spans `f` opens nest under it. Irregular moments are
/// instant events: `shard-panic` or `watchdog` (by panic payload) per
/// failed attempt, `retry` when another attempt follows, `quarantine` when
/// attempts are exhausted; `retries`/`quarantines` counters track totals.
///
/// `f(worker, i, &inputs[i], attempt)` additionally receives the worker
/// index so callers can place their own spans on the right track.
pub fn run_supervised_traced<I, O, F>(
    jobs: usize,
    inputs: &[I],
    retries: u32,
    tracer: &Tracer,
    parent: SpanId,
    f: F,
) -> PoolOutcome<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, usize, &I, u32) -> O + Sync,
{
    assert!(jobs > 0, "run_supervised: jobs must be at least 1");
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let workers = jobs.min(inputs.len().max(1));
        for w in 0..workers {
            let f = &f;
            let next = &next;
            let slots = &slots;
            let failures = &failures;
            scope.spawn(move || {
                let tid = worker_tid(w);
                if tracer.is_enabled() {
                    tracer.set_thread_name(tid, &format!("worker-{w}"));
                }
                loop {
                    let wait_start = tracer.now_us();
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(input) = inputs.get(i) else { return };
                    tracer.complete(tid, "queue-wait", wait_start, vec![("index", i.into())]);
                    let mut last_payload = None;
                    for attempt in 0..=retries {
                        let job = tracer.span_under(
                            tid,
                            "job",
                            parent,
                            vec![("index", i.into()), ("attempt", attempt.into())],
                        );
                        let result = catch_unwind(AssertUnwindSafe(|| f(w, i, input, attempt)));
                        drop(job);
                        match result {
                            Ok(out) => {
                                *slots[i].lock().unwrap() = Some(out);
                                last_payload = None;
                                break;
                            }
                            Err(payload) => {
                                let kind = if payload
                                    .downcast_ref::<vax780::WatchdogExpired>()
                                    .is_some()
                                {
                                    "watchdog"
                                } else {
                                    "shard-panic"
                                };
                                tracer.instant(
                                    tid,
                                    kind,
                                    vec![("index", i.into()), ("attempt", attempt.into())],
                                );
                                if attempt < retries {
                                    tracer.instant(tid, "retry", vec![("index", i.into())]);
                                    tracer.count(tid, "retries", 1);
                                }
                                last_payload = Some(payload);
                            }
                        }
                    }
                    if let Some(payload) = last_payload {
                        tracer.instant(tid, "quarantine", vec![("index", i.into())]);
                        tracer.count(tid, "quarantines", 1);
                        failures.lock().unwrap().push(JobFailure {
                            index: i,
                            attempts: 1 + retries,
                            payload,
                        });
                    }
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|fail| fail.index);
    PoolOutcome {
        slots: slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap())
            .collect(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn run_ok<I: Sync, O: Send>(
        jobs: usize,
        inputs: &[I],
        f: impl Fn(usize, &I) -> O + Sync,
    ) -> Vec<O> {
        run_supervised(jobs, inputs, 0, |i, input, _| f(i, input)).into_results()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..32).collect();
        let out = run_ok(4, &inputs, |i, &x| {
            // Stagger completion so later indices tend to finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - i as u64) * 50));
            x * x
        });
        let want: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn more_jobs_than_inputs_and_empty_input() {
        let out = run_ok(8, &[1u32, 2], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
        let none: Vec<u32> = run_ok(4, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..20).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        let serial = run_ok(1, &inputs, f);
        let parallel = run_ok(4, &inputs, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn failure_drains_the_rest_of_the_queue() {
        let inputs: Vec<u64> = (0..16).collect();
        let outcome = run_supervised(4, &inputs, 0, |_, &x, _| {
            if x == 5 {
                panic!("shard {x} exploded");
            }
            x
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 5);
        assert_eq!(outcome.failures[0].attempts, 1);
        assert_eq!(
            panic_message(&outcome.failures[0].payload),
            "shard 5 exploded"
        );
        // Every *other* job still completed: the crash report reflects all
        // finished work, not just what happened to finish before the panic.
        for (i, slot) in outcome.slots.iter().enumerate() {
            if i == 5 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64));
            }
        }
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        let tries = AtomicU32::new(0);
        let outcome = run_supervised(2, &[7u32], 2, |_, &x, attempt| {
            tries.fetch_add(1, Ordering::Relaxed);
            if attempt < 2 {
                panic!("transient");
            }
            x
        });
        assert!(outcome.is_complete());
        assert_eq!(outcome.slots, vec![Some(7)]);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count() {
        let outcome: PoolOutcome<u32> = run_supervised(1, &[0u32], 3, |_, _, _| panic!("always"));
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].attempts, 4);
        assert_eq!(outcome.slots, vec![None]);
    }

    #[test]
    fn zero_jobs_is_a_programming_error() {
        let r = std::panic::catch_unwind(|| run_supervised(0, &[1u8], 0, |_, &x, _| x));
        assert!(r.is_err());
    }

    #[test]
    fn traced_pool_records_queue_waits_and_job_spans() {
        let tracer = Tracer::enabled();
        let inputs: Vec<u64> = (0..6).collect();
        let outcome =
            run_supervised_traced(3, &inputs, 0, &tracer, 0, |_w, _i, &x, _attempt| x * 2);
        assert!(outcome.is_complete());
        let phases = tracer.phase_totals();
        // One claim per input, one attempt per input — invariant in the
        // worker count, which is what keeps runtime.json jobs-invariant.
        assert_eq!(phases["queue-wait"].count, 6);
        assert_eq!(phases["job"].count, 6);
        // Every worker track got a thread-name metadata event.
        let names: Vec<String> = tracer
            .events()
            .iter()
            .filter(|e| e.kind == vax_trace::EventKind::Meta)
            .filter_map(|e| match &e.args[..] {
                [(_, vax_trace::ArgValue::Str(s))] => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"worker-0".to_string()), "{names:?}");
    }

    #[test]
    fn traced_pool_records_retry_and_quarantine_instants() {
        let tracer = Tracer::enabled();
        let outcome: PoolOutcome<u32> =
            run_supervised_traced(1, &[0u32], 1, &tracer, 0, |_, _, _, _| panic!("always"));
        assert_eq!(outcome.failures.len(), 1);
        let instants = tracer.instant_totals();
        assert_eq!(instants["shard-panic"], 2, "one per attempt");
        assert_eq!(instants["retry"], 1, "one retry before exhaustion");
        assert_eq!(instants["quarantine"], 1);
        assert_eq!(tracer.counter_value("retries"), 1);
        assert_eq!(tracer.counter_value("quarantines"), 1);
    }

    #[test]
    fn traced_pool_classifies_watchdog_panics() {
        let tracer = Tracer::enabled();
        let _outcome: PoolOutcome<u32> =
            run_supervised_traced(1, &[0u32], 0, &tracer, 0, |_, _, _, _| {
                std::panic::panic_any(vax780::WatchdogExpired)
            });
        let instants = tracer.instant_totals();
        assert_eq!(instants["watchdog"], 1);
        assert!(!instants.contains_key("shard-panic"));
    }

    #[test]
    fn callback_sees_a_valid_worker_index() {
        let max_worker = AtomicUsize::new(0);
        let inputs: Vec<u32> = (0..12).collect();
        let out = run_supervised_traced(
            3,
            &inputs,
            0,
            &Tracer::disabled(),
            0,
            |worker, _i, &x, _attempt| {
                max_worker.fetch_max(worker, Ordering::Relaxed);
                x
            },
        )
        .into_results();
        assert_eq!(out, inputs);
        assert!(max_worker.load(Ordering::Relaxed) < 3);
    }
}
