//! A minimal scoped-thread job pool for the sharded execution engine.
//!
//! The simulated systems are deliberately `!Send` (the trace bus hands
//! `Rc<RefCell<dyn TraceSink>>` handles to every subsystem), so the pool
//! never moves a system between threads. Instead each worker *builds* its
//! systems locally: jobs go in as `Sync` descriptions (`&I`), results come
//! out as `Send` values (`O`), and the caller sees them in input order —
//! slot `i` of the returned vector always holds the output for `inputs[i]`,
//! no matter which worker ran it or when it finished. That input-indexed
//! contract is what lets the runner merge shard results deterministically.
//!
//! Panic handling: a panicking job does not poison the pool or deadlock the
//! scope. The first panic wins — its payload and job index are captured,
//! the remaining queue is abandoned (in-flight jobs finish), and the caller
//! gets a [`JobPanic`] to contextualize (e.g. with that shard's flight
//! recording) before resuming the unwind.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A panic captured from a worker: which job blew up, and the payload the
/// job panicked with (re-raise it with [`std::panic::resume_unwind`]).
pub struct JobPanic {
    /// Index into the `inputs` slice of the job that panicked.
    pub index: usize,
    /// The panic payload, exactly as `catch_unwind` caught it.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("index", &self.index)
            .field("message", &panic_message(&self.payload))
            .finish()
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` payloads cover `panic!` and `assert!`).
pub fn panic_message(payload: &Box<dyn Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Run `f` over every input on `jobs` worker threads and return the outputs
/// in input order.
///
/// `f(i, &inputs[i])` may run on any worker; workers pull the next
/// unclaimed index from a shared counter, so at most `jobs` calls are in
/// flight and long jobs don't starve short ones of a thread. With
/// `jobs == 1` the single worker processes indices `0..n` strictly in
/// order — the serial loop, verbatim.
///
/// # Errors
/// If any job panics, the first panic (by completion order) is returned as
/// a [`JobPanic`]; queued jobs that had not started are skipped.
///
/// # Panics
/// Panics if `jobs == 0` (the CLI rejects this before we get here).
pub fn run_jobs<I, O, F>(jobs: usize, inputs: &[I], f: F) -> Result<Vec<O>, JobPanic>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    assert!(jobs > 0, "run_jobs: jobs must be at least 1");
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<JobPanic>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let workers = jobs.min(inputs.len().max(1));
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Acquire) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else { return };
                match catch_unwind(AssertUnwindSafe(|| f(i, input))) {
                    Ok(out) => *slots[i].lock().unwrap() = Some(out),
                    Err(payload) => {
                        abort.store(true, Ordering::Release);
                        let mut guard = first_panic.lock().unwrap();
                        if guard.is_none() {
                            *guard = Some(JobPanic { index: i, payload });
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = first_panic.into_inner().unwrap() {
        return Err(p);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("run_jobs: no panic recorded yet a slot is empty")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..32).collect();
        let out = run_jobs(4, &inputs, |i, &x| {
            // Stagger completion so later indices tend to finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - i as u64) * 50));
            x * x
        })
        .unwrap();
        let want: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn more_jobs_than_inputs_and_empty_input() {
        let out = run_jobs(8, &[1u32, 2], |_, &x| x + 1).unwrap();
        assert_eq!(out, vec![2, 3]);
        let none: Vec<u32> = run_jobs(4, &[], |_, &x: &u32| x).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..20).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        let serial = run_jobs(1, &inputs, f).unwrap();
        let parallel = run_jobs(4, &inputs, f).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panic_propagates_without_deadlock() {
        let inputs: Vec<u64> = (0..16).collect();
        let err = run_jobs(4, &inputs, |_, &x| {
            if x == 5 {
                panic!("shard {x} exploded");
            }
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 5);
        assert_eq!(panic_message(&err.payload), "shard 5 exploded");
    }

    #[test]
    fn zero_jobs_is_a_programming_error() {
        let r = std::panic::catch_unwind(|| run_jobs(0, &[1u8], |_, &x| x));
        assert!(r.is_err());
    }
}
