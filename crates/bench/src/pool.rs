//! A supervised scoped-thread job pool for the sharded execution engine.
//!
//! The simulated systems are deliberately `!Send` (the trace bus hands
//! `Rc<RefCell<dyn TraceSink>>` handles to every subsystem), so the pool
//! never moves a system between threads. Instead each worker *builds* its
//! systems locally: jobs go in as `Sync` descriptions (`&I`), results come
//! out as `Send` values (`O`), and the caller sees them in input order —
//! slot `i` of the returned vector always holds the output for `inputs[i]`,
//! no matter which worker ran it or when it finished. That input-indexed
//! contract is what lets the runner merge shard results deterministically.
//!
//! Supervision: a panicking job (shard panic or watchdog timeout) does not
//! poison the pool, deadlock the scope, or abandon the rest of the queue.
//! The worker retries the job in place up to `retries` more times — each
//! attempt builds a fresh system from the same seed, so a successful retry
//! is byte-identical to a first-attempt success — and only after exhausting
//! its attempts records a [`JobFailure`] and moves on. Every other job
//! still runs to completion, so the caller always gets the full picture:
//! all finished results *and* all failures, never just the first panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use vax_trace::{worker_tid, SpanId, Tracer};

use crate::cancel::CancelToken;

/// First-retry backoff in milliseconds; doubles per attempt up to
/// [`BACKOFF_CAP_MS`], with deterministic jitter on top.
const BACKOFF_BASE_MS: u64 = 10;

/// Upper bound on a single retry backoff, jitter included.
const BACKOFF_CAP_MS: u64 = 1_000;

/// Seeded exponential backoff before retry `attempt + 1` of input `i`:
/// `BACKOFF_BASE_MS << attempt` plus SplitMix64-style jitter in `[0, base)`
/// derived from `(i, attempt)` alone — deterministic and jobs-invariant, so
/// a retried run's `retry_backoff_ms` counter never depends on the worker
/// count. Capped at [`BACKOFF_CAP_MS`].
fn backoff_ms(i: u64, attempt: u32) -> u64 {
    let base = (BACKOFF_BASE_MS << attempt.min(16)).min(BACKOFF_CAP_MS);
    let mut z = i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let jitter = (z ^ (z >> 31)) % base.max(1);
    (base + jitter).min(BACKOFF_CAP_MS)
}

/// A job that exhausted its attempts: which input failed, how many times it
/// was tried, and the payload of the *last* panic (re-raise it with
/// [`std::panic::resume_unwind`], or render it with [`panic_message`]).
pub struct JobFailure {
    /// Index into the `inputs` slice of the job that failed.
    pub index: usize,
    /// Total attempts made (`1 + retries`).
    pub attempts: u32,
    /// The final panic payload, exactly as `catch_unwind` caught it.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobFailure")
            .field("index", &self.index)
            .field("attempts", &self.attempts)
            .field("message", &panic_message(&self.payload))
            .finish()
    }
}

/// Everything the pool produced: one slot per input (in input order;
/// `None` where the job exhausted its attempts) plus the failures, sorted
/// by input index.
pub struct PoolOutcome<O> {
    /// `slots[i]` holds the output for `inputs[i]`, or `None` if it failed.
    pub slots: Vec<Option<O>>,
    /// Jobs that exhausted every attempt, ordered by input index.
    pub failures: Vec<JobFailure>,
}

impl<O> PoolOutcome<O> {
    /// True when every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwrap into plain results; panics if any job failed.
    pub fn into_results(self) -> Vec<O> {
        assert!(
            self.failures.is_empty(),
            "PoolOutcome::into_results on a degraded outcome"
        );
        self.slots
            .into_iter()
            .map(|s| s.expect("no failure recorded yet a slot is empty"))
            .collect()
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` payloads cover `panic!` and `assert!`).
pub fn panic_message(payload: &Box<dyn Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if payload.downcast_ref::<vax780::WatchdogExpired>().is_some() {
        "shard watchdog deadline expired"
    } else {
        "<non-string panic payload>"
    }
}

/// Run `f` over every input on `jobs` worker threads under supervision.
///
/// `f(i, &inputs[i], attempt)` may run on any worker; workers pull the next
/// unclaimed index from a shared counter, so at most `jobs` calls are in
/// flight and long jobs don't starve short ones of a thread. With
/// `jobs == 1` the single worker processes indices `0..n` strictly in
/// order — the serial loop, verbatim. `attempt` starts at 0 and counts the
/// retries of that particular index.
///
/// A panicking attempt is retried in place up to `retries` more times; a
/// job that exhausts all `1 + retries` attempts becomes a [`JobFailure`]
/// and the worker moves on to the next index. The queue always drains.
///
/// # Panics
/// Panics if `jobs == 0` (the CLI rejects this before we get here).
pub fn run_supervised<I, O, F>(jobs: usize, inputs: &[I], retries: u32, f: F) -> PoolOutcome<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I, u32) -> O + Sync,
{
    run_supervised_traced(
        jobs,
        inputs,
        retries,
        &Tracer::disabled(),
        0,
        |_worker, i, input, attempt| f(i, input, attempt),
    )
}

/// [`run_supervised`] with per-worker observability.
///
/// Each worker gets its own trace track ([`worker_tid`], named
/// `worker-N`). On that track the pool records, per job: a `queue-wait`
/// span covering the gap between finishing the previous job and claiming
/// this one (recorded only when a job is actually claimed, so span counts
/// stay invariant under the worker count), and a `job` span per attempt
/// (parented under `parent`, normally the run's root span) inside which
/// `f` runs — so any spans `f` opens nest under it. Irregular moments are
/// instant events: `shard-panic` or `watchdog` (by panic payload) per
/// failed attempt, `retry` when another attempt follows, `quarantine` when
/// attempts are exhausted; `retries`/`quarantines` counters track totals.
///
/// `f(worker, i, &inputs[i], attempt)` additionally receives the worker
/// index so callers can place their own spans on the right track.
pub fn run_supervised_traced<I, O, F>(
    jobs: usize,
    inputs: &[I],
    retries: u32,
    tracer: &Tracer,
    parent: SpanId,
    f: F,
) -> PoolOutcome<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, usize, &I, u32) -> O + Sync,
{
    run_supervised_cancelable(
        jobs,
        inputs,
        retries,
        tracer,
        parent,
        &CancelToken::default(),
        f,
    )
}

/// [`run_supervised_traced`] with a cooperative [`CancelToken`].
///
/// Workers poll the token *before claiming* each input — the same cadence
/// as the watchdog, one check per cell — so a fired token stops the grid
/// within one cell boundary: in-flight cells finish normally (and
/// checkpoint, when the caller checkpoints), unclaimed cells are left as
/// empty slots with no failure recorded. The caller distinguishes "not
/// run because canceled" from "quarantined" by re-checking the token.
///
/// Retries of a failed attempt back off exponentially ([`backoff_ms`]):
/// a transient host hiccup (the usual cause of a watchdog trip) gets time
/// to clear instead of an immediate identical attempt, and the
/// `retry_backoff_ms` counter records the total sleep. A fired token also
/// stops further retries of the current input.
pub fn run_supervised_cancelable<I, O, F>(
    jobs: usize,
    inputs: &[I],
    retries: u32,
    tracer: &Tracer,
    parent: SpanId,
    cancel: &CancelToken,
    f: F,
) -> PoolOutcome<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, usize, &I, u32) -> O + Sync,
{
    assert!(jobs > 0, "run_supervised: jobs must be at least 1");
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let workers = jobs.min(inputs.len().max(1));
        for w in 0..workers {
            let f = &f;
            let next = &next;
            let slots = &slots;
            let failures = &failures;
            scope.spawn(move || {
                let tid = worker_tid(w);
                if tracer.is_enabled() {
                    tracer.set_thread_name(tid, &format!("worker-{w}"));
                }
                loop {
                    if cancel.fired().is_some() {
                        return;
                    }
                    let wait_start = tracer.now_us();
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(input) = inputs.get(i) else { return };
                    tracer.complete(tid, "queue-wait", wait_start, vec![("index", i.into())]);
                    let mut last_payload = None;
                    for attempt in 0..=retries {
                        let job = tracer.span_under(
                            tid,
                            "job",
                            parent,
                            vec![("index", i.into()), ("attempt", attempt.into())],
                        );
                        let result = catch_unwind(AssertUnwindSafe(|| f(w, i, input, attempt)));
                        drop(job);
                        match result {
                            Ok(out) => {
                                *slots[i].lock().unwrap() = Some(out);
                                last_payload = None;
                                break;
                            }
                            Err(payload) => {
                                let kind = if payload
                                    .downcast_ref::<vax780::WatchdogExpired>()
                                    .is_some()
                                {
                                    "watchdog"
                                } else {
                                    "shard-panic"
                                };
                                tracer.instant(
                                    tid,
                                    kind,
                                    vec![("index", i.into()), ("attempt", attempt.into())],
                                );
                                last_payload = Some(payload);
                                if cancel.fired().is_some() {
                                    break;
                                }
                                if attempt < retries {
                                    let ms = backoff_ms(i as u64, attempt);
                                    tracer.instant(
                                        tid,
                                        "retry",
                                        vec![("index", i.into()), ("backoff_ms", ms.into())],
                                    );
                                    tracer.count(tid, "retries", 1);
                                    tracer.count(tid, "retry_backoff_ms", ms);
                                    std::thread::sleep(Duration::from_millis(ms));
                                }
                            }
                        }
                    }
                    if let Some(payload) = last_payload {
                        if cancel.fired().is_some() {
                            // Canceled between attempts: the input was not
                            // quarantined, it simply wasn't finished —
                            // leave the slot empty with no failure, like
                            // an unclaimed cell.
                            return;
                        }
                        tracer.instant(tid, "quarantine", vec![("index", i.into())]);
                        tracer.count(tid, "quarantines", 1);
                        failures.lock().unwrap().push(JobFailure {
                            index: i,
                            attempts: 1 + retries,
                            payload,
                        });
                    }
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|fail| fail.index);
    PoolOutcome {
        slots: slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap())
            .collect(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn run_ok<I: Sync, O: Send>(
        jobs: usize,
        inputs: &[I],
        f: impl Fn(usize, &I) -> O + Sync,
    ) -> Vec<O> {
        run_supervised(jobs, inputs, 0, |i, input, _| f(i, input)).into_results()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..32).collect();
        let out = run_ok(4, &inputs, |i, &x| {
            // Stagger completion so later indices tend to finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - i as u64) * 50));
            x * x
        });
        let want: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn more_jobs_than_inputs_and_empty_input() {
        let out = run_ok(8, &[1u32, 2], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
        let none: Vec<u32> = run_ok(4, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..20).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        let serial = run_ok(1, &inputs, f);
        let parallel = run_ok(4, &inputs, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn failure_drains_the_rest_of_the_queue() {
        let inputs: Vec<u64> = (0..16).collect();
        let outcome = run_supervised(4, &inputs, 0, |_, &x, _| {
            if x == 5 {
                panic!("shard {x} exploded");
            }
            x
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 5);
        assert_eq!(outcome.failures[0].attempts, 1);
        assert_eq!(
            panic_message(&outcome.failures[0].payload),
            "shard 5 exploded"
        );
        // Every *other* job still completed: the crash report reflects all
        // finished work, not just what happened to finish before the panic.
        for (i, slot) in outcome.slots.iter().enumerate() {
            if i == 5 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64));
            }
        }
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        let tries = AtomicU32::new(0);
        let outcome = run_supervised(2, &[7u32], 2, |_, &x, attempt| {
            tries.fetch_add(1, Ordering::Relaxed);
            if attempt < 2 {
                panic!("transient");
            }
            x
        });
        assert!(outcome.is_complete());
        assert_eq!(outcome.slots, vec![Some(7)]);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count() {
        let outcome: PoolOutcome<u32> = run_supervised(1, &[0u32], 3, |_, _, _| panic!("always"));
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].attempts, 4);
        assert_eq!(outcome.slots, vec![None]);
    }

    #[test]
    fn zero_jobs_is_a_programming_error() {
        let r = std::panic::catch_unwind(|| run_supervised(0, &[1u8], 0, |_, &x, _| x));
        assert!(r.is_err());
    }

    #[test]
    fn traced_pool_records_queue_waits_and_job_spans() {
        let tracer = Tracer::enabled();
        let inputs: Vec<u64> = (0..6).collect();
        let outcome =
            run_supervised_traced(3, &inputs, 0, &tracer, 0, |_w, _i, &x, _attempt| x * 2);
        assert!(outcome.is_complete());
        let phases = tracer.phase_totals();
        // One claim per input, one attempt per input — invariant in the
        // worker count, which is what keeps runtime.json jobs-invariant.
        assert_eq!(phases["queue-wait"].count, 6);
        assert_eq!(phases["job"].count, 6);
        // Every worker track got a thread-name metadata event.
        let names: Vec<String> = tracer
            .events()
            .iter()
            .filter(|e| e.kind == vax_trace::EventKind::Meta)
            .filter_map(|e| match &e.args[..] {
                [(_, vax_trace::ArgValue::Str(s))] => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"worker-0".to_string()), "{names:?}");
    }

    #[test]
    fn traced_pool_records_retry_and_quarantine_instants() {
        let tracer = Tracer::enabled();
        let outcome: PoolOutcome<u32> =
            run_supervised_traced(1, &[0u32], 1, &tracer, 0, |_, _, _, _| panic!("always"));
        assert_eq!(outcome.failures.len(), 1);
        let instants = tracer.instant_totals();
        assert_eq!(instants["shard-panic"], 2, "one per attempt");
        assert_eq!(instants["retry"], 1, "one retry before exhaustion");
        assert_eq!(instants["quarantine"], 1);
        assert_eq!(tracer.counter_value("retries"), 1);
        assert_eq!(tracer.counter_value("quarantines"), 1);
    }

    #[test]
    fn traced_pool_classifies_watchdog_panics() {
        let tracer = Tracer::enabled();
        let _outcome: PoolOutcome<u32> =
            run_supervised_traced(1, &[0u32], 0, &tracer, 0, |_, _, _, _| {
                std::panic::panic_any(vax780::WatchdogExpired)
            });
        let instants = tracer.instant_totals();
        assert_eq!(instants["watchdog"], 1);
        assert!(!instants.contains_key("shard-panic"));
    }

    #[test]
    fn canceled_pool_stops_claiming_at_a_cell_boundary() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        let inputs: Vec<u32> = (0..64).collect();
        let started = AtomicUsize::new(0);
        // One worker makes the claim order deterministic: cells 0..=3 run,
        // the token fires inside cell 3, and the pre-claim check stops the
        // sweep before cell 4.
        let outcome = run_supervised_cancelable(
            1,
            &inputs,
            0,
            &Tracer::disabled(),
            0,
            &token,
            |_w, _i, &x, _attempt| {
                started.fetch_add(1, Ordering::Relaxed);
                if x == 3 {
                    token.cancel();
                }
                x
            },
        );
        // The in-flight cell finishes (cancellation is a boundary, not an
        // abort), nothing is quarantined, and the rest of the grid never
        // runs.
        assert!(outcome.failures.is_empty());
        let done = outcome.slots.iter().flatten().count();
        assert_eq!(done, 4);
        assert_eq!(started.load(Ordering::Relaxed), 4);
        assert_eq!(outcome.slots[3], Some(3), "the canceling cell completed");
    }

    #[test]
    fn canceled_retries_are_not_quarantines() {
        use crate::cancel::CancelToken;
        let token = CancelToken::new();
        let outcome: PoolOutcome<u32> = run_supervised_cancelable(
            1,
            &[0u32],
            5,
            &Tracer::disabled(),
            0,
            &token,
            |_, _, _, _| {
                token.cancel();
                panic!("transient");
            },
        );
        assert_eq!(outcome.slots, vec![None]);
        assert!(
            outcome.failures.is_empty(),
            "a cell abandoned by cancel is unfinished, not quarantined"
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        for i in 0..50u64 {
            for attempt in 0..12u32 {
                let ms = backoff_ms(i, attempt);
                assert_eq!(ms, backoff_ms(i, attempt), "deterministic");
                assert!(ms >= (BACKOFF_BASE_MS << attempt.min(16)).min(BACKOFF_CAP_MS));
                assert!(ms <= BACKOFF_CAP_MS);
            }
        }
        assert_ne!(
            backoff_ms(1, 0),
            backoff_ms(2, 0),
            "jitter separates indices"
        );
    }

    #[test]
    fn retries_record_backoff_counters() {
        let tracer = Tracer::enabled();
        let outcome: PoolOutcome<u32> =
            run_supervised_traced(1, &[0u32], 1, &tracer, 0, |_, _, _, _| panic!("always"));
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(
            tracer.counter_value("retry_backoff_ms"),
            backoff_ms(0, 0),
            "one retry, one seeded backoff"
        );
    }

    #[test]
    fn callback_sees_a_valid_worker_index() {
        let max_worker = AtomicUsize::new(0);
        let inputs: Vec<u32> = (0..12).collect();
        let out = run_supervised_traced(
            3,
            &inputs,
            0,
            &Tracer::disabled(),
            0,
            |worker, _i, &x, _attempt| {
                max_worker.fetch_max(worker, Ordering::Relaxed);
                x
            },
        )
        .into_results();
        assert_eq!(out, inputs);
        assert!(max_worker.load(Ordering::Relaxed) < 3);
    }
}
