//! Cooperative cancellation for grid runs.
//!
//! A [`CancelToken`] is the one signal a frontend (the serve daemon's
//! cancel endpoint, a `deadline_secs` spec field) can use to stop a job
//! early without corrupting it. It is *cooperative*: the shard pool checks
//! the token at cell boundaries — the same granularity as the watchdog —
//! so an in-flight cell always finishes and checkpoints before the run
//! winds down. Everything already checkpointed stays on disk, which is
//! what makes a canceled run resumable (`reproduce resume`) or simply
//! inspectable.
//!
//! The default token is inert (`None` inside): checking it is a single
//! `Option` branch, so the CLI paths — which never cancel — pay nothing.
//! A live token latches the *first* cause to fire (explicit cancel vs.
//! deadline), so a job's terminal status is stable even when both race.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// An explicit cancel request (`POST /jobs/:id/cancel`).
    Canceled,
    /// The job's `deadline_secs` budget elapsed.
    DeadlineExceeded,
}

impl CancelKind {
    /// The terminal status name this cause maps to.
    pub fn name(self) -> &'static str {
        match self {
            CancelKind::Canceled => "canceled",
            CancelKind::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Parse a status name back into a kind (journal replay).
    pub fn parse(name: &str) -> Option<CancelKind> {
        match name {
            "canceled" => Some(CancelKind::Canceled),
            "deadline_exceeded" => Some(CancelKind::DeadlineExceeded),
            _ => None,
        }
    }
}

const LIVE: u8 = 0;
const CANCELED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// Latched cause: [`LIVE`] until the first cancel/deadline wins.
    fired: AtomicU8,
    /// Armed deadline; checked lazily by [`CancelToken::fired`].
    deadline: Mutex<Option<Instant>>,
}

/// A cloneable cancel handle shared between a controller (who calls
/// [`CancelToken::cancel`] / [`CancelToken::arm_deadline`]) and the grid
/// (which polls [`CancelToken::fired`] at cell boundaries).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

impl CancelToken {
    /// A live token (the default constructor yields an inert one).
    pub fn new() -> CancelToken {
        CancelToken(Some(Arc::new(Inner {
            fired: AtomicU8::new(LIVE),
            deadline: Mutex::new(None),
        })))
    }

    /// Request cancellation. First cause to land wins; on an inert token
    /// this is a no-op.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            let _ =
                inner
                    .fired
                    .compare_exchange(LIVE, CANCELED, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    /// Arm a deadline `budget` from now. Re-arming replaces the previous
    /// deadline; no-op on an inert token. A budget so large the deadline
    /// is unrepresentable (`Instant` overflow) can never elapse, so it is
    /// treated as no deadline rather than a panic.
    pub fn arm_deadline(&self, budget: Duration) {
        if let Some(inner) = &self.0 {
            let mut deadline = inner
                .deadline
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *deadline = Instant::now().checked_add(budget);
        }
    }

    /// Has the token fired, and why? Called at cell boundaries — cheap
    /// (one branch) when inert, one atomic load plus a cold mutex when
    /// live. A deadline observed as expired here is latched, so every
    /// later call reports the same cause.
    pub fn fired(&self) -> Option<CancelKind> {
        let inner = self.0.as_ref()?;
        match inner.fired.load(Ordering::SeqCst) {
            CANCELED => return Some(CancelKind::Canceled),
            DEADLINE => return Some(CancelKind::DeadlineExceeded),
            _ => {}
        }
        let expired = {
            let deadline = inner
                .deadline
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            deadline.is_some_and(|d| Instant::now() >= d)
        };
        if expired {
            let _ =
                inner
                    .fired
                    .compare_exchange(LIVE, DEADLINE, Ordering::SeqCst, Ordering::SeqCst);
            // Re-read: an explicit cancel may have won the race, and the
            // latched cause is authoritative.
            return match inner.fired.load(Ordering::SeqCst) {
                CANCELED => Some(CancelKind::Canceled),
                _ => Some(CancelKind::DeadlineExceeded),
            };
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::default();
        t.cancel();
        t.arm_deadline(Duration::from_millis(0));
        assert_eq!(t.fired(), None);
    }

    #[test]
    fn cancel_latches_through_clones() {
        let t = CancelToken::new();
        assert_eq!(t.fired(), None);
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.fired(), Some(CancelKind::Canceled));
        // A later deadline cannot overwrite the latched cause.
        t.arm_deadline(Duration::from_millis(0));
        assert_eq!(t.fired(), Some(CancelKind::Canceled));
    }

    #[test]
    fn deadline_fires_once_elapsed() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_secs(3600));
        assert_eq!(t.fired(), None, "far deadline has not fired");
        t.arm_deadline(Duration::from_millis(0));
        assert_eq!(t.fired(), Some(CancelKind::DeadlineExceeded));
        assert_eq!(t.fired(), Some(CancelKind::DeadlineExceeded), "latched");
    }

    #[test]
    fn unrepresentable_deadline_never_fires_or_panics() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::MAX);
        assert_eq!(t.fired(), None, "overflowed deadline means no deadline");
        // An explicit cancel still works afterwards.
        t.cancel();
        assert_eq!(t.fired(), Some(CancelKind::Canceled));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [CancelKind::Canceled, CancelKind::DeadlineExceeded] {
            assert_eq!(CancelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CancelKind::parse("done"), None);
    }
}
