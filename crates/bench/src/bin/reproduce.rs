//! Regenerate the paper's tables: the full reproduction harness.
//!
//! ```text
//! reproduce [--instructions N] [--seed S] [--experiment WHICH] [--per-workload]
//! ```
//!
//! `WHICH` ∈ {fig1, table1..table9, table3, events, all} (default `all`).
//! `--per-workload` also prints the composite's five constituent CPIs.

use vax_analysis::{tables, Analysis};
use vax_bench::{DEFAULT_INSTRUCTIONS, DEFAULT_SEED};
use vax_workload::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--instructions N] [--seed S] [--experiment fig1|table1..table9|events|all] [--per-workload]"
    );
    std::process::exit(2)
}

fn fig1() -> String {
    // Figure 1 is the 780 block diagram; we reproduce it as the simulated
    // component inventory.
    let mut s = String::new();
    s.push_str("Figure 1 — VAX-11/780 block diagram (simulated configuration)\n");
    s.push_str("  CPU pipeline:\n");
    s.push_str("    I-Fetch   : 8-byte instruction buffer, one outstanding longword fill\n");
    s.push_str("    I-Decode  : one non-overlapped cycle per instruction\n");
    s.push_str("    EBOX      : microcoded; 200 ns microcycle; synthetic control store\n");
    s.push_str("  Memory subsystem:\n");
    s.push_str("    TB        : 128 entries, 2-way, split system/process halves\n");
    s.push_str("    Cache     : 8 KB, 2-way, 8-byte blocks, write-through, no write-allocate\n");
    s.push_str("    Write buf : one longword, 6-cycle drain\n");
    s.push_str("    SBI       : shared path to 8 MB memory, 6-cycle read miss\n");
    s
}

fn main() {
    let mut instructions = DEFAULT_INSTRUCTIONS;
    let mut seed = DEFAULT_SEED;
    let mut experiment = "all".to_string();
    let mut per_workload = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--instructions" => {
                i += 1;
                instructions = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--experiment" => {
                i += 1;
                experiment = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--per-workload" => per_workload = true,
            _ => usage(),
        }
        i += 1;
    }

    if experiment == "fig1" {
        print!("{}", fig1());
        return;
    }

    eprintln!(
        "running 5 workloads x {instructions} instructions (seed {seed}) ..."
    );
    // Run the five workloads and form the composite, keeping one system's
    // control store as the reduction key (all systems share the layout).
    let mut per: Vec<(Workload, f64)> = Vec::new();
    let mut composite = None;
    let mut cs = None;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut system = vax_workload::build_system(w, vax_workload::rte::PROCESSES_PER_WORKLOAD, seed.wrapping_add(i as u64));
        let m = system.measure(instructions / 10, instructions);
        per.push((w, m.cpi()));
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(system.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
        eprintln!("  {} done (CPI {:.2})", w.name(), per.last().unwrap().1);
    }
    let composite = composite.unwrap();
    let a = Analysis::new(cs.as_ref().unwrap(), &composite);
    if let Err(e) = a.check_conservation() {
        eprintln!("WARNING: conservation check failed: {e}");
    }

    if per_workload {
        println!("Per-workload CPI:");
        for (w, cpi) in &per {
            println!("  {:<34} {cpi:>6.2}", w.name());
        }
        println!();
    }

    let out = match experiment.as_str() {
        "all" => {
            let mut s = fig1();
            s.push('\n');
            s.push_str(&tables::print_all_tables(&a));
            s
        }
        "table1" => tables::table1(&a),
        "table2" => tables::table2(&a),
        "table3" => tables::table3(&a),
        "table4" => tables::table4(&a),
        "table5" => tables::table5(&a),
        "table6" => tables::table6(&a),
        "table7" => tables::table7(&a),
        "table8" => tables::table8(&a),
        "table9" => tables::table9(&a),
        "events" => tables::events(&a),
        _ => usage(),
    };
    print!("{out}");
}
