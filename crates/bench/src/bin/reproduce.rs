//! Regenerate the paper's tables: the full reproduction harness.
//!
//! ```text
//! reproduce [--instructions N] [--seed S] [--jobs N] [--shards K]
//!           [--experiment WHICH] [--per-workload]
//!           [--format text|json] [--out DIR] [--interval-cycles N]
//!           [--profile] [--top N] [--flight-recorder K] [--quiet|--verbose]
//!           [--bench-out DIR] [--fault-seed S] [--fault-classes C1,C2,..]
//!           [--retries N] [--shard-timeout SECS] [--strict]
//! reproduce diff BASELINE_DIR CANDIDATE_DIR [--abs-tol X] [--rel-tol X]
//! reproduce bench-check BASELINE_JSON CANDIDATE_JSON_OR_DIR [--max-regression FRAC]
//! reproduce resume DIR [--jobs N] [--retries N] [--shard-timeout SECS] [--strict]
//! reproduce characterize [--opcodes M,..] [--modes k,..] [--reps N] [--iters N]
//!           [--warmup N] [--jobs N] [--retries N] [--out DIR] [--list]
//! reproduce refute <grid flags> [--model COSTS.json] [--abs-tol X] [--rel-tol X]
//!           [--fixtures DIR] [--max-refutations N]
//! reproduce serve [--addr HOST:PORT] [--root DIR] [--jobs N] [--retries N]
//! ```
//!
//! `WHICH` ∈ {fig1, table1..table9, events, all} (default `all`).
//! `--per-workload` also prints the composite's five constituent CPIs.
//! `--jobs N` runs the workload × shard grid on N worker threads; results
//! are reduced in a fixed grid order, so exports are byte-identical at any
//! job count (see `docs/PARALLELISM.md`). `--shards K` runs K replica
//! shards per workload, each seeded from its own SplitMix64 stream.
//!
//! With `--format json`, the run emits machine-readable artifacts — the run
//! manifest, raw measurement counters, Tables 1–9, the interval time series
//! (JSON and CSV), and the counter-conservation validation report — into
//! `--out DIR` (or tables.json to stdout when `--out` is absent). All
//! narration goes to stderr so stdout stays machine-clean.
//!
//! `--profile` reduces the µPC histogram into a hierarchical attribution
//! profile: a top-N hot-routine report, `profile.folded` for flame-graph
//! tools, and `profile.json`.
//!
//! `diff` compares two exported run directories metric by metric and exits
//! nonzero on out-of-tolerance drift — the CI regression gate.
//!
//! `bench-check` compares a fresh `BENCH_<ts>.json` self-metering report
//! against a committed baseline and exits nonzero when host throughput
//! (simulated instructions per host second) regressed by more than the
//! allowed fraction (default 30%) — the CI performance-smoke gate.
//!
//! `--fault-seed` injects a deterministic schedule of simulated hardware
//! faults; `--retries`/`--shard-timeout`/`--strict` supervise shard
//! failures; `resume` finishes an interrupted `--out` run from its
//! checkpoints. See `docs/ROBUSTNESS.md`.
//!
//! `serve` turns the same engine into a long-lived HTTP daemon with warm
//! codegen/boot caches; see `docs/SERVICE.md`.
//!
//! Every experiment path goes through `vax_bench::engine::JobEngine` —
//! this file only parses argv, prints the outcome's stdout, and exits
//! with its code, so a CLI run and a served job of the same spec are the
//! same computation.

use std::path::Path;

use vax_analysis::Tolerance;
use vax_bench::cli::{self, Command, DiffOptions};
use vax_bench::diffcmd::{self, FileDiff};
use vax_bench::engine::{JobEngine, JobRequest};
use vax_bench::tracecheck;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse_command(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("reproduce: {msg}");
            eprintln!("{}", cli::usage());
            std::process::exit(2);
        }
    };
    let code = match cmd {
        Command::Diff(d) => run_diff(&d),
        Command::BenchCheck(o) => match vax_bench::benchcheck::run_bench_check(&o) {
            Ok(verdict) => {
                println!("{verdict}");
                0
            }
            Err(msg) => {
                eprintln!("reproduce bench-check: {msg}");
                1
            }
        },
        Command::Run(opts) => run_engine(JobRequest::Run(opts)),
        Command::Resume(r) => run_engine(JobRequest::Resume(r)),
        Command::TraceCheck(path) => run_trace_check(&path),
        Command::Characterize(o) => run_engine(JobRequest::Characterize(o)),
        Command::Refute(o) => run_engine(JobRequest::Refute(o)),
        Command::Serve(o) => vax_bench::serve::run_serve(&o),
    };
    std::process::exit(code);
}

/// Hand a job to a fresh engine and print what it would have printed.
fn run_engine(req: JobRequest) -> i32 {
    let outcome = JobEngine::new().execute(&req);
    print!("{}", outcome.stdout);
    outcome.code
}

/// `reproduce trace-check`: validate a Chrome-trace file; 0 = clean.
fn run_trace_check(path: &Path) -> i32 {
    match tracecheck::check_trace_file(path) {
        Ok(summary) => {
            println!("{summary}");
            0
        }
        Err(msg) => {
            eprintln!("reproduce trace-check: {msg}");
            1
        }
    }
}

/// `reproduce diff`: compare two run directories; 0 = within tolerance.
fn run_diff(d: &DiffOptions) -> i32 {
    let tol = Tolerance::new(d.abs_tol, d.rel_tol);
    match diffcmd::diff_run_dirs(&d.baseline, &d.candidate, &tol) {
        Ok(diffs) => {
            print!("{}", diffcmd::render_dir_diff(&diffs));
            if diffs.iter().all(FileDiff::is_clean) {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("reproduce diff: {e}");
            1
        }
    }
}
