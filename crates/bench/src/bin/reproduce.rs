//! Regenerate the paper's tables: the full reproduction harness.
//!
//! ```text
//! reproduce [--instructions N] [--seed S] [--jobs N] [--shards K]
//!           [--experiment WHICH] [--per-workload]
//!           [--format text|json] [--out DIR] [--interval-cycles N]
//!           [--profile] [--top N] [--flight-recorder K] [--quiet|--verbose]
//!           [--bench-out DIR] [--fault-seed S] [--fault-classes C1,C2,..]
//!           [--retries N] [--shard-timeout SECS] [--strict]
//! reproduce diff BASELINE_DIR CANDIDATE_DIR [--abs-tol X] [--rel-tol X]
//! reproduce bench-check BASELINE_JSON CANDIDATE_JSON_OR_DIR [--max-regression FRAC]
//! reproduce resume DIR [--jobs N] [--retries N] [--shard-timeout SECS] [--strict]
//! reproduce characterize [--opcodes M,..] [--modes k,..] [--reps N] [--iters N]
//!           [--warmup N] [--jobs N] [--retries N] [--out DIR] [--list]
//! reproduce refute <grid flags> [--model COSTS.json] [--abs-tol X] [--rel-tol X]
//!           [--fixtures DIR] [--max-refutations N]
//! ```
//!
//! `WHICH` ∈ {fig1, table1..table9, events, all} (default `all`).
//! `--per-workload` also prints the composite's five constituent CPIs.
//! `--jobs N` runs the workload × shard grid on N worker threads; results
//! are reduced in a fixed grid order, so exports are byte-identical at any
//! job count (see `docs/PARALLELISM.md`). `--shards K` runs K replica
//! shards per workload, each seeded from its own SplitMix64 stream.
//!
//! With `--format json`, the run emits machine-readable artifacts — the run
//! manifest, raw measurement counters, Tables 1–9, the interval time series
//! (JSON and CSV), and the counter-conservation validation report — into
//! `--out DIR` (or tables.json to stdout when `--out` is absent). All
//! narration goes to stderr so stdout stays machine-clean.
//!
//! `--profile` reduces the µPC histogram into a hierarchical attribution
//! profile: a top-N hot-routine report, `profile.folded` for flame-graph
//! tools, and `profile.json`.
//!
//! `diff` compares two exported run directories metric by metric and exits
//! nonzero on out-of-tolerance drift — the CI regression gate.
//!
//! `bench-check` compares a fresh `BENCH_<ts>.json` self-metering report
//! against a committed baseline and exits nonzero when host throughput
//! (simulated instructions per host second) regressed by more than the
//! allowed fraction (default 30%) — the CI performance-smoke gate.
//!
//! `--fault-seed` injects a deterministic schedule of simulated hardware
//! faults; `--retries`/`--shard-timeout`/`--strict` supervise shard
//! failures; `resume` finishes an interrupted `--out` run from its
//! checkpoints. See `docs/ROBUSTNESS.md`.

use std::path::{Path, PathBuf};

use vax_analysis::{tables, Profile, RunManifest, Tolerance};
use vax_bench::charrun;
use vax_bench::cli::{
    self, CharacterizeOptions, Command, DiffOptions, Format, Options, ResumeOptions,
};
use vax_bench::diffcmd::{self, FileDiff};
use vax_bench::fsio::write_atomic;
use vax_bench::heartbeat::{runtime_json, Heartbeat};
use vax_bench::meter::HostMeter;
use vax_bench::progress::Progress;
use vax_bench::runner::{self, RunOutput};
use vax_bench::tracecheck;
use vax_trace::{Tracer, MAIN_TID};

fn fig1() -> String {
    // Figure 1 is the 780 block diagram; we reproduce it as the simulated
    // component inventory.
    let mut s = String::new();
    s.push_str("Figure 1 — VAX-11/780 block diagram (simulated configuration)\n");
    s.push_str("  CPU pipeline:\n");
    s.push_str("    I-Fetch   : 8-byte instruction buffer, one outstanding longword fill\n");
    s.push_str("    I-Decode  : one non-overlapped cycle per instruction\n");
    s.push_str("    EBOX      : microcoded; 200 ns microcycle; synthetic control store\n");
    s.push_str("  Memory subsystem:\n");
    s.push_str("    TB        : 128 entries, 2-way, split system/process halves\n");
    s.push_str("    Cache     : 8 KB, 2-way, 8-byte blocks, write-through, no write-allocate\n");
    s.push_str("    Write buf : one longword, 6-cycle drain\n");
    s.push_str("    SBI       : shared path to 8 MB memory, 6-cycle read miss\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse_command(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("reproduce: {msg}");
            eprintln!("{}", cli::usage());
            std::process::exit(2);
        }
    };
    let code = match cmd {
        Command::Diff(d) => run_diff(&d),
        Command::BenchCheck(o) => match vax_bench::benchcheck::run_bench_check(&o) {
            Ok(verdict) => {
                println!("{verdict}");
                0
            }
            Err(msg) => {
                eprintln!("reproduce bench-check: {msg}");
                1
            }
        },
        Command::Run(opts) => run(&opts),
        Command::Resume(r) => run_resume(&r),
        Command::TraceCheck(path) => run_trace_check(&path),
        Command::Characterize(o) => run_characterize(&o),
        Command::Refute(o) => run_refute(&o),
    };
    std::process::exit(code);
}

/// `reproduce trace-check`: validate a Chrome-trace file; 0 = clean.
fn run_trace_check(path: &Path) -> i32 {
    match tracecheck::check_trace_file(path) {
        Ok(summary) => {
            println!("{summary}");
            0
        }
        Err(msg) => {
            eprintln!("reproduce trace-check: {msg}");
            1
        }
    }
}

/// Build the run's tracer (and heartbeat) from the observability flags:
/// either `--trace-out` or `--progress` enables recording; without them
/// the tracer is the no-op disabled handle the hot path never notices.
/// When a trace file is requested, any panic flushes the partial buffer
/// there, so even a crashed run leaves an openable trace.
fn start_observability(
    trace_out: Option<&Path>,
    progress_ms: Option<u64>,
) -> (Tracer, Option<Heartbeat>) {
    let tracer = if trace_out.is_some() || progress_ms.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    if let Some(path) = trace_out {
        tracer.register_panic_flush(path);
    }
    let heartbeat = progress_ms.map(|ms| Heartbeat::start(tracer.clone(), ms));
    (tracer, heartbeat)
}

/// Write the post-run observability artifacts: the Chrome trace to
/// `--trace-out`, and (when the run exported into a directory) the
/// `runtime.json` roll-up next to the other artifacts. Failures here are
/// reported but never override the run's own exit code with success —
/// they only turn a clean exit into a failure.
fn flush_observability(
    tracer: &Tracer,
    trace_out: Option<&Path>,
    out_dir: Option<&Path>,
    progress: &Progress,
) -> i32 {
    if !tracer.is_enabled() {
        return 0;
    }
    let mut code = 0;
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("reproduce: cannot create {}: {e}", dir.display());
                code = 1;
            }
        }
        match write_atomic(path, &tracer.chrome_trace()) {
            Ok(()) => progress.info(&format!("wrote {}", path.display())),
            Err(e) => {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                code = 1;
            }
        }
    }
    if let Some(dir) = out_dir {
        let path = dir.join("runtime.json");
        let body = runtime_json(tracer).to_string_pretty();
        match std::fs::create_dir_all(dir)
            .map_err(|e| e.to_string())
            .and_then(|()| write_atomic(&path, &body).map_err(|e| e.to_string()))
        {
            Ok(()) => progress.info(&format!("wrote {}", path.display())),
            Err(e) => {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                code = 1;
            }
        }
    }
    code
}

/// `reproduce characterize`: run the directed-probe grid and emit the
/// per-opcode cost table. `--out DIR` writes `costs.json` + `costs.md`
/// (plus `runtime.json` when traced); without it the JSON goes to stdout.
/// Exit 1 when any grid cell exhausted its retries.
fn run_characterize(opts: &CharacterizeOptions) -> i32 {
    let progress = Progress::new(opts.verbosity);
    if opts.list {
        print!("{}", charrun::render_grid_list(opts));
        return 0;
    }
    let (tracer, heartbeat) = start_observability(opts.trace_out.as_deref(), opts.progress_ms);
    let out = charrun::run_characterize(opts, &progress, &tracer);
    let json = vax_analysis::costs_json(&out.table);
    let mut code = i32::from(!out.failed_cells.is_empty());
    match &opts.out {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "reproduce characterize: cannot create {}: {e}",
                    dir.display()
                );
                code = 1;
            } else {
                for (name, body) in [
                    ("costs.json", json),
                    ("costs.md", vax_analysis::costs_markdown(&out.table)),
                ] {
                    let path = dir.join(name);
                    if let Err(e) = write_atomic(&path, &body) {
                        eprintln!(
                            "reproduce characterize: cannot write {}: {e}",
                            path.display()
                        );
                        code = 1;
                        break;
                    }
                    tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
                }
                progress.info(&format!(
                    "wrote costs.json and costs.md to {}",
                    dir.display()
                ));
            }
        }
        None => print!("{json}"),
    }
    drop(heartbeat);
    let obs_code = flush_observability(
        &tracer,
        opts.trace_out.as_deref(),
        opts.out.as_deref(),
        &progress,
    );
    if code != 0 {
        code
    } else {
        obs_code
    }
}

/// `reproduce refute`: adversarial cross-checks over the probe grid.
/// Exit 0 only when every cell survives every check; a refutation (or a
/// quarantined cell) exits 1, and the minimized regression fixtures land
/// in `--fixtures DIR`.
fn run_refute(opts: &CharacterizeOptions) -> i32 {
    let progress = Progress::new(opts.verbosity);
    let (tracer, heartbeat) = start_observability(opts.trace_out.as_deref(), opts.progress_ms);
    let code = match charrun::run_refute(opts, &progress, &tracer) {
        Err(msg) => {
            eprintln!("reproduce refute: {msg}");
            2
        }
        Ok(out) => {
            for (opcode, mode, checks) in &out.refuted_cells {
                println!("REFUTED {opcode} {mode}: {}", checks.join(", "));
            }
            println!(
                "refute: {} cell(s) checked, {} refuted, {} minimized, {} quarantined",
                out.cells_checked,
                out.refuted_cells.len(),
                out.refutations.len(),
                out.failed_cells.len()
            );
            i32::from(!out.refuted_cells.is_empty() || !out.failed_cells.is_empty())
        }
    };
    drop(heartbeat);
    let obs_code = flush_observability(
        &tracer,
        opts.trace_out.as_deref(),
        opts.out.as_deref(),
        &progress,
    );
    if code != 0 {
        code
    } else {
        obs_code
    }
}

/// `reproduce diff`: compare two run directories; 0 = within tolerance.
fn run_diff(d: &DiffOptions) -> i32 {
    let tol = Tolerance::new(d.abs_tol, d.rel_tol);
    match diffcmd::diff_run_dirs(&d.baseline, &d.candidate, &tol) {
        Ok(diffs) => {
            print!("{}", diffcmd::render_dir_diff(&diffs));
            if diffs.iter().all(FileDiff::is_clean) {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("reproduce diff: {e}");
            1
        }
    }
}

/// The measurement run. Returns the process exit code.
fn run(opts: &Options) -> i32 {
    let progress = Progress::new(opts.verbosity);

    if opts.experiment == "fig1" {
        print!("{}", fig1());
        return 0;
    }

    let (tracer, heartbeat) = start_observability(opts.trace_out.as_deref(), opts.progress_ms);

    // Meter only the simulation itself, not rendering or artifact I/O.
    let meter = HostMeter::start();
    let out = runner::run_composite_traced(opts, &progress, &tracer);
    let bench = meter.finish(out.analysis.cycles, out.analysis.instructions);
    progress.info(&bench.summary());
    if let Some(dir) = &opts.bench_out {
        match bench.write_to(dir) {
            Ok(path) => progress.info(&format!("wrote {}", path.display())),
            Err(e) => {
                eprintln!("reproduce: {e}");
                return 1;
            }
        }
    }
    let code = render_and_export(opts, &out, &progress, &tracer);
    drop(heartbeat);
    let obs_code = flush_observability(
        &tracer,
        opts.trace_out.as_deref(),
        opts.out.as_deref(),
        &progress,
    );
    if code != 0 {
        code
    } else {
        obs_code
    }
}

/// `reproduce resume`: finish an interrupted `--out` run from its
/// checkpoints, then render/export exactly as the original invocation
/// would have. Returns the process exit code.
fn run_resume(resume: &ResumeOptions) -> i32 {
    let progress = Progress::new(resume.verbosity);
    let (tracer, heartbeat) = start_observability(resume.trace_out.as_deref(), resume.progress_ms);
    let (opts, out) = match runner::resume_composite_traced(resume, &progress, &tracer) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce resume: {e}");
            return 1;
        }
    };
    let code = render_and_export(&opts, &out, &progress, &tracer);
    drop(heartbeat);
    let obs_code = flush_observability(
        &tracer,
        resume.trace_out.as_deref(),
        opts.out.as_deref(),
        &progress,
    );
    if code != 0 {
        code
    } else {
        obs_code
    }
}

/// Everything downstream of the simulation: profile, per-workload CPIs,
/// exports, and the exit code. Shared by `run` and `resume` so a resumed
/// run's artifacts come from the same code path (and the same bytes) as an
/// uninterrupted one.
fn render_and_export(opts: &Options, out: &RunOutput, progress: &Progress, tracer: &Tracer) -> i32 {
    let _export = tracer.span(MAIN_TID, "export", vec![]);
    // The µPC attribution profile: folded stacks + JSON always go to a
    // directory (--out if given, else the working directory); the top-N
    // report goes to stdout in text mode and stderr in json mode so the
    // machine-readable stream stays clean.
    if opts.profile {
        let profile = Profile::new(&out.cs.map, &out.analysis.m.hist);
        let dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("reproduce: cannot create {}: {e}", dir.display());
            return 1;
        }
        for (name, body) in [
            ("profile.folded", profile.folded()),
            ("profile.json", profile.to_json().to_string_pretty()),
        ] {
            let path = dir.join(name);
            if let Err(e) = write_atomic(&path, &body) {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                return 1;
            }
            tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
        }
        progress.info(&format!(
            "wrote profile.folded and profile.json to {}",
            dir.display()
        ));
        let report = profile.top_routines_report(opts.top);
        match opts.format {
            Format::Text => println!("{report}"),
            Format::Json => progress.info(&report),
        }
    }

    if opts.per_workload {
        let mut s = String::from("Per-workload CPI:\n");
        for (w, cpi) in &out.per_workload {
            s.push_str(&format!("  {:<34} {cpi:>6.2}\n", w.name()));
        }
        match opts.format {
            Format::Text => println!("{s}"),
            Format::Json => progress.info(&s),
        }
    }

    if opts.format == Format::Json {
        let manifest = RunManifest {
            experiment: opts.experiment.clone(),
            seed: Some(opts.seed),
            instructions: opts.instructions,
            warmup: opts.instructions / 10,
            interval_cycles: opts.interval_cycles,
            shards: opts.shards,
            config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
            fault_seed: opts.fault_seed,
            fault_classes: opts
                .fault_classes
                .iter()
                .map(|c| c.name().to_string())
                .collect(),
            degraded: out.degraded,
            failed_cells: out
                .failed_cells
                .iter()
                .map(|(w, s)| (w.name().to_string(), *s))
                .collect(),
        };
        let files =
            vax_analysis::run_artifacts(&manifest, &out.analysis, &out.series, &out.validation);
        match &opts.out {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("reproduce: cannot create {}: {e}", dir.display());
                    return 1;
                }
                for (name, body) in &files {
                    let path = dir.join(name);
                    if let Err(e) = write_atomic(&path, body) {
                        eprintln!("reproduce: cannot write {}: {e}", path.display());
                        return 1;
                    }
                    tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
                }
                progress.info(&format!(
                    "wrote {} artifacts to {}",
                    files.len(),
                    dir.display()
                ));
            }
            None => {
                let tables = files
                    .iter()
                    .find(|(name, _)| *name == "tables.json")
                    .map(|(_, body)| body.as_str())
                    .unwrap();
                print!("{tables}");
            }
        }
        return exit_code(opts, out);
    }

    let rendered = match opts.experiment.as_str() {
        "all" => {
            let mut s = fig1();
            s.push('\n');
            s.push_str(&tables::print_all_tables(&out.analysis));
            s
        }
        "table1" => tables::table1(&out.analysis),
        "table2" => tables::table2(&out.analysis),
        "table3" => tables::table3(&out.analysis),
        "table4" => tables::table4(&out.analysis),
        "table5" => tables::table5(&out.analysis),
        "table6" => tables::table6(&out.analysis),
        "table7" => tables::table7(&out.analysis),
        "table8" => tables::table8(&out.analysis),
        "table9" => tables::table9(&out.analysis),
        "events" => tables::events(&out.analysis),
        other => unreachable!("experiment '{other}' passed validation but has no renderer"),
    };
    print!("{rendered}");
    exit_code(opts, out)
}

/// Exit code policy: validation divergence always fails; a degraded run
/// (quarantined cells) fails only under `--strict` — without it the
/// partial results are still worth exiting 0 for, and the manifest records
/// the damage.
fn exit_code(opts: &Options, out: &RunOutput) -> i32 {
    if !out.validation.is_clean() || (opts.strict && out.degraded) {
        1
    } else {
        0
    }
}
