//! Regenerate the paper's tables: the full reproduction harness.
//!
//! ```text
//! reproduce [--instructions N] [--seed S] [--experiment WHICH] [--per-workload]
//!           [--format text|json] [--out DIR] [--interval-cycles N]
//! ```
//!
//! `WHICH` ∈ {fig1, table1..table9, events, all} (default `all`).
//! `--per-workload` also prints the composite's five constituent CPIs.
//!
//! With `--format json`, the run emits machine-readable artifacts — the run
//! manifest, raw measurement counters, Tables 1–9, the interval time series
//! (JSON and CSV), and the counter-conservation validation report — into
//! `--out DIR` (or tables.json to stdout when `--out` is absent).

use vax780::TimeSeries;
use vax_analysis::{tables, validate, Analysis, RunManifest};
use vax_bench::cli::{self, Format, Options};
use vax_workload::Workload;

fn fig1() -> String {
    // Figure 1 is the 780 block diagram; we reproduce it as the simulated
    // component inventory.
    let mut s = String::new();
    s.push_str("Figure 1 — VAX-11/780 block diagram (simulated configuration)\n");
    s.push_str("  CPU pipeline:\n");
    s.push_str("    I-Fetch   : 8-byte instruction buffer, one outstanding longword fill\n");
    s.push_str("    I-Decode  : one non-overlapped cycle per instruction\n");
    s.push_str("    EBOX      : microcoded; 200 ns microcycle; synthetic control store\n");
    s.push_str("  Memory subsystem:\n");
    s.push_str("    TB        : 128 entries, 2-way, split system/process halves\n");
    s.push_str("    Cache     : 8 KB, 2-way, 8-byte blocks, write-through, no write-allocate\n");
    s.push_str("    Write buf : one longword, 6-cycle drain\n");
    s.push_str("    SBI       : shared path to 8 MB memory, 6-cycle read miss\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("reproduce: {msg}");
            eprintln!("{}", cli::usage());
            std::process::exit(2);
        }
    };

    if opts.experiment == "fig1" {
        print!("{}", fig1());
        return;
    }

    let Options {
        instructions,
        seed,
        interval_cycles,
        ..
    } = opts;
    eprintln!("running 5 workloads x {instructions} instructions (seed {seed}) ...");
    // Run the five workloads and form the composite, keeping one system's
    // control store as the reduction key (all systems share the layout).
    // Each workload's interval samples are appended with a cycle offset so
    // the composite time series stays contiguous, and merging it still
    // reproduces the composite measurement exactly.
    let mut per: Vec<(Workload, f64)> = Vec::new();
    let mut composite = None;
    let mut cs = None;
    let mut series = TimeSeries::default();
    let mut cycle_offset = 0u64;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut system = vax_workload::build_system(
            w,
            vax_workload::rte::PROCESSES_PER_WORKLOAD,
            seed.wrapping_add(i as u64),
        );
        let (m, ts) = system.measure_sampled(instructions / 10, instructions, interval_cycles);
        for mut s in ts.samples {
            s.start_cycle += cycle_offset;
            s.end_cycle += cycle_offset;
            series.samples.push(s);
        }
        cycle_offset += m.cycles;
        per.push((w, m.cpi()));
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(system.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
        eprintln!("  {} done (CPI {:.2})", w.name(), per.last().unwrap().1);
    }
    let composite = composite.unwrap();
    let cs = cs.unwrap();
    let a = Analysis::new(&cs, &composite);
    if let Err(e) = a.check_conservation() {
        eprintln!("WARNING: conservation check failed: {e}");
    }
    let report = validate(&cs, &composite);
    if !report.is_clean() {
        eprintln!("WARNING: counter validation diverged:\n{}", report.render());
    }

    if opts.per_workload {
        println!("Per-workload CPI:");
        for (w, cpi) in &per {
            println!("  {:<34} {cpi:>6.2}", w.name());
        }
        println!();
    }

    if opts.format == Format::Json {
        let manifest = RunManifest {
            experiment: opts.experiment.clone(),
            seed: Some(seed),
            instructions,
            warmup: instructions / 10,
            interval_cycles,
            config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
        };
        let files = vax_analysis::run_artifacts(&manifest, &a, &series, &report);
        match &opts.out {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("reproduce: cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                }
                for (name, body) in &files {
                    let path = dir.join(name);
                    if let Err(e) = std::fs::write(&path, body) {
                        eprintln!("reproduce: cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
                eprintln!("wrote {} artifacts to {}", files.len(), dir.display());
            }
            None => {
                let tables = files
                    .iter()
                    .find(|(name, _)| *name == "tables.json")
                    .map(|(_, body)| body.as_str())
                    .unwrap();
                print!("{tables}");
            }
        }
        if !report.is_clean() {
            std::process::exit(1);
        }
        return;
    }

    let out = match opts.experiment.as_str() {
        "all" => {
            let mut s = fig1();
            s.push('\n');
            s.push_str(&tables::print_all_tables(&a));
            s
        }
        "table1" => tables::table1(&a),
        "table2" => tables::table2(&a),
        "table3" => tables::table3(&a),
        "table4" => tables::table4(&a),
        "table5" => tables::table5(&a),
        "table6" => tables::table6(&a),
        "table7" => tables::table7(&a),
        "table8" => tables::table8(&a),
        "table9" => tables::table9(&a),
        "events" => tables::events(&a),
        other => unreachable!("experiment '{other}' passed validation but has no renderer"),
    };
    print!("{out}");
    if !report.is_clean() {
        std::process::exit(1);
    }
}
