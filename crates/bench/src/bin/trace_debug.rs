//! Diagnostic: step the failing workload and dump the last instructions
//! before a panic (PC, opcode, SP, R8).

use std::collections::VecDeque;
use vax_cpu::StepOutcome;
use vax_workload::{build_system, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let widx: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(0);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1984);
    let w = Workload::ALL[widx];
    let mut sys = build_system(w, vax_workload::rte::PROCESSES_PER_WORKLOAD, seed);
    let mut ring: VecDeque<String> = VecDeque::with_capacity(256);
    let mut prev_wl: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for step in 0u64..2_000_000 {
            let pc = sys.cpu.pc();
            let sp = sys.cpu.regs[14];
            let r8 = sys.cpu.regs[8];
            let pid = sys.cpu.iprs.pcbb;
            let wlimit = sys
                .cpu
                .mem
                .raw_translate(vax_mem::VirtAddr(0x10900 + 196))
                .map(|pa| sys.cpu.mem.value_read(pa, 4))
                .unwrap_or(0);
            let out = sys.cpu.step();
            if ring.len() == 256 {
                ring.pop_front();
            }
            ring.push_back(format!(
                "{step:>8} pc={pc:#010x} sp={sp:#010x} r8={r8:#010x} wl={wlimit:#010x} {:?}",
                out
            ));
            let in_user = pc < 0x8000_0000;
            if !in_user {
                // Kernel transitions interleave PCBB and table switches;
                // only sample in user mode.
            } else if let Some(&pw) = prev_wl.get(&pid) {
                if pw == 0x1d800 && wlimit != 0x1d800 {
                    println!("--- proc {pid:#x}: wlimit {pw:#x} -> {wlimit:#x} at step {step} ---");
                    for l in ring.iter().rev().take(8).collect::<Vec<_>>().iter().rev() {
                        println!("{l}");
                    }
                    return;
                }
            }
            if in_user {
                prev_wl.insert(pid, wlimit);
            }
            if matches!(out, StepOutcome::Halted) {
                println!("HALTED at step {step}");
                break;
            }
        }
    }));
    if result.is_err() {
        println!("--- last instructions before panic ---");
        for l in ring.iter().rev().take(60).collect::<Vec<_>>().iter().rev() {
            println!("{l}");
        }
    } else {
        println!("completed without panic");
    }
}
