//! Minimal timing harness for `harness = false` benches.
//!
//! The build environment is offline, so Criterion is unavailable; this
//! module provides the small subset the benches need: named benchmarks,
//! automatic iteration-count calibration, a substring filter from the
//! command line (`cargo bench -- cache`), and a ns/iter report.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per calibrated benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// One benchmark result: name, iterations timed, total elapsed.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations in the timed run.
    pub iters: u64,
    /// Wall time of the timed run.
    pub elapsed: Duration,
}

impl BenchResult {
    /// Nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// A bench run: collects results, prints them on [`Bench::finish`].
#[derive(Debug, Default)]
pub struct Bench {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Build from `std::env::args`: the first non-flag argument is a
    /// substring filter (flags such as `--bench` that cargo forwards are
    /// ignored).
    pub fn from_args() -> Bench {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Run `f` repeatedly, calibrating the iteration count toward
    /// [`TARGET`] total wall time, and record the result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        // Calibration: double iterations until the run is long enough to
        // time reliably, then scale to the target.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        let timed_iters = ((TARGET.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 28);
        self.run_fixed(name, timed_iters, f);
    }

    /// Run `f` exactly `iters` times (for expensive benchmarks where
    /// calibration would be wasteful).
    pub fn bench_n<T>(&mut self, name: &str, iters: u64, f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        self.run_fixed(name, iters, f);
    }

    fn run_fixed<T>(&mut self, name: &str, iters: u64, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let result = BenchResult {
            name: name.to_string(),
            iters,
            elapsed: start.elapsed(),
        };
        println!(
            "{:<44} {:>12.1} ns/iter   ({} iters, {:.3} s)",
            result.name,
            result.ns_per_iter(),
            result.iters,
            result.elapsed.as_secs_f64()
        );
        self.results.push(result);
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the summary footer.
    pub fn finish(&self) {
        println!("{} benchmarks run", self.results.len());
    }
}
