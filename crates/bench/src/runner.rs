//! The composite measurement engine, extracted from the `reproduce` binary
//! so integration tests (and the fixture-freshness check) can run the exact
//! same code path programmatically.
//!
//! The run is a grid of independent shard jobs — one per `(workload,
//! shard)` cell, seeded by `vax_workload::rte::shard_seed` — executed on a
//! [`crate::pool`] of supervised worker threads. Each worker builds its
//! own simulated system (the systems are `!Send`; only job descriptions
//! and results cross threads) and measures it; the parent then reduces the
//! results in `(workload, shard)` index order: measurements through
//! [`vax780::merge_ordered`], interval samples through
//! [`TimeSeries::splice`]. Because the reduction order is fixed by index
//! and never by completion order, a run's output is byte-identical at any
//! `--jobs` count — `--jobs` buys wall-clock time, not different numbers.
//!
//! Supervision: a shard attempt that panics (or trips its `--shard-timeout`
//! watchdog) is retried up to `--retries` times on a fresh system built
//! from the same shard seed, so a retried success is byte-identical to a
//! first-attempt success. A cell that exhausts its retries is quarantined —
//! its flight recording is dumped (when armed), the run is marked degraded,
//! and the remaining cells still merge into a partial result.
//!
//! Crash safety: with `--out DIR` every completed cell is journaled
//! atomically to `DIR/checkpoints/` (see [`crate::resume`]), and
//! [`resume_composite`] finishes an interrupted run by re-running only the
//! missing cells.

use vax780::{merge_ordered, FaultPlan, Measurement, TimeSeries};
use vax_analysis::{validate, Analysis, CheckpointCell, ValidationReport};
use vax_cpu::{ControlStore, CpuConfig, SharedFlightRecorder};
use vax_trace::{worker_tid, Tracer, MAIN_TID};
use vax_workload::Workload;

use crate::cache::WarmCaches;
use crate::cancel::CancelKind;
use crate::cli::{Options, ResumeOptions};
use crate::fsio::write_atomic;
use crate::pool::{panic_message, run_supervised_cancelable};
use crate::progress::Progress;
use crate::resume::{cell_path, checkpoints_dir, header_json, header_path, load_cells};

/// Everything a composite run produces, ready for rendering or export.
#[derive(Debug)]
pub struct RunOutput {
    /// The reduced composite analysis (owns the merged [`vax780::Measurement`]).
    pub analysis: Analysis,
    /// The control store the reduction was keyed on (all systems share the
    /// same layout).
    pub cs: ControlStore,
    /// Composite interval time series, cycle offsets spliced so every
    /// shard of every workload forms one contiguous timeline in
    /// `(workload, shard)` order.
    pub series: TimeSeries,
    /// Counter-conservation validation of the composite measurement.
    pub validation: ValidationReport,
    /// `(workload, CPI)` for each workload's merged shards, in
    /// [`Workload::ALL`] order.
    pub per_workload: Vec<(Workload, f64)>,
    /// Conservation-check failure message, if the reduction lost cycles.
    pub conservation_err: Option<String>,
    /// True when at least one cell exhausted its retries; the merged
    /// results above then cover only the surviving cells.
    pub degraded: bool,
    /// The quarantined `(workload, shard)` cells, in grid order.
    pub failed_cells: Vec<(Workload, u64)>,
    /// Set when the run's cancel token fired: the grid stopped at a cell
    /// boundary, completed cells are checkpointed, and the merged results
    /// cover only what finished. The caller must not export final
    /// artifacts for a canceled run.
    pub canceled: Option<CancelKind>,
}

/// One cell of the run grid: workload `workload_index`, replica `shard`.
struct ShardJob {
    workload: Workload,
    workload_index: u64,
    shard: u64,
    /// This shard's flight recorder (disabled unless `--flight-recorder`);
    /// the parent keeps the handle so a quarantined cell can be dumped
    /// with the right shard's instruction history.
    recorder: SharedFlightRecorder,
}

/// What a shard sends back across the thread boundary.
struct CellData {
    m: Measurement,
    series: TimeSeries,
}

/// Run the workload × shard grid described by `opts`.
///
/// Warmup is `instructions / 10` per shard (not measured); the cell at
/// `(workload w, shard s)` is seeded with
/// `SeedStream::new(seed).stream(w).stream(s)`. Up to `opts.jobs` shards
/// run concurrently; results are reduced in grid-index order so the output
/// does not depend on `opts.jobs`. When `opts.flight_recorder > 0` every
/// shard gets its own recorder of that capacity. When `opts.out` is set the
/// run journals checkpoints for [`resume_composite`]; any stale journal in
/// that directory is cleared first.
///
/// # Panics
/// Panics if `opts.jobs == 0` or `opts.shards == 0` (the CLI rejects both
/// up front). A worker panic no longer propagates — it is retried and, on
/// exhaustion, quarantined into [`RunOutput::failed_cells`].
pub fn run_composite(opts: &Options, progress: &Progress) -> RunOutput {
    run_composite_traced(opts, progress, &Tracer::disabled())
}

/// [`run_composite`] with harness observability: every pipeline phase of
/// every cell (codegen, boot, simulate, checkpoint) becomes a span on the
/// worker's trace track, the reduction becomes a `merge` span on the main
/// track, and the tracer's counters accumulate cells done, instructions,
/// decode-cache hits/misses, and scheduled fault injections. A disabled
/// tracer makes this identical to [`run_composite`].
pub fn run_composite_traced(opts: &Options, progress: &Progress, tracer: &Tracer) -> RunOutput {
    run_composite_cached(opts, progress, tracer, &WarmCaches::new())
}

/// [`run_composite_traced`] against shared warm caches (see
/// [`crate::cache`]). A long-lived engine passes its own caches so a
/// repeated job skips codegen and boot; the plain entry points pass a
/// fresh cache, which behaves identically to no cache at all (every cell
/// of one run has a distinct seed, so a single run only ever misses).
pub fn run_composite_cached(
    opts: &Options,
    progress: &Progress,
    tracer: &Tracer,
    caches: &WarmCaches,
) -> RunOutput {
    assert!(opts.shards > 0, "run_composite: shards must be at least 1");
    // A fresh run must not inherit cells journaled by an earlier run in
    // the same directory (a previous grid may have been larger, and its
    // leftover cells would satisfy a later resume with foreign data).
    if let Some(out) = &opts.out {
        let _ = std::fs::remove_dir_all(checkpoints_dir(out));
    }
    let cells = vec![None; Workload::ALL.len() * opts.shards as usize];
    run_grid(opts, progress, cells, tracer, caches)
}

/// Finish the interrupted run journaled under `resume.dir`: reconstruct
/// the experiment definition from the checkpoint header, load every
/// parseable cell, and run only the missing ones. Returns the
/// reconstructed options (the caller renders/exports with them, exactly as
/// it would for a fresh run) alongside the output.
///
/// # Errors
/// Returns a message when the header is missing or damaged — without it
/// the experiment definition would be guesswork.
pub fn resume_composite(
    resume: &ResumeOptions,
    progress: &Progress,
) -> Result<(Options, RunOutput), String> {
    resume_composite_traced(resume, progress, &Tracer::disabled())
}

/// [`resume_composite`] with harness observability (see
/// [`run_composite_traced`]); already-checkpointed cells count toward the
/// tracer's `cells_done` before any new work starts.
pub fn resume_composite_traced(
    resume: &ResumeOptions,
    progress: &Progress,
    tracer: &Tracer,
) -> Result<(Options, RunOutput), String> {
    resume_composite_cached(resume, progress, tracer, &WarmCaches::new())
}

/// [`resume_composite_traced`] against shared warm caches (see
/// [`run_composite_cached`]).
pub fn resume_composite_cached(
    resume: &ResumeOptions,
    progress: &Progress,
    tracer: &Tracer,
    caches: &WarmCaches,
) -> Result<(Options, RunOutput), String> {
    let path = header_path(&resume.dir);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read checkpoint header {}: {e} (was the run started with --out?)",
            path.display()
        )
    })?;
    let opts = crate::resume::options_from_header(&text, resume)?;
    let cells = load_cells(&resume.dir, opts.shards, progress);
    let done = cells.iter().filter(|c| c.is_some()).count();
    progress.info(&format!(
        "resuming from {}: {done}/{} cells checkpointed",
        resume.dir.display(),
        cells.len()
    ));
    let out = run_grid(&opts, progress, cells, tracer, caches);
    Ok((opts, out))
}

/// Shared grid engine: run every cell not already `preloaded`, then reduce.
fn run_grid(
    opts: &Options,
    progress: &Progress,
    preloaded: Vec<Option<CheckpointCell>>,
    tracer: &Tracer,
    caches: &WarmCaches,
) -> RunOutput {
    let instructions = opts.instructions;
    let seed = opts.seed;
    let shards = opts.shards as usize;
    assert_eq!(preloaded.len(), Workload::ALL.len() * shards);
    tracer.set_thread_name(MAIN_TID, "main");
    let run_span = tracer.span(
        MAIN_TID,
        "run",
        vec![
            ("experiment", opts.experiment.as_str().into()),
            ("seed", seed.into()),
            ("shards", opts.shards.into()),
            ("jobs", opts.jobs.into()),
            ("instructions", instructions.into()),
        ],
    );
    tracer.counter_set("cells_total", preloaded.len() as u64);
    let preloaded_done = preloaded.iter().filter(|c| c.is_some()).count() as u64;
    if preloaded_done > 0 {
        tracer.count(MAIN_TID, "cells_done", preloaded_done);
    }
    progress.info(&format!(
        "running 5 workloads x {shards} shard(s) x {instructions} instructions \
         (seed {seed}, {} job(s)) ...",
        opts.jobs
    ));
    if let Some(fault_seed) = opts.fault_seed {
        let classes: Vec<&str> = opts.fault_classes.iter().map(|c| c.name()).collect();
        progress.info(&format!(
            "injecting faults: seed {fault_seed}, classes [{}]",
            classes.join(", ")
        ));
    }

    // Journal setup: header first (atomically), cells as they complete.
    // A journaling failure degrades to a non-resumable run, never a
    // failed one.
    let journal = opts.out.as_ref().and_then(|out| {
        std::fs::create_dir_all(checkpoints_dir(out))
            .and_then(|()| write_atomic(&header_path(out), &header_json(opts).to_string_pretty()))
            .map_err(|e| progress.warn(&format!("checkpoint journal disabled: {e}")))
            .ok()
            .map(|()| out.clone())
    });

    let mut slots: Vec<Option<CellData>> = preloaded
        .into_iter()
        .map(|c| {
            c.map(|c| CellData {
                m: c.m,
                series: c.series,
            })
        })
        .collect();

    let todo: Vec<ShardJob> = Workload::ALL
        .iter()
        .enumerate()
        .flat_map(|(w, &workload)| (0..opts.shards).map(move |shard| (w, workload, shard)))
        .filter(|&(w, _, shard)| slots[w * shards + shard as usize].is_none())
        .map(|(w, workload, shard)| ShardJob {
            workload,
            workload_index: w as u64,
            shard,
            recorder: SharedFlightRecorder::with_capacity(opts.flight_recorder),
        })
        .collect();

    let outcome = run_supervised_cancelable(
        opts.jobs,
        &todo,
        opts.retries,
        tracer,
        run_span.id(),
        &opts.cancel,
        |worker, _i, job: &ShardJob, attempt| {
            let tid = worker_tid(worker);
            let _cell = tracer.span(
                tid,
                "cell",
                vec![
                    ("workload", job.workload.name().into()),
                    ("shard", job.shard.into()),
                    ("attempt", attempt.into()),
                ],
            );
            if let Some((w, s, n)) = opts.inject_panic {
                if job.workload_index == w && job.shard == s && attempt < n {
                    panic!("injected panic (attempt {attempt})");
                }
            }
            let cell_seed = vax_workload::rte::shard_seed(seed, job.workload_index, job.shard);
            let (specs, workload_hit) = {
                let _g = tracer.span(tid, "codegen", vec![]);
                caches.processes(
                    job.workload,
                    vax_workload::rte::PROCESSES_PER_WORKLOAD,
                    cell_seed,
                )
            };
            let (mut system, boot_hit) = {
                let _g = tracer.span(tid, "boot", vec![]);
                caches.boot(&specs)
            };
            if job.recorder.is_enabled() {
                system.cpu.flight = job.recorder.clone();
            }
            let mut fault_count = 0u64;
            if let Some(fault_seed) = opts.fault_seed {
                let plan = FaultPlan::generate(
                    fault_seed,
                    job.workload_index as usize,
                    job.shard as usize,
                    instructions,
                    &opts.fault_classes,
                );
                fault_count = plan.len() as u64;
                system.install_fault_plan(plan);
            }
            if let Some(secs) = opts.shard_timeout_secs {
                system.set_deadline(Some(
                    std::time::Instant::now() + std::time::Duration::from_secs_f64(secs),
                ));
            }
            let (m, series) = {
                let _g = tracer.span(tid, "simulate", vec![]);
                system.measure_sampled(instructions / 10, instructions, opts.interval_cycles)
            };
            // Counters are recorded only after a *successful* measurement,
            // so a retried attempt never double-counts and runtime.json
            // totals stay invariant in both --jobs and --retries.
            if tracer.is_enabled() {
                let d = system.cpu.decode_cache_stats();
                tracer.count(tid, "decode_cache_hits", d.hits);
                tracer.count(tid, "decode_cache_misses", d.misses);
                tracer.count(tid, "instructions", m.instructions());
                tracer.count(tid, "sim_cycles", m.cycles);
                let hit = |b: bool| b as u64;
                tracer.count(tid, "workload_cache_hits", hit(workload_hit));
                tracer.count(tid, "workload_cache_misses", hit(!workload_hit));
                tracer.count(tid, "boot_cache_hits", hit(boot_hit));
                tracer.count(tid, "boot_cache_misses", hit(!boot_hit));
                if fault_count > 0 {
                    tracer.count(tid, "fault_injections", fault_count);
                }
            }
            progress.debug(&format!(
                "  {} shard {}: {} cycles, {} interval samples",
                job.workload.name(),
                job.shard,
                m.cycles,
                series.samples.len()
            ));
            let data = if let Some(out) = &journal {
                let _g = tracer.span(tid, "checkpoint", vec![]);
                let cell = CheckpointCell {
                    workload: job.workload_index,
                    shard: job.shard,
                    m,
                    series,
                };
                let path = cell_path(out, cell.workload, cell.shard);
                if let Err(e) =
                    write_atomic(&path, &vax_analysis::cell_to_json(&cell).to_string_pretty())
                {
                    progress.warn(&format!("checkpoint {} not written: {e}", path.display()));
                }
                CellData {
                    m: cell.m,
                    series: cell.series,
                }
            } else {
                CellData { m, series }
            };
            tracer.count(tid, "cells_done", 1);
            data
        },
    );

    let canceled = opts.cancel.fired();
    if let Some(kind) = canceled {
        tracer.instant(MAIN_TID, "cancel", vec![("kind", kind.name().into())]);
        tracer.count(MAIN_TID, "jobs_canceled", 1);
        progress.info(&format!(
            "run {} at a cell boundary; completed cells remain checkpointed",
            kind.name()
        ));
    }

    let mut failed_cells: Vec<(Workload, u64)> = Vec::new();
    for f in &outcome.failures {
        let job = &todo[f.index];
        progress.warn(&format!(
            "{} shard {} quarantined after {} attempt(s): {}",
            job.workload.name(),
            job.shard,
            f.attempts,
            panic_message(&f.payload)
        ));
        if job.recorder.is_enabled() && !job.recorder.is_empty() {
            job.recorder.dump_stderr();
        }
        failed_cells.push((job.workload, job.shard));
    }
    for (job, result) in todo.iter().zip(outcome.slots) {
        let slot = job.workload_index as usize * shards + job.shard as usize;
        slots[slot] = result;
    }

    // Deterministic reduction: grid-index order, regardless of which
    // worker finished when. Quarantined cells are simply absent — the
    // composite covers whatever survived.
    let merge_span = tracer.span(MAIN_TID, "merge", vec![]);
    let cs = ControlStore::new(&CpuConfig::default());
    let mut per: Vec<(Workload, f64)> = Vec::new();
    let mut composite = Measurement::default();
    let mut series = TimeSeries::default();
    let mut cycle_offset = 0u64;
    for (w, &workload) in Workload::ALL.iter().enumerate() {
        let cells = &slots[w * shards..(w + 1) * shards];
        let merged: Measurement = merge_ordered(cells.iter().flatten().map(|r| &r.m));
        for r in cells.iter().flatten() {
            // Advance by the shard's measured cycles, not the last sample
            // boundary: a measurement whose tail produced no sample still
            // occupies its cycles on the composite timeline.
            series.splice(cycle_offset, &r.series);
            cycle_offset += r.m.cycles;
        }
        progress.info(&format!(
            "  {} done (CPI {:.2})",
            workload.name(),
            merged.cpi()
        ));
        per.push((workload, merged.cpi()));
        composite.merge(&merged);
    }
    drop(merge_span);
    drop(run_span);

    let analysis = Analysis::new(&cs, &composite);
    let conservation_err = analysis.check_conservation().err();
    if let Some(e) = &conservation_err {
        progress.warn(&format!("conservation check failed: {e}"));
    }
    let validation = validate(&cs, &composite);
    if !validation.is_clean() {
        progress.warn(&format!(
            "counter validation diverged:\n{}",
            validation.render()
        ));
    }
    RunOutput {
        analysis,
        cs,
        series,
        validation,
        per_workload: per,
        conservation_err,
        degraded: !failed_cells.is_empty(),
        failed_cells,
        canceled,
    }
}
