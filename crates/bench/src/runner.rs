//! The composite measurement loop, extracted from the `reproduce` binary so
//! integration tests (and the fixture-freshness check) can run the exact
//! same code path programmatically.
//!
//! Runs the five workloads back to back, merges their measurements into the
//! paper's composite, splices the interval samples into one contiguous time
//! series, and reduces the result against the shared control store.

use vax780::TimeSeries;
use vax_analysis::{validate, Analysis, ValidationReport};
use vax_cpu::{ControlStore, SharedFlightRecorder};
use vax_workload::Workload;

use crate::cli::Options;
use crate::progress::Progress;

/// Everything a composite run produces, ready for rendering or export.
#[derive(Debug)]
pub struct RunOutput {
    /// The reduced composite analysis (owns the merged [`vax780::Measurement`]).
    pub analysis: Analysis,
    /// The control store the reduction was keyed on (all five systems share
    /// the same layout).
    pub cs: ControlStore,
    /// Composite interval time series, cycle offsets spliced so the five
    /// workloads form one contiguous timeline.
    pub series: TimeSeries,
    /// Counter-conservation validation of the composite measurement.
    pub validation: ValidationReport,
    /// `(workload, CPI)` for each constituent run, in [`Workload::ALL`] order.
    pub per_workload: Vec<(Workload, f64)>,
    /// Conservation-check failure message, if the reduction lost cycles.
    pub conservation_err: Option<String>,
}

/// Run the five-workload composite described by `opts`.
///
/// Warmup is `instructions / 10` per workload (not measured); workload `i`
/// uses `seed + i`. When `opts.flight_recorder > 0` each system gets a
/// flight recorder of that capacity with the process panic hook armed, so a
/// simulator panic dumps the last K retired instructions to stderr.
pub fn run_composite(opts: &Options, progress: &Progress) -> RunOutput {
    let instructions = opts.instructions;
    let seed = opts.seed;
    progress.info(&format!(
        "running 5 workloads x {instructions} instructions (seed {seed}) ..."
    ));
    let mut per: Vec<(Workload, f64)> = Vec::new();
    let mut composite = None;
    let mut cs = None;
    let mut series = TimeSeries::default();
    let mut cycle_offset = 0u64;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut system = vax_workload::build_system(
            w,
            vax_workload::rte::PROCESSES_PER_WORKLOAD,
            seed.wrapping_add(i as u64),
        );
        if opts.flight_recorder > 0 {
            let recorder = SharedFlightRecorder::with_capacity(opts.flight_recorder);
            recorder.register_panic_dump();
            system.cpu.flight = recorder;
            progress.debug(&format!(
                "  {}: flight recorder armed (last {} instructions)",
                w.name(),
                opts.flight_recorder
            ));
        }
        let (m, ts) = system.measure_sampled(instructions / 10, instructions, opts.interval_cycles);
        progress.debug(&format!(
            "  {}: {} cycles, {} interval samples",
            w.name(),
            m.cycles,
            ts.samples.len()
        ));
        for mut s in ts.samples {
            s.start_cycle += cycle_offset;
            s.end_cycle += cycle_offset;
            series.samples.push(s);
        }
        cycle_offset += m.cycles;
        per.push((w, m.cpi()));
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(system.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
        progress.info(&format!(
            "  {} done (CPI {:.2})",
            w.name(),
            per.last().unwrap().1
        ));
    }
    let composite = composite.unwrap();
    let cs = cs.unwrap();
    let analysis = Analysis::new(&cs, &composite);
    let conservation_err = analysis.check_conservation().err();
    if let Some(e) = &conservation_err {
        progress.warn(&format!("conservation check failed: {e}"));
    }
    let validation = validate(&cs, &composite);
    if !validation.is_clean() {
        progress.warn(&format!(
            "counter validation diverged:\n{}",
            validation.render()
        ));
    }
    RunOutput {
        analysis,
        cs,
        series,
        validation,
        per_workload: per,
        conservation_err,
    }
}
