//! The composite measurement engine, extracted from the `reproduce` binary
//! so integration tests (and the fixture-freshness check) can run the exact
//! same code path programmatically.
//!
//! The run is a grid of independent shard jobs — one per `(workload,
//! shard)` cell, seeded by `vax_workload::rte::shard_seed` — executed on a
//! [`crate::pool`] of worker threads. Each worker builds its own simulated
//! system (the systems are `!Send`; only job descriptions and results
//! cross threads) and measures it; the parent then reduces the results in
//! `(workload, shard)` index order: measurements through
//! [`vax780::merge_ordered`], interval samples through
//! [`TimeSeries::splice`]. Because the reduction order is fixed by index
//! and never by completion order, a run's output is byte-identical at any
//! `--jobs` count — `--jobs` buys wall-clock time, not different numbers.
//!
//! A panicking shard does not hang the pool: the pool hands back which job
//! died, the parent dumps that shard's flight recording (when armed) so
//! the crash comes with its instruction-level backtrace, and the original
//! panic resumes.

use std::panic::resume_unwind;

use vax780::{merge_ordered, Measurement, TimeSeries};
use vax_analysis::{validate, Analysis, ValidationReport};
use vax_cpu::{ControlStore, SharedFlightRecorder};
use vax_workload::Workload;

use crate::cli::Options;
use crate::pool::{panic_message, run_jobs};
use crate::progress::Progress;

/// Everything a composite run produces, ready for rendering or export.
#[derive(Debug)]
pub struct RunOutput {
    /// The reduced composite analysis (owns the merged [`vax780::Measurement`]).
    pub analysis: Analysis,
    /// The control store the reduction was keyed on (all systems share the
    /// same layout).
    pub cs: ControlStore,
    /// Composite interval time series, cycle offsets spliced so every
    /// shard of every workload forms one contiguous timeline in
    /// `(workload, shard)` order.
    pub series: TimeSeries,
    /// Counter-conservation validation of the composite measurement.
    pub validation: ValidationReport,
    /// `(workload, CPI)` for each workload's merged shards, in
    /// [`Workload::ALL`] order.
    pub per_workload: Vec<(Workload, f64)>,
    /// Conservation-check failure message, if the reduction lost cycles.
    pub conservation_err: Option<String>,
}

/// One cell of the run grid: workload `workload_index`, replica `shard`.
struct ShardJob {
    workload: Workload,
    workload_index: u64,
    shard: u64,
    /// This shard's flight recorder (disabled unless `--flight-recorder`);
    /// the parent keeps the handle so a worker panic can be dumped with
    /// the right shard's instruction history.
    recorder: SharedFlightRecorder,
}

/// What a shard sends back across the thread boundary.
struct ShardResult {
    m: Measurement,
    series: TimeSeries,
    /// Control-store layout, captured by the first grid cell only (every
    /// system shares the same microcode image).
    cs: Option<ControlStore>,
}

/// Run the workload × shard grid described by `opts`.
///
/// Warmup is `instructions / 10` per shard (not measured); the cell at
/// `(workload w, shard s)` is seeded with
/// `SeedStream::new(seed).stream(w).stream(s)`. Up to `opts.jobs` shards
/// run concurrently; results are reduced in grid-index order so the output
/// does not depend on `opts.jobs`. When `opts.flight_recorder > 0` every
/// shard gets its own recorder of that capacity, and a shard panic dumps
/// that shard's last K retired instructions to stderr before propagating.
///
/// # Panics
/// Panics if `opts.jobs == 0` or `opts.shards == 0` (the CLI rejects both
/// up front), or by resuming a worker's panic.
pub fn run_composite(opts: &Options, progress: &Progress) -> RunOutput {
    assert!(opts.shards > 0, "run_composite: shards must be at least 1");
    let instructions = opts.instructions;
    let seed = opts.seed;
    let shards = opts.shards as usize;
    progress.info(&format!(
        "running 5 workloads x {shards} shard(s) x {instructions} instructions \
         (seed {seed}, {} job(s)) ...",
        opts.jobs
    ));

    let grid: Vec<ShardJob> = Workload::ALL
        .iter()
        .enumerate()
        .flat_map(|(w, &workload)| {
            (0..opts.shards).map(move |shard| ShardJob {
                workload,
                workload_index: w as u64,
                shard,
                recorder: SharedFlightRecorder::with_capacity(opts.flight_recorder),
            })
        })
        .collect();

    let results = run_jobs(opts.jobs, &grid, |_, job: &ShardJob| {
        let mut system =
            vax_workload::rte::build_shard(job.workload, job.workload_index, job.shard, seed);
        if job.recorder.is_enabled() {
            system.cpu.flight = job.recorder.clone();
        }
        let (m, series) =
            system.measure_sampled(instructions / 10, instructions, opts.interval_cycles);
        progress.debug(&format!(
            "  {} shard {}: {} cycles, {} interval samples",
            job.workload.name(),
            job.shard,
            m.cycles,
            series.samples.len()
        ));
        let cs = (job.workload_index == 0 && job.shard == 0).then(|| system.cpu.cs.clone());
        ShardResult { m, series, cs }
    });

    let mut results = match results {
        Ok(r) => r,
        Err(p) => {
            let job = &grid[p.index];
            progress.warn(&format!(
                "{} shard {} panicked: {}",
                job.workload.name(),
                job.shard,
                panic_message(&p.payload)
            ));
            if job.recorder.is_enabled() && !job.recorder.is_empty() {
                job.recorder.dump_stderr();
            }
            resume_unwind(p.payload);
        }
    };

    // Deterministic reduction: grid-index order, regardless of which
    // worker finished when.
    let cs = results[0].cs.take().expect("first grid cell captures cs");
    let mut per: Vec<(Workload, f64)> = Vec::new();
    let mut composite = Measurement::default();
    let mut series = TimeSeries::default();
    let mut cycle_offset = 0u64;
    for (w, &workload) in Workload::ALL.iter().enumerate() {
        let cells = &results[w * shards..(w + 1) * shards];
        let merged: Measurement = merge_ordered(cells.iter().map(|r| &r.m));
        for r in cells {
            // Advance by the shard's measured cycles, not the last sample
            // boundary: a measurement whose tail produced no sample still
            // occupies its cycles on the composite timeline.
            series.splice(cycle_offset, &r.series);
            cycle_offset += r.m.cycles;
        }
        progress.info(&format!(
            "  {} done (CPI {:.2})",
            workload.name(),
            merged.cpi()
        ));
        per.push((workload, merged.cpi()));
        composite.merge(&merged);
    }

    let analysis = Analysis::new(&cs, &composite);
    let conservation_err = analysis.check_conservation().err();
    if let Some(e) = &conservation_err {
        progress.warn(&format!("conservation check failed: {e}"));
    }
    let validation = validate(&cs, &composite);
    if !validation.is_clean() {
        progress.warn(&format!(
            "counter validation diverged:\n{}",
            validation.render()
        ));
    }
    RunOutput {
        analysis,
        cs,
        series,
        validation,
        per_workload: per,
        conservation_err,
    }
}
