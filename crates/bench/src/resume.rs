//! Checkpoint layout and the resume protocol.
//!
//! A run with `--out DIR` journals its progress under `DIR/checkpoints/`:
//!
//! - `run.json` — the experiment definition (instructions, seed, shards,
//!   experiment, format, fault plan, ...), written once before the grid
//!   starts. Runtime knobs — `--jobs`, `--retries`, `--shard-timeout`,
//!   `--strict`, verbosity — are deliberately absent: they never change
//!   results, so a resume may choose them anew.
//! - `cell-<w>-<s>.json` — one full-fidelity
//!   [`vax_analysis::CheckpointCell`] per completed `(workload, shard)`
//!   cell, written atomically the moment the cell finishes.
//!
//! `reproduce resume DIR` reconstructs the run options from `run.json`,
//! loads every parseable cell, re-runs only the missing ones (same shard
//! seeds ⇒ same results), and re-exports. Because the reduction is keyed
//! by grid index and every writer is atomic, the resumed export is
//! byte-identical to an uninterrupted run no matter when the original
//! process died.

use std::path::{Path, PathBuf};

use vax780::FaultClass;
use vax_analysis::{cell_from_json, CheckpointCell, Json};
use vax_workload::Workload;

use crate::cli::{Format, Options, ResumeOptions, EXPERIMENTS};
use crate::progress::Progress;

/// Format version of the run header; bump on any schema change so a resume
/// never reinterprets an older run's definition.
pub const HEADER_FORMAT_VERSION: i64 = 1;

/// The checkpoint directory of a run exporting to `out`.
pub fn checkpoints_dir(out: &Path) -> PathBuf {
    out.join("checkpoints")
}

/// Path of the run-definition header.
pub fn header_path(out: &Path) -> PathBuf {
    checkpoints_dir(out).join("run.json")
}

/// Path of one cell's checkpoint.
pub fn cell_path(out: &Path, workload: u64, shard: u64) -> PathBuf {
    checkpoints_dir(out).join(format!("cell-{workload}-{shard}.json"))
}

/// Serialize the experiment definition of `opts` (runtime knobs excluded).
pub fn header_json(opts: &Options) -> Json {
    Json::obj([
        ("format_version", Json::Int(HEADER_FORMAT_VERSION)),
        ("instructions", Json::from(opts.instructions)),
        ("seed", Json::from(opts.seed)),
        ("shards", Json::from(opts.shards)),
        ("experiment", Json::Str(opts.experiment.clone())),
        (
            "format",
            Json::Str(
                match opts.format {
                    Format::Text => "text",
                    Format::Json => "json",
                }
                .to_string(),
            ),
        ),
        ("interval_cycles", Json::from(opts.interval_cycles)),
        ("per_workload", Json::Bool(opts.per_workload)),
        ("profile", Json::Bool(opts.profile)),
        ("top", Json::from(opts.top as u64)),
        ("flight_recorder", Json::from(opts.flight_recorder as u64)),
        ("fault_seed", opts.fault_seed.map_or(Json::Null, Json::from)),
        (
            "fault_classes",
            Json::arr(
                opts.fault_classes
                    .iter()
                    .map(|c| Json::Str(c.name().to_string())),
            ),
        ),
    ])
}

/// Reconstruct run options from a header, taking runtime knobs (and the
/// output directory) from the resume invocation.
///
/// # Errors
/// Any structural defect in the header — wrong version, missing or
/// mistyped field, unknown experiment or fault class — is an error: a
/// resume must never guess at the experiment definition.
pub fn options_from_header(text: &str, resume: &ResumeOptions) -> Result<Options, String> {
    let j = Json::parse(text).map_err(|e| format!("checkpoint header: {e}"))?;
    let int = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_i64)
            .and_then(|v| u64::try_from(v).ok())
            .ok_or_else(|| format!("checkpoint header: missing integer '{key}'"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        match j.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("checkpoint header: missing boolean '{key}'")),
        }
    };

    let version = j
        .get("format_version")
        .and_then(Json::as_i64)
        .ok_or("checkpoint header: missing 'format_version'")?;
    if version != HEADER_FORMAT_VERSION {
        return Err(format!(
            "checkpoint header: format_version {version} \
             (this binary writes {HEADER_FORMAT_VERSION})"
        ));
    }

    let experiment = j
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("checkpoint header: missing string 'experiment'")?;
    if !EXPERIMENTS.contains(&experiment) {
        return Err(format!(
            "checkpoint header: unknown experiment '{experiment}'"
        ));
    }
    let format = match j.get("format").and_then(Json::as_str) {
        Some("text") => Format::Text,
        Some("json") => Format::Json,
        _ => return Err("checkpoint header: 'format' must be text|json".to_string()),
    };
    let fault_seed = match j.get("fault_seed") {
        Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .and_then(|v| u64::try_from(v).ok())
                .ok_or("checkpoint header: 'fault_seed' is not a u64")?,
        ),
        None => return Err("checkpoint header: missing 'fault_seed'".to_string()),
    };
    let mut fault_classes = Vec::new();
    for c in j
        .get("fault_classes")
        .and_then(Json::as_arr)
        .ok_or("checkpoint header: missing 'fault_classes' array")?
    {
        let name = c
            .as_str()
            .ok_or("checkpoint header: fault class is not a string")?;
        fault_classes.push(FaultClass::parse(name).map_err(|e| format!("checkpoint header: {e}"))?);
    }

    let shards = int("shards")?;
    if shards == 0 {
        return Err("checkpoint header: 'shards' must be at least 1".to_string());
    }
    let instructions = int("instructions")?;
    if instructions == 0 {
        return Err("checkpoint header: 'instructions' must be at least 1".to_string());
    }

    Ok(Options {
        instructions,
        seed: int("seed")?,
        jobs: resume.jobs,
        shards,
        experiment: experiment.to_string(),
        per_workload: flag("per_workload")?,
        format,
        out: Some(resume.dir.clone()),
        interval_cycles: int("interval_cycles")?.max(1),
        profile: flag("profile")?,
        top: int("top")?.max(1) as usize,
        flight_recorder: int("flight_recorder")? as usize,
        verbosity: resume.verbosity,
        bench_out: None,
        fault_seed,
        fault_classes,
        retries: resume.retries,
        shard_timeout_secs: resume.shard_timeout_secs,
        strict: resume.strict,
        inject_panic: None,
        trace_out: resume.trace_out.clone(),
        progress_ms: resume.progress_ms,
        cancel: resume.cancel.clone(),
    })
}

/// Load every parseable cell checkpoint of the `Workload::ALL.len() ×
/// shards` grid, in grid-index order. A missing or corrupt checkpoint is
/// `None` (the cell will be re-run); a corrupt one is also warned about,
/// since it means the journal was damaged rather than merely incomplete.
pub fn load_cells(out: &Path, shards: u64, progress: &Progress) -> Vec<Option<CheckpointCell>> {
    let mut cells = Vec::with_capacity(Workload::ALL.len() * shards as usize);
    for w in 0..Workload::ALL.len() as u64 {
        for s in 0..shards {
            let path = cell_path(out, w, s);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(_) => {
                    cells.push(None);
                    continue;
                }
            };
            let cell = Json::parse(&text)
                .and_then(|j| cell_from_json(&j))
                .and_then(|c| {
                    if c.workload == w && c.shard == s {
                        Ok(c)
                    } else {
                        Err(format!(
                            "cell indices ({}, {}) disagree with file name",
                            c.workload, c.shard
                        ))
                    }
                });
            match cell {
                Ok(c) => cells.push(Some(c)),
                Err(e) => {
                    progress.warn(&format!(
                        "discarding corrupt checkpoint {}: {e}",
                        path.display()
                    ));
                    cells.push(None);
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Verbosity;

    fn resume_opts(dir: &str) -> ResumeOptions {
        ResumeOptions {
            dir: PathBuf::from(dir),
            jobs: 3,
            retries: 2,
            shard_timeout_secs: Some(9.0),
            strict: true,
            verbosity: Verbosity::Quiet,
            trace_out: None,
            progress_ms: None,
            cancel: crate::cancel::CancelToken::default(),
        }
    }

    #[test]
    fn header_round_trips_the_experiment_definition() {
        let mut opts = Options {
            instructions: 123_456,
            seed: 99,
            shards: 4,
            experiment: "table8".to_string(),
            format: Format::Json,
            interval_cycles: 7_000,
            per_workload: true,
            profile: true,
            top: 11,
            flight_recorder: 64,
            fault_seed: Some(42),
            fault_classes: vec![FaultClass::Parity, FaultClass::Smc],
            ..Options::default()
        };
        let text = header_json(&opts).to_string_pretty();
        let back = options_from_header(&text, &resume_opts("/tmp/run")).unwrap();

        // The experiment definition survives...
        assert_eq!(back.instructions, opts.instructions);
        assert_eq!(back.seed, opts.seed);
        assert_eq!(back.shards, opts.shards);
        assert_eq!(back.experiment, opts.experiment);
        assert_eq!(back.format, opts.format);
        assert_eq!(back.interval_cycles, opts.interval_cycles);
        assert_eq!(back.per_workload, opts.per_workload);
        assert_eq!(back.profile, opts.profile);
        assert_eq!(back.top, opts.top);
        assert_eq!(back.flight_recorder, opts.flight_recorder);
        assert_eq!(back.fault_seed, opts.fault_seed);
        assert_eq!(back.fault_classes, opts.fault_classes);
        // ...while runtime knobs come from the resume invocation.
        assert_eq!(back.jobs, 3);
        assert_eq!(back.retries, 2);
        assert_eq!(back.shard_timeout_secs, Some(9.0));
        assert!(back.strict);
        assert_eq!(back.out.as_deref(), Some(Path::new("/tmp/run")));
        assert!(back.inject_panic.is_none());

        // A header never pins runtime knobs: regenerating it from the
        // resumed options produces the same bytes.
        opts.jobs = back.jobs;
        opts.retries = back.retries;
        opts.shard_timeout_secs = back.shard_timeout_secs;
        opts.strict = back.strict;
        opts.verbosity = back.verbosity;
        opts.out = back.out.clone();
        assert_eq!(header_json(&back).to_string_pretty(), text);
    }

    #[test]
    fn header_without_faults_round_trips_null() {
        let text = header_json(&Options::default()).to_string_pretty();
        assert!(text.contains("\"fault_seed\": null"), "{text}");
        let back = options_from_header(&text, &resume_opts("/x")).unwrap();
        assert!(back.fault_seed.is_none());
        assert!(back.fault_classes.is_empty());
    }

    #[test]
    fn rejects_damaged_headers() {
        let good = header_json(&Options::default()).to_string_pretty();
        for (from, to, expect) in [
            (
                "\"format_version\": 1",
                "\"format_version\": 99",
                "format_version",
            ),
            (
                "\"experiment\": \"all\"",
                "\"experiment\": \"table99\"",
                "unknown experiment",
            ),
            ("\"format\": \"text\"", "\"format\": \"xml\"", "text|json"),
            ("\"shards\": 1", "\"shards\": 0", "at least 1"),
            ("\"seed\": 1984", "\"seed\": \"x\"", "seed"),
        ] {
            let text = good.replacen(from, to, 1);
            assert_ne!(text, good, "replacement '{from}' missed");
            let err = options_from_header(&text, &resume_opts("/x")).unwrap_err();
            assert!(err.contains(expect), "{err}");
        }
        assert!(options_from_header("{", &resume_opts("/x")).is_err());
        assert!(options_from_header("[]", &resume_opts("/x")).is_err());
    }
}
