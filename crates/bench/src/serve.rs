//! `reproduce serve`: the long-lived, multi-tenant characterization
//! daemon.
//!
//! One process, one [`JobEngine`], many jobs. Clients POST a
//! [`JobSpec`] (see `crate::jobspec`) and get a job ID back; the daemon
//! executes jobs one at a time, FIFO, on a single worker thread that
//! keeps the engine — and therefore the warm codegen/boot caches — alive
//! between jobs. A second job with the same experiment definition skips
//! workload generation and kernel boot entirely, and says so in its
//! `runtime.json` cache counters.
//!
//! Because a served job is materialized into the *same* option structs
//! the CLI parsers produce and handed to the *same* engine, its artifact
//! directory is byte-identical to a CLI run of the same spec (the CI
//! serve-smoke job downloads artifacts over HTTP and `cmp`s them against
//! a CLI run).
//!
//! ## Endpoints
//!
//! | Method & path                  | Purpose                                  |
//! |--------------------------------|------------------------------------------|
//! | `POST /jobs`                   | Submit a spec; `202` + job ID            |
//! | `GET /jobs`                    | List jobs, oldest first                  |
//! | `GET /jobs/:id`                | Status (+ live progress while running)   |
//! | `POST /jobs/:id/cancel`        | Cancel a queued or running job           |
//! | `GET /jobs/:id/artifacts`      | List the job's artifact files            |
//! | `GET /jobs/:id/artifacts/NAME` | Download one artifact                    |
//! | `GET /jobs/:id/events`         | ndjson status stream until terminal      |
//! | `GET /healthz`                 | Liveness + state (always `200`)          |
//! | `GET /readyz`                  | `200` when ready, `503` otherwise        |
//! | `POST /shutdown`               | Drain (same as SIGTERM)                  |
//!
//! ## Durability and recovery
//!
//! Every submission and state transition is appended to
//! `ROOT/journal.ndjson` (one fsynced `O_APPEND` line each). A daemon
//! restarted on the same `--root` replays the journal before accepting
//! traffic: terminal jobs keep their status (and their downloadable
//! artifacts), still-queued jobs are re-enqueued, and a job that was
//! mid-run is re-enqueued first — a measurement run with an intact
//! checkpoint header resumes from its per-cell journal
//! (`reproduce resume` semantics, in-process), so the recovered
//! artifacts are byte-identical to an uninterrupted run. On startup the
//! replayed history is compacted to one folded record per job.
//!
//! ## Lifecycle and drain
//!
//! `SIGTERM`/`SIGINT` (or `POST /shutdown`) puts the daemon into drain:
//! new submissions get `503`, the running job finishes cleanly, and the
//! process exits 0. Jobs still queued at drain stay journaled as queued
//! and are recovered by the next daemon on the same root; a measurement
//! run interrupted harder than that is recoverable via `reproduce
//! resume` from its checkpoint journal (`docs/ROBUSTNESS.md`).
//!
//! Protocol plumbing (parsing, limits, serialization) lives in the
//! dependency-free `vax_serve` crate; this module owns the registry, the
//! journal, the worker, and the HTTP surface. See `docs/SERVICE.md`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vax_analysis::Json;
use vax_serve::{write_streaming_head, HttpError, Request, Response};
use vax_trace::{Tracer, MAIN_TID};

use crate::cancel::{CancelKind, CancelToken};
use crate::cli::{Format, ResumeOptions, ServeOptions};
use crate::engine::{JobEngine, JobOutcome, JobRequest};
use crate::fsio::write_atomic;
use crate::heartbeat::progress_line;
use crate::jobspec::JobSpec;
use crate::progress::{Progress, Verbosity};

/// How often the accept loop polls for the drain flag, and how often the
/// events stream re-samples a running job.
const POLL: Duration = Duration::from_millis(50);
/// Events-stream sampling period.
const EVENTS_PERIOD: Duration = Duration::from_millis(200);
/// Per-connection socket timeout: a stalled client cannot pin its
/// handler thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// Most unfinished (queued + running) jobs admitted at once.
const MAX_PENDING_JOBS: usize = 64;
/// File name of the durable job journal under the serve root.
const JOURNAL_NAME: &str = "journal.ndjson";

/// Where a job is in its life.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Terminal; `code` 0 = done, nonzero = failed.
    Finished {
        code: i32,
    },
    /// Terminal; stopped at a cell boundary by `POST /jobs/:id/cancel`
    /// or an expired `deadline_secs`. Completed cells stay checkpointed.
    Canceled {
        kind: CancelKind,
    },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished { code: 0 } => "done",
            JobState::Finished { .. } => "failed",
            JobState::Canceled { kind } => kind.name(),
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Finished { .. } | JobState::Canceled { .. })
    }
}

/// One submitted job.
#[derive(Debug)]
struct Job {
    id: String,
    spec: JobSpec,
    dir: PathBuf,
    state: JobState,
    /// The running job's tracer (live progress source); kept after
    /// finish for the final counter snapshot.
    tracer: Option<Tracer>,
    started: Option<Instant>,
    /// The running job's cancel token; inert until the job starts.
    cancel: CancelToken,
    /// Restored from the journal in a non-terminal state by a restarted
    /// daemon (counts toward the `recovering` health state).
    recovered: bool,
}

/// The durable job journal: newline-delimited JSON under the serve root.
/// Each append is one `O_APPEND` line write plus fsync — O(1) per state
/// transition regardless of history length (rewriting the full file per
/// append would be O(n²) write amplification over a daemon's lifetime).
/// A crash can tear at most the trailing line, which replay already
/// warns about and skips; startup compaction then rewrites the file
/// atomically to one folded record per job, healing any damage.
#[derive(Debug, Default)]
struct Journal {
    /// `None` journals to memory only (unit tests).
    path: Option<PathBuf>,
    lines: Vec<String>,
}

impl Journal {
    fn at(path: PathBuf) -> Journal {
        Journal {
            path: Some(path),
            lines: Vec::new(),
        }
    }

    /// Durably append one record. A write failure is warned about, not
    /// fatal: the daemon keeps serving (degraded durability beats
    /// refusing work).
    fn append(&mut self, record: &Json) {
        let line = record.to_string_compact();
        if let Some(path) = &self.path {
            if let Err(e) = append_line(path, &line) {
                eprintln!(
                    "reproduce serve: cannot append to journal {}: {e}",
                    path.display()
                );
            }
        }
        self.lines.push(line);
    }

    /// Rewrite the whole journal atomically from `lines` — the startup
    /// compaction path, not the append path. Failures are warned about,
    /// not fatal.
    fn flush(&self) {
        let Some(path) = &self.path else { return };
        let mut text = self.lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        if let Err(e) = write_atomic(path, &text) {
            eprintln!(
                "reproduce serve: cannot write journal {}: {e}",
                path.display()
            );
        }
    }
}

/// One `O_APPEND` write of `line` + newline, fsynced before returning so
/// the record is durable when the caller's state transition proceeds.
fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(format!("{line}\n").as_bytes())?;
    file.sync_data()
}

/// A submission record: carries the canonical spec so a restart can
/// rebuild the job without trusting anything else on disk.
fn journal_submit(id: &str, spec: &JobSpec) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("state", "queued".into()),
        ("spec", spec.encode()),
    ])
}

/// A state-transition record (`code` only for `done`/`failed`).
fn journal_state(id: &str, state: &str, code: Option<i32>) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("state", state.into()),
        ("code", code.map_or(Json::Null, |c| i64::from(c).into())),
    ])
}

/// The compacted form: one record carrying a job's spec and last state.
fn folded_record(id: &str, spec: &JobSpec, state: &JobState) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("state", state.name().into()),
        (
            "code",
            match state {
                JobState::Finished { code } => i64::from(*code).into(),
                _ => Json::Null,
            },
        ),
        ("spec", spec.encode()),
    ])
}

/// The sequence number a job ID encodes (`j-000042` → 42).
fn id_seq(id: &str) -> u64 {
    id.strip_prefix("j-")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// One job reconstructed from the journal.
#[derive(Debug)]
struct ReplayedJob {
    id: String,
    spec: JobSpec,
    /// `Queued` for any job that was not terminal — a crashed `running`
    /// job goes back to the queue (it re-runs or resumes).
    state: JobState,
    /// True when the job still needs to run to completion.
    recovered: bool,
}

/// Fold the journal into per-job records, in ID (= submission) order.
/// Corrupt lines and jobs with no recoverable spec are skipped with a
/// warning — a damaged journal degrades, it does not brick the daemon.
fn replay_journal(text: &str) -> (Vec<ReplayedJob>, Vec<String>) {
    #[derive(Default)]
    struct Folded {
        spec: Option<JobSpec>,
        state: String,
        code: Option<i32>,
    }
    let mut warnings = Vec::new();
    let mut folded: BTreeMap<String, Folded> = BTreeMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                warnings.push(format!("journal: skipping corrupt line: {e}"));
                continue;
            }
        };
        let Some(id) = record.get("id").and_then(Json::as_str) else {
            warnings.push("journal: skipping record without an 'id'".to_string());
            continue;
        };
        let entry = folded.entry(id.to_string()).or_default();
        if let Some(spec_json) = record.get("spec") {
            match JobSpec::decode(&spec_json.to_string_compact()) {
                Ok(spec) => entry.spec = Some(spec),
                Err(e) => warnings.push(format!("journal: job {id}: unreadable spec: {e}")),
            }
        }
        if let Some(state) = record.get("state").and_then(Json::as_str) {
            entry.state = state.to_string();
        }
        if let Some(code) = record.get("code").and_then(Json::as_i64) {
            entry.code = Some(code as i32);
        }
    }
    let mut jobs = Vec::new();
    for (id, f) in folded {
        let Some(spec) = f.spec else {
            warnings.push(format!("journal: job {id} has no spec record; dropping it"));
            continue;
        };
        let (state, recovered) = match f.state.as_str() {
            "queued" | "running" => (JobState::Queued, true),
            "done" | "failed" => {
                let fallback = i32::from(f.state == "failed");
                (
                    JobState::Finished {
                        code: f.code.unwrap_or(fallback),
                    },
                    false,
                )
            }
            other => match CancelKind::parse(other) {
                Some(kind) => (JobState::Canceled { kind }, false),
                None => {
                    warnings.push(format!(
                        "journal: job {id} has unknown state '{other}'; re-queueing it"
                    ));
                    (JobState::Queued, true)
                }
            },
        };
        jobs.push(ReplayedJob {
            id,
            spec,
            state,
            recovered,
        });
    }
    (jobs, warnings)
}

/// Registry guarded by one mutex; the condvar wakes the worker.
#[derive(Debug, Default)]
struct Registry {
    jobs: BTreeMap<String, Job>,
    /// Submission order (BTreeMap iteration order matches because IDs
    /// are zero-padded sequence numbers, but the queue is authoritative).
    queue: VecDeque<String>,
    next_seq: u64,
    journal: Journal,
}

/// Everything the connection handlers, worker, and accept loop share.
#[derive(Debug)]
struct Shared {
    opts: ServeOptions,
    registry: Mutex<Registry>,
    wake: Condvar,
    /// Set by SIGTERM/SIGINT or `POST /shutdown`: refuse new jobs,
    /// finish the current one, exit.
    draining: AtomicBool,
    /// Journal-recovered jobs not yet terminal; `/readyz` reports
    /// `recovering` (503) until this drains to zero.
    recovering: AtomicUsize,
    /// In-flight connections, for the `--max-connections` load-shed cap.
    connections: AtomicUsize,
}

/// One claimed slot under the `--max-connections` cap. Claiming and
/// releasing go through this guard so the count stays balanced on every
/// exit path — including a panicking handler thread, which would
/// otherwise leak its slot forever and eventually wedge the load-shed
/// path into answering 503 to all traffic.
struct ConnectionSlot(Arc<Shared>);

impl ConnectionSlot {
    /// Claim a slot; returns the guard and the in-flight count after
    /// claiming (for the over-cap check).
    fn acquire(shared: &Arc<Shared>) -> (ConnectionSlot, usize) {
        let active = shared.connections.fetch_add(1, Ordering::SeqCst) + 1;
        (ConnectionSlot(Arc::clone(shared)), active)
    }
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Lock the registry, recovering from a poisoned mutex: a handler
/// thread that panicked mid-update must not wedge every future request,
/// and registry updates are small enough that the state a panicking
/// thread leaves behind is still coherent (worst case, a job stays in
/// its previous state).
fn lock_registry(shared: &Shared) -> MutexGuard<'_, Registry> {
    shared
        .registry
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The daemon's coarse health: `draining` > `recovering` > `ready`.
fn health_state(shared: &Shared) -> &'static str {
    if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if shared.recovering.load(Ordering::SeqCst) > 0 {
        "recovering"
    } else {
        "ready"
    }
}

#[cfg(unix)]
mod sig {
    //! Minimal signal hookup without a libc crate: `signal(2)` is in
    //! every libc this build links anyway, and an `AtomicBool` store is
    //! async-signal-safe. The accept loop polls the flag.
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_terminate as extern "C" fn(i32) as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn pending() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

/// Run the daemon until drained. Returns the process exit code.
pub fn run_serve(opts: &ServeOptions) -> i32 {
    let progress = Progress::new(opts.verbosity);
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("reproduce serve: cannot bind {}: {e}", opts.addr);
            return 1;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("reproduce serve: cannot configure listener: {e}");
        return 1;
    }
    if let Err(e) = std::fs::create_dir_all(&opts.root) {
        eprintln!(
            "reproduce serve: cannot create {}: {e}",
            opts.root.display()
        );
        return 1;
    }
    sig::install();

    // Replay the journal before accepting traffic: a restart on the
    // same root picks up exactly where the previous daemon died.
    let journal_path = opts.root.join(JOURNAL_NAME);
    let journal_text = match std::fs::read_to_string(&journal_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!(
                "reproduce serve: cannot read journal {}: {e}",
                journal_path.display()
            );
            String::new()
        }
    };
    let (replayed, warnings) = replay_journal(&journal_text);
    for w in &warnings {
        progress.warn(w);
    }
    let mut registry = Registry {
        journal: Journal::at(journal_path),
        ..Registry::default()
    };
    let mut recovering = 0usize;
    for rj in replayed {
        registry.next_seq = registry.next_seq.max(id_seq(&rj.id));
        if rj.recovered {
            // ID order is submission order, so the job that was running
            // when the daemon died lands at the front again.
            registry.queue.push_back(rj.id.clone());
            recovering += 1;
        }
        let dir = opts.root.join(&rj.id);
        registry.jobs.insert(
            rj.id.clone(),
            Job {
                id: rj.id,
                spec: rj.spec,
                dir,
                state: rj.state,
                tracer: None,
                started: None,
                cancel: CancelToken::default(),
                recovered: rj.recovered,
            },
        );
    }
    if !registry.jobs.is_empty() || !journal_text.is_empty() {
        // Startup compaction: the replayed history collapses to one
        // folded record per job.
        registry.journal.lines = registry
            .jobs
            .values()
            .map(|j| folded_record(&j.id, &j.spec, &j.state).to_string_compact())
            .collect();
        registry.journal.flush();
        progress.info(&format!(
            "journal replay: {} job(s), {} to finish",
            registry.jobs.len(),
            recovering
        ));
    }

    let shared = Arc::new(Shared {
        opts: opts.clone(),
        registry: Mutex::new(registry),
        wake: Condvar::new(),
        draining: AtomicBool::new(false),
        recovering: AtomicUsize::new(recovering),
        connections: AtomicUsize::new(0),
    });
    // local_addr never fails on a bound listener, but don't panic a
    // daemon over a log line.
    let bound = listener
        .local_addr()
        .map_or_else(|_| opts.addr.clone(), |a| a.to_string());
    progress.info(&format!(
        "serving on http://{bound} (root {})",
        opts.root.display()
    ));

    let worker = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(&shared))
    };

    // The accept loop outlives the drain signal: status, artifact, and
    // events requests keep working while the running job finishes. It
    // ends when the worker does.
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if sig::pending() {
            shared.draining.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
        }
        if worker.is_finished() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let (slot, active) = ConnectionSlot::acquire(&shared);
                if active > shared.opts.max_connections {
                    // Load-shed inline: one small write, then close; the
                    // slot releases when `slot` drops at scope end.
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                    let _ = error_response(503, "connection limit reached; retry shortly")
                        .with_header("Retry-After", "1")
                        .write(&mut stream);
                } else {
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || {
                        // The guard rides into the handler thread so even
                        // a panic unwinds through its Drop.
                        let _slot = slot;
                        handle_connection(stream, &shared);
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("reproduce serve: accept failed: {e}");
                std::thread::sleep(POLL);
            }
        }
        handlers.retain(|h| !h.is_finished());
    }

    progress.info("draining: finishing the running job");
    let _ = worker.join();
    for h in handlers {
        let _ = h.join();
    }
    progress.info("drained cleanly");
    0
}

/// The single job-executing thread. One [`JobEngine`] lives here for the
/// daemon's whole life — that is the warm-cache tenancy.
fn worker_loop(shared: &Shared) {
    let engine = JobEngine::new();
    loop {
        let next = {
            let mut reg = lock_registry(shared);
            loop {
                // Check drain BEFORE claiming: a job left queued at
                // drain stays journaled as queued, so the next daemon on
                // this root recovers it.
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(id) = reg.queue.pop_front() {
                    break Some(id);
                }
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(reg, POLL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                reg = guard;
            }
        };
        let Some(id) = next else { return };
        execute_job(shared, &engine, &id);
    }
}

/// Run one job start to finish, updating the registry and journal
/// around it. Recovered jobs resume from their checkpoints when the
/// checkpoint header survived; cancellation and deadlines land at the
/// next cell boundary via the job's [`CancelToken`].
fn execute_job(shared: &Shared, engine: &JobEngine, id: &str) {
    let tracer = Tracer::enabled();
    let cancel = CancelToken::new();
    let recover_start = tracer.now_us();
    let (spec, dir, recovered) = {
        let mut reg = lock_registry(shared);
        let Some(job) = reg.jobs.get_mut(id) else {
            return;
        };
        if job.state != JobState::Queued {
            // Canceled between enqueue and claim; nothing to run.
            return;
        }
        job.state = JobState::Running;
        job.tracer = Some(tracer.clone());
        job.started = Some(Instant::now());
        job.cancel = cancel.clone();
        let picked = (job.spec.clone(), job.dir.clone(), job.recovered);
        let record = journal_state(id, "running", None);
        reg.journal.append(&record);
        picked
    };
    // JobSpec::decode bounds deadline_secs, but a worker panic here is a
    // daemon outage (and a journaled job would replay the panic on every
    // restart), so conversion stays fallible: an unconvertible budget
    // means no deadline, never an unwind.
    if let Some(budget) = spec
        .deadline_secs()
        .and_then(|s| Duration::try_from_secs_f64(s).ok())
    {
        cancel.arm_deadline(budget);
    }
    // A recovered measurement run with an intact checkpoint header picks
    // up from its per-cell journal instead of starting over.
    let resumed =
        recovered && matches!(spec, JobSpec::Run(_)) && crate::resume::header_path(&dir).exists();
    if recovered {
        // Recorded before execution so it lands in this job's trace and
        // runtime.json: the span covers the recovery decision.
        tracer.complete(
            MAIN_TID,
            "recover",
            recover_start,
            vec![("resumed", u64::from(resumed).into())],
        );
        tracer.count(MAIN_TID, "jobs_recovered", 1);
        if resumed {
            tracer.count(MAIN_TID, "jobs_resumed", 1);
        }
    }
    let request = if resumed {
        Ok(JobRequest::Resume(ResumeOptions {
            dir: dir.clone(),
            jobs: shared.opts.jobs,
            retries: shared.opts.retries,
            shard_timeout_secs: None,
            strict: false,
            verbosity: Verbosity::Quiet,
            trace_out: None,
            progress_ms: None,
            cancel: cancel.clone(),
        }))
    } else {
        build_request(&spec, &dir, &shared.opts, &cancel)
    };
    let outcome = match request {
        Ok(req) => engine.execute_traced(&req, &tracer),
        Err(msg) => {
            eprintln!("reproduce serve: job {id}: {msg}");
            JobOutcome {
                code: 1,
                stdout: String::new(),
                canceled: None,
            }
        }
    };
    // The engine latched the cancel cause it acted on; re-polling the
    // token here would race a deadline that elapsed *after* the run
    // finished and exported, mislabeling a completed job as
    // deadline_exceeded (final artifacts exist exactly when the engine
    // says the job was not canceled).
    let terminal = match outcome.canceled {
        Some(kind) => JobState::Canceled { kind },
        None => JobState::Finished { code: outcome.code },
    };
    // Persist what the CLI would have printed, so it is a downloadable
    // artifact and part of the byte-identity contract.
    if !outcome.stdout.is_empty() {
        if let Err(e) = write_atomic(&dir.join("output.txt"), &outcome.stdout) {
            eprintln!("reproduce serve: job {id}: cannot write output.txt: {e}");
        }
    }
    let status = Json::obj([
        ("id", Json::from(id)),
        ("kind", spec.kind().into()),
        ("status", terminal.name().into()),
        (
            "code",
            match &terminal {
                JobState::Finished { code } => i64::from(*code).into(),
                _ => Json::Null,
            },
        ),
    ]);
    if let Err(e) = write_atomic(&dir.join("status.json"), &status.to_string_pretty()) {
        eprintln!("reproduce serve: job {id}: cannot write status.json: {e}");
    }
    {
        let mut reg = lock_registry(shared);
        let record = journal_state(
            id,
            terminal.name(),
            match &terminal {
                JobState::Finished { code } => Some(*code),
                _ => None,
            },
        );
        if let Some(job) = reg.jobs.get_mut(id) {
            job.state = terminal;
        }
        reg.journal.append(&record);
    }
    if recovered {
        shared.recovering.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Materialize the engine request for a spec: the daemon's runtime knobs
/// (artifact dir, JSON format, quiet narration, default parallelism,
/// cancel token) on top of the spec's experiment definition.
fn build_request(
    spec: &JobSpec,
    dir: &Path,
    opts: &ServeOptions,
    cancel: &CancelToken,
) -> Result<JobRequest, String> {
    match spec {
        JobSpec::Run(_) => {
            let mut run = spec.to_run_options(opts.jobs, opts.retries);
            run.format = Format::Json;
            run.out = Some(dir.to_path_buf());
            run.verbosity = Verbosity::Quiet;
            run.cancel = cancel.clone();
            Ok(JobRequest::Run(run))
        }
        JobSpec::Characterize(_) => {
            let mut ch = spec.to_characterize_options(opts.jobs, opts.retries);
            ch.out = Some(dir.to_path_buf());
            ch.verbosity = Verbosity::Quiet;
            ch.cancel = cancel.clone();
            Ok(JobRequest::Characterize(ch))
        }
        JobSpec::Refute(r) => {
            let mut ch = spec.to_characterize_options(opts.jobs, opts.retries);
            ch.out = Some(dir.to_path_buf());
            ch.verbosity = Verbosity::Quiet;
            ch.cancel = cancel.clone();
            ch.fixtures = Some(dir.join("fixtures"));
            if let Some(model) = &r.model {
                let path = dir.join("model.json");
                write_atomic(&path, &model.to_string_pretty())
                    .map_err(|e| format!("cannot write model.json: {e}"))?;
                ch.model = Some(path);
            }
            Ok(JobRequest::Refute(ch))
        }
    }
}

/// Serve one connection: read a request, route it, answer, close.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let req = match Request::read(&mut reader) {
        Ok(req) => req,
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(HttpError::BadRequest(msg)) => {
            let _ = error_response(400, &msg).write(&mut stream);
            return;
        }
        Err(HttpError::TooLarge(msg)) => {
            let _ = error_response(413, &msg).write(&mut stream);
            return;
        }
    };
    let segments: Vec<String> = req
        .path_segments()
        .into_iter()
        .map(str::to_string)
        .collect();
    let segs: Vec<&str> = segments.iter().map(String::as_str).collect();
    let response = match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["jobs"]) => submit_job(&req, shared),
        ("GET", ["jobs"]) => list_jobs(shared),
        ("GET", ["jobs", id]) => job_status(shared, id),
        ("POST", ["jobs", id, "cancel"]) => cancel_job(shared, id),
        ("GET", ["jobs", id, "artifacts"]) => list_artifacts(shared, id),
        ("GET", ["jobs", id, "artifacts", name]) => get_artifact(shared, id, name),
        ("GET", ["jobs", id, "events"]) => {
            // Streams directly on the socket; no Response to send after.
            stream_events(&mut stream, shared, id);
            return;
        }
        ("GET", ["healthz"]) => {
            let body = Json::obj([("state", Json::from(health_state(shared)))]);
            Response::json(200, &body.to_string_compact())
        }
        ("GET", ["readyz"]) => {
            let state = health_state(shared);
            let body = Json::obj([("state", Json::from(state))]).to_string_compact();
            let status = if state == "ready" { 200 } else { 503 };
            Response::json(status, &body)
        }
        ("POST", ["shutdown"]) => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
            Response::json(202, "{\"draining\": true}")
        }
        (_, ["jobs", ..] | ["shutdown"] | ["healthz"] | ["readyz"]) => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such resource"),
    };
    let _ = response.write(&mut stream);
}

/// A JSON error body: `{"error": "..."}`.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Json::obj([("error", Json::from(msg))]);
    Response::json(status, &body.to_string_compact())
}

/// `POST /jobs`: validate the spec, journal it, persist it, enqueue.
fn submit_job(req: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return error_response(503, "draining: not accepting new jobs");
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    // Decode errors carry byte offsets (syntax) or field names
    // (validation) — forward them verbatim as the 400 body.
    let spec = match JobSpec::decode(text) {
        Ok(spec) => spec,
        Err(msg) => return error_response(400, &msg),
    };
    let (id, dir) = {
        let mut reg = lock_registry(shared);
        let pending = reg.jobs.values().filter(|j| !j.state.is_terminal()).count();
        if pending >= MAX_PENDING_JOBS {
            return error_response(503, "job queue is full");
        }
        reg.next_seq += 1;
        let id = format!("j-{:06}", reg.next_seq);
        let dir = shared.opts.root.join(&id);
        reg.jobs.insert(
            id.clone(),
            Job {
                id: id.clone(),
                spec: spec.clone(),
                dir: dir.clone(),
                state: JobState::Queued,
                tracer: None,
                started: None,
                cancel: CancelToken::default(),
                recovered: false,
            },
        );
        let record = journal_submit(&id, &spec);
        reg.journal.append(&record);
        (id, dir)
    };
    // The canonical spec (defaults materialized) is the job's first
    // artifact: it documents exactly what will run, and `reproduce` can
    // be pointed at it to reproduce the job offline.
    let persisted = std::fs::create_dir_all(&dir)
        .map_err(|e| e.to_string())
        .and_then(|()| {
            write_atomic(&dir.join("spec.json"), &spec.encode().to_string_pretty())
                .map_err(|e| e.to_string())
        });
    if let Err(e) = persisted {
        // The job was journaled, so mark it failed rather than erasing
        // it: the live registry and a replayed registry must agree.
        let mut reg = lock_registry(shared);
        if let Some(job) = reg.jobs.get_mut(&id) {
            job.state = JobState::Finished { code: 1 };
        }
        let record = journal_state(&id, "failed", Some(1));
        reg.journal.append(&record);
        return error_response(500, &format!("cannot persist job: {e}"));
    }
    {
        // Claimable only once its spec is durable on disk.
        let mut reg = lock_registry(shared);
        reg.queue.push_back(id.clone());
    }
    shared.wake.notify_all();
    let body = Json::obj([
        ("id", Json::from(id.as_str())),
        ("kind", spec.kind().into()),
        ("status", "queued".into()),
    ]);
    Response::json(202, &body.to_string_compact()).with_header("Location", &format!("/jobs/{id}"))
}

/// `POST /jobs/:id/cancel`: a queued job goes terminal on the spot; a
/// running job gets its token fired and goes terminal at the next cell
/// boundary (checkpoints of completed cells are preserved).
fn cancel_job(shared: &Shared, id: &str) -> Response {
    let mut reg = lock_registry(shared);
    let state = match reg.jobs.get(id) {
        None => return error_response(404, &format!("no job '{id}'")),
        Some(job) => job.state.clone(),
    };
    match state {
        JobState::Queued => {
            let (dir, kind, was_recovered) = {
                let Some(job) = reg.jobs.get_mut(id) else {
                    return error_response(404, &format!("no job '{id}'"));
                };
                job.state = JobState::Canceled {
                    kind: CancelKind::Canceled,
                };
                (job.dir.clone(), job.spec.kind(), job.recovered)
            };
            reg.queue.retain(|q| q != id);
            let record = journal_state(id, "canceled", None);
            reg.journal.append(&record);
            drop(reg);
            if was_recovered {
                shared.recovering.fetch_sub(1, Ordering::SeqCst);
            }
            let status = Json::obj([
                ("id", Json::from(id)),
                ("kind", kind.into()),
                ("status", "canceled".into()),
                ("code", Json::Null),
            ]);
            // Best-effort status artifact; the dir may not exist if the
            // job's spec never persisted.
            if dir.is_dir() {
                if let Err(e) = write_atomic(&dir.join("status.json"), &status.to_string_pretty()) {
                    eprintln!("reproduce serve: job {id}: cannot write status.json: {e}");
                }
            }
            Response::json(200, &status.to_string_compact())
        }
        JobState::Running => {
            if let Some(job) = reg.jobs.get(id) {
                job.cancel.cancel();
            }
            drop(reg);
            let body = Json::obj([("id", Json::from(id)), ("status", "canceling".into())]);
            Response::json(202, &body.to_string_compact())
        }
        terminal => error_response(
            409,
            &format!("job '{id}' is {}; nothing to cancel", terminal.name()),
        ),
    }
}

/// One job's status object (registry must be locked by the caller).
fn status_json(job: &Job) -> Json {
    let mut m: Vec<(String, Json)> = vec![
        ("id".into(), job.id.as_str().into()),
        ("kind".into(), job.spec.kind().into()),
        ("status".into(), job.state.name().into()),
        (
            "code".into(),
            match job.state {
                JobState::Finished { code } => i64::from(code).into(),
                _ => Json::Null,
            },
        ),
    ];
    if job.state == JobState::Running {
        if let (Some(tracer), Some(started)) = (&job.tracer, job.started) {
            let elapsed_ms = started.elapsed().as_millis() as u64;
            m.push(("progress".into(), progress_line(tracer, elapsed_ms)));
        }
    }
    Json::Obj(m)
}

/// `GET /jobs`: every job, submission order.
fn list_jobs(shared: &Shared) -> Response {
    let reg = lock_registry(shared);
    let jobs = Json::arr(reg.jobs.values().map(status_json));
    Response::json(200, &Json::obj([("jobs", jobs)]).to_string_pretty())
}

/// `GET /jobs/:id`.
fn job_status(shared: &Shared, id: &str) -> Response {
    let reg = lock_registry(shared);
    match reg.jobs.get(id) {
        Some(job) => Response::json(200, &status_json(job).to_string_pretty()),
        None => error_response(404, &format!("no job '{id}'")),
    }
}

/// Look up a *terminal* job's directory; the common gate for the
/// artifact endpoints (serving a half-written directory would hand out
/// torn reads). Canceled jobs count: whatever they checkpointed is
/// stable and downloadable.
fn finished_job_dir(shared: &Shared, id: &str) -> Result<PathBuf, Response> {
    let reg = lock_registry(shared);
    match reg.jobs.get(id) {
        None => Err(error_response(404, &format!("no job '{id}'"))),
        Some(job) if job.state.is_terminal() => Ok(job.dir.clone()),
        Some(job) => Err(error_response(
            409,
            &format!(
                "job '{id}' is {}; artifacts appear when it finishes",
                job.state.name()
            ),
        )),
    }
}

/// `GET /jobs/:id/artifacts`: sorted file listing.
fn list_artifacts(shared: &Shared, id: &str) -> Response {
    let dir = match finished_job_dir(shared, id) {
        Ok(dir) => dir,
        Err(resp) => return resp,
    };
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect(),
        Err(e) => return error_response(500, &format!("cannot list artifacts: {e}")),
    };
    names.sort();
    let body = Json::obj([(
        "artifacts",
        Json::arr(names.iter().map(|n| n.as_str().into())),
    )]);
    Response::json(200, &body.to_string_pretty())
}

/// `GET /jobs/:id/artifacts/NAME`: download one file. `NAME` must be a
/// bare file name — anything that could escape the job directory
/// (separators, `..`) is rejected before touching the filesystem.
fn get_artifact(shared: &Shared, id: &str, name: &str) -> Response {
    let dir = match finished_job_dir(shared, id) {
        Ok(dir) => dir,
        Err(resp) => return resp,
    };
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains(['/', '\\'])
        || name.contains('\0')
    {
        return error_response(404, "no such artifact");
    }
    let path = dir.join(name);
    match std::fs::read(&path) {
        Ok(bytes) => {
            let content_type = match path.extension().and_then(|e| e.to_str()) {
                Some("json") => "application/json",
                Some("csv") => "text/csv",
                _ => "text/plain; charset=utf-8",
            };
            Response {
                status: 200,
                headers: vec![("Content-Type".to_string(), content_type.to_string())],
                body: bytes,
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            error_response(404, &format!("no artifact '{name}'"))
        }
        Err(e) => error_response(500, &format!("cannot read artifact: {e}")),
    }
}

/// `GET /jobs/:id/events`: a close-delimited ndjson stream of status
/// snapshots, one every [`EVENTS_PERIOD`], ending with the terminal
/// state. The poll-driven shape keeps the handler free of any coupling
/// to the worker: it reads the same registry the status endpoint does.
fn stream_events(stream: &mut TcpStream, shared: &Shared, id: &str) {
    {
        let reg = lock_registry(shared);
        if !reg.jobs.contains_key(id) {
            let _ = error_response(404, &format!("no job '{id}'")).write(stream);
            return;
        }
    }
    if write_streaming_head(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    loop {
        let (line, terminal) = {
            let reg = lock_registry(shared);
            match reg.jobs.get(id) {
                None => return,
                Some(job) => (
                    status_json(job).to_string_compact(),
                    job.state.is_terminal(),
                ),
            }
        };
        if stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
        if terminal {
            return;
        }
        // A drained daemon never starts its remaining queued jobs; end
        // those streams instead of pinning the drain on a live client.
        if shared.draining.load(Ordering::SeqCst) {
            let reg = lock_registry(shared);
            if reg.jobs.get(id).is_none_or(|j| j.state == JobState::Queued) {
                return;
            }
        }
        std::thread::sleep(EVENTS_PERIOD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUN_SPEC: &str = r#"{"kind": "run", "instructions": 2000, "seed": 42, "shards": 1}"#;

    fn run_spec() -> JobSpec {
        JobSpec::decode(RUN_SPEC).unwrap()
    }

    fn bare_shared() -> Arc<Shared> {
        Arc::new(Shared {
            opts: ServeOptions::default(),
            registry: Mutex::new(Registry::default()),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            recovering: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
        })
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let shared = bare_shared();
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let mut reg = poisoner.registry.lock().unwrap();
            reg.next_seq = 7;
            panic!("poison the registry mutex");
        })
        .join();
        assert!(shared.registry.is_poisoned());
        // Every endpoint goes through lock_registry, which must keep
        // serving the coherent pre-panic state.
        let reg = lock_registry(&shared);
        assert_eq!(reg.next_seq, 7);
        drop(reg);
        let mut reg = lock_registry(&shared);
        reg.next_seq = 8;
        drop(reg);
        assert_eq!(lock_registry(&shared).next_seq, 8);
    }

    #[test]
    fn replay_recovers_nonterminal_and_keeps_terminal_states() {
        let spec = run_spec();
        let text = [
            journal_submit("j-000001", &spec).to_string_compact(),
            journal_state("j-000001", "running", None).to_string_compact(),
            journal_state("j-000001", "done", Some(0)).to_string_compact(),
            journal_submit("j-000002", &spec).to_string_compact(),
            journal_state("j-000002", "running", None).to_string_compact(),
            journal_submit("j-000003", &spec).to_string_compact(),
        ]
        .join("\n");
        let (jobs, warnings) = replay_journal(&text);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, "j-000001");
        assert_eq!(jobs[0].state, JobState::Finished { code: 0 });
        assert!(!jobs[0].recovered);
        // The mid-run job and the still-queued job both come back
        // queued, flagged for recovery.
        for job in &jobs[1..] {
            assert_eq!(job.state, JobState::Queued);
            assert!(job.recovered);
        }
        assert_eq!(id_seq(&jobs[2].id), 3);
    }

    #[test]
    fn replay_restores_cancel_states() {
        let spec = run_spec();
        let text = [
            journal_submit("j-000001", &spec).to_string_compact(),
            journal_state("j-000001", "canceled", None).to_string_compact(),
            journal_submit("j-000002", &spec).to_string_compact(),
            journal_state("j-000002", "deadline_exceeded", None).to_string_compact(),
        ]
        .join("\n");
        let (jobs, warnings) = replay_journal(&text);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(
            jobs[0].state,
            JobState::Canceled {
                kind: CancelKind::Canceled
            }
        );
        assert_eq!(
            jobs[1].state,
            JobState::Canceled {
                kind: CancelKind::DeadlineExceeded
            }
        );
        assert!(jobs.iter().all(|j| !j.recovered));
        assert_eq!(jobs[0].state.name(), "canceled");
        assert_eq!(jobs[1].state.name(), "deadline_exceeded");
    }

    #[test]
    fn replay_skips_damage_without_dropping_good_records() {
        let spec = run_spec();
        let text = format!(
            "not json at all\n{}\n{{\"state\": \"running\"}}\n{}\n",
            journal_submit("j-000005", &spec).to_string_compact(),
            journal_state("j-000009", "running", None).to_string_compact(),
        );
        let (jobs, warnings) = replay_journal(&text);
        // j-000005 survives; the corrupt line, the id-less record, and
        // the spec-less j-000009 are each warned about.
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "j-000005");
        assert!(jobs[0].recovered);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
    }

    #[test]
    fn folded_records_compact_to_one_line_per_job() {
        let spec = run_spec();
        let long = [
            journal_submit("j-000001", &spec).to_string_compact(),
            journal_state("j-000001", "running", None).to_string_compact(),
            journal_state("j-000001", "failed", Some(3)).to_string_compact(),
            journal_submit("j-000002", &spec).to_string_compact(),
        ]
        .join("\n");
        let (jobs, _) = replay_journal(&long);
        let compacted: Vec<String> = jobs
            .iter()
            .map(|j| folded_record(&j.id, &j.spec, &j.state).to_string_compact())
            .collect();
        assert_eq!(compacted.len(), 2);
        // Compaction is a fixpoint: replaying the folded records gives
        // the same states back.
        let (again, warnings) = replay_journal(&compacted.join("\n"));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(again.len(), 2);
        assert_eq!(again[0].state, JobState::Finished { code: 3 });
        assert_eq!(again[1].state, JobState::Queued);
        assert!(again[1].recovered);
    }

    #[test]
    fn journal_appends_are_durable_and_cumulative() {
        let dir = std::env::temp_dir().join(format!("vax-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_NAME);
        let mut journal = Journal::at(path.clone());
        journal.append(&journal_submit("j-000001", &run_spec()));
        journal.append(&journal_state("j-000001", "running", None));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let (jobs, warnings) = replay_journal(&text);
        assert!(warnings.is_empty());
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].recovered);
        // Appends land after a compaction rewrite, not over it.
        journal.lines =
            vec![folded_record("j-000001", &run_spec(), &JobState::Queued).to_string_compact()];
        journal.flush();
        journal.append(&journal_state("j-000001", "done", Some(0)));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let (jobs, _) = replay_journal(&text);
        assert_eq!(jobs[0].state, JobState::Finished { code: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_append_is_skipped_and_healed_by_replay() {
        // A crash mid-append tears at most the trailing line; replay
        // must keep every complete record and warn about the tear.
        let spec = run_spec();
        let text = format!(
            "{}\n{}\n{{\"id\": \"j-000002\", \"sta",
            journal_submit("j-000001", &spec).to_string_compact(),
            journal_state("j-000001", "running", None).to_string_compact(),
        );
        let (jobs, warnings) = replay_journal(&text);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "j-000001");
        assert!(jobs[0].recovered);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
    }

    #[test]
    fn connection_slot_releases_on_handler_panic() {
        let shared = bare_shared();
        let (slot, active) = ConnectionSlot::acquire(&shared);
        assert_eq!(active, 1);
        let _ = std::thread::spawn(move || {
            let _slot = slot;
            panic!("handler dies mid-request");
        })
        .join();
        // The panicking thread's unwind ran the guard's Drop: no leak,
        // so the load-shed cap cannot wedge into permanent 503s.
        assert_eq!(shared.connections.load(Ordering::SeqCst), 0);
        let (slot, active) = ConnectionSlot::acquire(&shared);
        assert_eq!(active, 1);
        drop(slot);
        assert_eq!(shared.connections.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn id_seq_reads_the_numeric_suffix() {
        assert_eq!(id_seq("j-000042"), 42);
        assert_eq!(id_seq("garbage"), 0);
    }
}
