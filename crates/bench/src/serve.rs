//! `reproduce serve`: the long-lived, multi-tenant characterization
//! daemon.
//!
//! One process, one [`JobEngine`], many jobs. Clients POST a
//! [`JobSpec`] (see `crate::jobspec`) and get a job ID back; the daemon
//! executes jobs one at a time, FIFO, on a single worker thread that
//! keeps the engine — and therefore the warm codegen/boot caches — alive
//! between jobs. A second job with the same experiment definition skips
//! workload generation and kernel boot entirely, and says so in its
//! `runtime.json` cache counters.
//!
//! Because a served job is materialized into the *same* option structs
//! the CLI parsers produce and handed to the *same* engine, its artifact
//! directory is byte-identical to a CLI run of the same spec (the CI
//! serve-smoke job downloads artifacts over HTTP and `cmp`s them against
//! a CLI run).
//!
//! ## Endpoints
//!
//! | Method & path                  | Purpose                                  |
//! |--------------------------------|------------------------------------------|
//! | `POST /jobs`                   | Submit a spec; `202` + job ID            |
//! | `GET /jobs`                    | List jobs, oldest first                  |
//! | `GET /jobs/:id`                | Status (+ live progress while running)   |
//! | `GET /jobs/:id/artifacts`      | List the job's artifact files            |
//! | `GET /jobs/:id/artifacts/NAME` | Download one artifact                    |
//! | `GET /jobs/:id/events`         | ndjson status stream until terminal      |
//! | `POST /shutdown`               | Drain (same as SIGTERM)                  |
//!
//! ## Lifecycle and drain
//!
//! `SIGTERM`/`SIGINT` (or `POST /shutdown`) puts the daemon into drain:
//! new submissions get `503`, the running job finishes cleanly, and the
//! process exits 0. Jobs still queued at drain stay on disk — each job
//! directory holds the canonical `spec.json`, so nothing is lost: a
//! measurement run interrupted harder than that is recoverable via
//! `reproduce resume` from its checkpoint journal (`docs/ROBUSTNESS.md`).
//!
//! Protocol plumbing (parsing, limits, serialization) lives in the
//! dependency-free `vax_serve` crate; this module owns the registry, the
//! worker, and the HTTP surface. See `docs/SERVICE.md`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vax_analysis::Json;
use vax_serve::{write_streaming_head, HttpError, Request, Response};
use vax_trace::Tracer;

use crate::cli::{Format, ServeOptions};
use crate::engine::{JobEngine, JobOutcome, JobRequest};
use crate::fsio::write_atomic;
use crate::heartbeat::progress_line;
use crate::jobspec::JobSpec;
use crate::progress::{Progress, Verbosity};

/// How often the accept loop polls for the drain flag, and how often the
/// events stream re-samples a running job.
const POLL: Duration = Duration::from_millis(50);
/// Events-stream sampling period.
const EVENTS_PERIOD: Duration = Duration::from_millis(200);
/// Per-connection socket timeout: a stalled client cannot pin its
/// handler thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// Most unfinished (queued + running) jobs admitted at once.
const MAX_PENDING_JOBS: usize = 64;

/// Where a job is in its life.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Terminal; `code` 0 = done, nonzero = failed.
    Finished {
        code: i32,
    },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished { code: 0 } => "done",
            JobState::Finished { .. } => "failed",
        }
    }
}

/// One submitted job.
#[derive(Debug)]
struct Job {
    id: String,
    spec: JobSpec,
    dir: PathBuf,
    state: JobState,
    /// The running job's tracer (live progress source); kept after
    /// finish for the final counter snapshot.
    tracer: Option<Tracer>,
    started: Option<Instant>,
}

/// Registry guarded by one mutex; the condvar wakes the worker.
#[derive(Debug, Default)]
struct Registry {
    jobs: BTreeMap<String, Job>,
    /// Submission order (BTreeMap iteration order matches because IDs
    /// are zero-padded sequence numbers, but the queue is authoritative).
    queue: VecDeque<String>,
    next_seq: u64,
}

/// Everything the connection handlers, worker, and accept loop share.
#[derive(Debug)]
struct Shared {
    opts: ServeOptions,
    registry: Mutex<Registry>,
    wake: Condvar,
    /// Set by SIGTERM/SIGINT or `POST /shutdown`: refuse new jobs,
    /// finish the current one, exit.
    draining: AtomicBool,
}

#[cfg(unix)]
mod sig {
    //! Minimal signal hookup without a libc crate: `signal(2)` is in
    //! every libc this build links anyway, and an `AtomicBool` store is
    //! async-signal-safe. The accept loop polls the flag.
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_terminate as extern "C" fn(i32) as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn pending() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

/// Run the daemon until drained. Returns the process exit code.
pub fn run_serve(opts: &ServeOptions) -> i32 {
    let progress = Progress::new(opts.verbosity);
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("reproduce serve: cannot bind {}: {e}", opts.addr);
            return 1;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("reproduce serve: cannot configure listener: {e}");
        return 1;
    }
    if let Err(e) = std::fs::create_dir_all(&opts.root) {
        eprintln!(
            "reproduce serve: cannot create {}: {e}",
            opts.root.display()
        );
        return 1;
    }
    sig::install();
    let shared = Arc::new(Shared {
        opts: opts.clone(),
        registry: Mutex::new(Registry::default()),
        wake: Condvar::new(),
        draining: AtomicBool::new(false),
    });
    // local_addr never fails on a bound listener, but don't panic a
    // daemon over a log line.
    let bound = listener
        .local_addr()
        .map_or_else(|_| opts.addr.clone(), |a| a.to_string());
    progress.info(&format!(
        "serving on http://{bound} (root {})",
        opts.root.display()
    ));

    let worker = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(&shared))
    };

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if sig::pending() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("reproduce serve: accept failed: {e}");
                std::thread::sleep(POLL);
            }
        }
        handlers.retain(|h| !h.is_finished());
    }

    progress.info("draining: finishing the running job");
    shared.wake.notify_all();
    let _ = worker.join();
    for h in handlers {
        let _ = h.join();
    }
    progress.info("drained cleanly");
    0
}

/// The single job-executing thread. One [`JobEngine`] lives here for the
/// daemon's whole life — that is the warm-cache tenancy.
fn worker_loop(shared: &Shared) {
    let engine = JobEngine::new();
    loop {
        let next = {
            let mut reg = shared.registry.lock().unwrap();
            loop {
                if let Some(id) = reg.queue.pop_front() {
                    break Some(id);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared.wake.wait_timeout(reg, POLL).unwrap();
                reg = guard;
            }
        };
        let Some(id) = next else { return };
        execute_job(shared, &engine, &id);
    }
}

/// Run one job start to finish, updating the registry around it.
fn execute_job(shared: &Shared, engine: &JobEngine, id: &str) {
    let tracer = Tracer::enabled();
    let (spec, dir) = {
        let mut reg = shared.registry.lock().unwrap();
        let Some(job) = reg.jobs.get_mut(id) else {
            return;
        };
        job.state = JobState::Running;
        job.tracer = Some(tracer.clone());
        job.started = Some(Instant::now());
        (job.spec.clone(), job.dir.clone())
    };
    let outcome = match build_request(&spec, &dir, &shared.opts) {
        Ok(req) => engine.execute_traced(&req, &tracer),
        Err(msg) => {
            eprintln!("reproduce serve: job {id}: {msg}");
            JobOutcome {
                code: 1,
                stdout: String::new(),
            }
        }
    };
    // Persist what the CLI would have printed, so it is a downloadable
    // artifact and part of the byte-identity contract.
    if !outcome.stdout.is_empty() {
        if let Err(e) = write_atomic(&dir.join("output.txt"), &outcome.stdout) {
            eprintln!("reproduce serve: job {id}: cannot write output.txt: {e}");
        }
    }
    let status = Json::obj([
        ("id", Json::from(id)),
        ("kind", spec.kind().into()),
        ("code", i64::from(outcome.code).into()),
    ]);
    if let Err(e) = write_atomic(&dir.join("status.json"), &status.to_string_pretty()) {
        eprintln!("reproduce serve: job {id}: cannot write status.json: {e}");
    }
    let mut reg = shared.registry.lock().unwrap();
    if let Some(job) = reg.jobs.get_mut(id) {
        job.state = JobState::Finished { code: outcome.code };
    }
}

/// Materialize the engine request for a spec: the daemon's runtime knobs
/// (artifact dir, JSON format, quiet narration, default parallelism) on
/// top of the spec's experiment definition.
fn build_request(spec: &JobSpec, dir: &Path, opts: &ServeOptions) -> Result<JobRequest, String> {
    match spec {
        JobSpec::Run(_) => {
            let mut run = spec.to_run_options(opts.jobs, opts.retries);
            run.format = Format::Json;
            run.out = Some(dir.to_path_buf());
            run.verbosity = Verbosity::Quiet;
            Ok(JobRequest::Run(run))
        }
        JobSpec::Characterize(_) => {
            let mut ch = spec.to_characterize_options(opts.jobs, opts.retries);
            ch.out = Some(dir.to_path_buf());
            ch.verbosity = Verbosity::Quiet;
            Ok(JobRequest::Characterize(ch))
        }
        JobSpec::Refute(r) => {
            let mut ch = spec.to_characterize_options(opts.jobs, opts.retries);
            ch.out = Some(dir.to_path_buf());
            ch.verbosity = Verbosity::Quiet;
            ch.fixtures = Some(dir.join("fixtures"));
            if let Some(model) = &r.model {
                let path = dir.join("model.json");
                write_atomic(&path, &model.to_string_pretty())
                    .map_err(|e| format!("cannot write model.json: {e}"))?;
                ch.model = Some(path);
            }
            Ok(JobRequest::Refute(ch))
        }
    }
}

/// Serve one connection: read a request, route it, answer, close.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let req = match Request::read(&mut reader) {
        Ok(req) => req,
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(HttpError::BadRequest(msg)) => {
            let _ = error_response(400, &msg).write(&mut stream);
            return;
        }
        Err(HttpError::TooLarge(msg)) => {
            let _ = error_response(413, &msg).write(&mut stream);
            return;
        }
    };
    let segments: Vec<String> = req
        .path_segments()
        .into_iter()
        .map(str::to_string)
        .collect();
    let segs: Vec<&str> = segments.iter().map(String::as_str).collect();
    let response = match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["jobs"]) => submit_job(&req, shared),
        ("GET", ["jobs"]) => list_jobs(shared),
        ("GET", ["jobs", id]) => job_status(shared, id),
        ("GET", ["jobs", id, "artifacts"]) => list_artifacts(shared, id),
        ("GET", ["jobs", id, "artifacts", name]) => get_artifact(shared, id, name),
        ("GET", ["jobs", id, "events"]) => {
            // Streams directly on the socket; no Response to send after.
            stream_events(&mut stream, shared, id);
            return;
        }
        ("POST", ["shutdown"]) => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
            Response::json(202, "{\"draining\": true}")
        }
        (_, ["jobs", ..] | ["shutdown"]) => error_response(405, "method not allowed"),
        _ => error_response(404, "no such resource"),
    };
    let _ = response.write(&mut stream);
}

/// A JSON error body: `{"error": "..."}`.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Json::obj([("error", Json::from(msg))]);
    Response::json(status, &body.to_string_compact())
}

/// `POST /jobs`: validate the spec, persist it, enqueue.
fn submit_job(req: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return error_response(503, "draining: not accepting new jobs");
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    // Decode errors carry byte offsets (syntax) or field names
    // (validation) — forward them verbatim as the 400 body.
    let spec = match JobSpec::decode(text) {
        Ok(spec) => spec,
        Err(msg) => return error_response(400, &msg),
    };
    let (id, dir) = {
        let mut reg = shared.registry.lock().unwrap();
        let pending = reg
            .jobs
            .values()
            .filter(|j| !matches!(j.state, JobState::Finished { .. }))
            .count();
        if pending >= MAX_PENDING_JOBS {
            return error_response(503, "job queue is full");
        }
        reg.next_seq += 1;
        let id = format!("j-{:06}", reg.next_seq);
        let dir = shared.opts.root.join(&id);
        reg.jobs.insert(
            id.clone(),
            Job {
                id: id.clone(),
                spec: spec.clone(),
                dir: dir.clone(),
                state: JobState::Queued,
                tracer: None,
                started: None,
            },
        );
        reg.queue.push_back(id.clone());
        (id, dir)
    };
    // The canonical spec (defaults materialized) is the job's first
    // artifact: it documents exactly what will run, and `reproduce` can
    // be pointed at it to reproduce the job offline.
    let persisted = std::fs::create_dir_all(&dir)
        .map_err(|e| e.to_string())
        .and_then(|()| {
            write_atomic(&dir.join("spec.json"), &spec.encode().to_string_pretty())
                .map_err(|e| e.to_string())
        });
    if let Err(e) = persisted {
        let mut reg = shared.registry.lock().unwrap();
        reg.jobs.remove(&id);
        reg.queue.retain(|q| q != &id);
        return error_response(500, &format!("cannot persist job: {e}"));
    }
    shared.wake.notify_all();
    let body = Json::obj([
        ("id", Json::from(id.as_str())),
        ("kind", spec.kind().into()),
        ("status", "queued".into()),
    ]);
    Response::json(202, &body.to_string_compact()).with_header("Location", &format!("/jobs/{id}"))
}

/// One job's status object (registry must be locked by the caller).
fn status_json(job: &Job) -> Json {
    let mut m: Vec<(String, Json)> = vec![
        ("id".into(), job.id.as_str().into()),
        ("kind".into(), job.spec.kind().into()),
        ("status".into(), job.state.name().into()),
        (
            "code".into(),
            match job.state {
                JobState::Finished { code } => i64::from(code).into(),
                _ => Json::Null,
            },
        ),
    ];
    if job.state == JobState::Running {
        if let (Some(tracer), Some(started)) = (&job.tracer, job.started) {
            let elapsed_ms = started.elapsed().as_millis() as u64;
            m.push(("progress".into(), progress_line(tracer, elapsed_ms)));
        }
    }
    Json::Obj(m)
}

/// `GET /jobs`: every job, submission order.
fn list_jobs(shared: &Shared) -> Response {
    let reg = shared.registry.lock().unwrap();
    let jobs = Json::arr(reg.jobs.values().map(status_json));
    Response::json(200, &Json::obj([("jobs", jobs)]).to_string_pretty())
}

/// `GET /jobs/:id`.
fn job_status(shared: &Shared, id: &str) -> Response {
    let reg = shared.registry.lock().unwrap();
    match reg.jobs.get(id) {
        Some(job) => Response::json(200, &status_json(job).to_string_pretty()),
        None => error_response(404, &format!("no job '{id}'")),
    }
}

/// Look up a *finished* job's directory; the common gate for the
/// artifact endpoints (serving a half-written directory would hand out
/// torn reads).
fn finished_job_dir(shared: &Shared, id: &str) -> Result<PathBuf, Response> {
    let reg = shared.registry.lock().unwrap();
    match reg.jobs.get(id) {
        None => Err(error_response(404, &format!("no job '{id}'"))),
        Some(job) => match job.state {
            JobState::Finished { .. } => Ok(job.dir.clone()),
            _ => Err(error_response(
                409,
                &format!(
                    "job '{id}' is {}; artifacts appear when it finishes",
                    job.state.name()
                ),
            )),
        },
    }
}

/// `GET /jobs/:id/artifacts`: sorted file listing.
fn list_artifacts(shared: &Shared, id: &str) -> Response {
    let dir = match finished_job_dir(shared, id) {
        Ok(dir) => dir,
        Err(resp) => return resp,
    };
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect(),
        Err(e) => return error_response(500, &format!("cannot list artifacts: {e}")),
    };
    names.sort();
    let body = Json::obj([(
        "artifacts",
        Json::arr(names.iter().map(|n| n.as_str().into())),
    )]);
    Response::json(200, &body.to_string_pretty())
}

/// `GET /jobs/:id/artifacts/NAME`: download one file. `NAME` must be a
/// bare file name — anything that could escape the job directory
/// (separators, `..`) is rejected before touching the filesystem.
fn get_artifact(shared: &Shared, id: &str, name: &str) -> Response {
    let dir = match finished_job_dir(shared, id) {
        Ok(dir) => dir,
        Err(resp) => return resp,
    };
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains(['/', '\\'])
        || name.contains('\0')
    {
        return error_response(404, "no such artifact");
    }
    let path = dir.join(name);
    match std::fs::read(&path) {
        Ok(bytes) => {
            let content_type = match path.extension().and_then(|e| e.to_str()) {
                Some("json") => "application/json",
                Some("csv") => "text/csv",
                _ => "text/plain; charset=utf-8",
            };
            Response {
                status: 200,
                headers: vec![("Content-Type".to_string(), content_type.to_string())],
                body: bytes,
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            error_response(404, &format!("no artifact '{name}'"))
        }
        Err(e) => error_response(500, &format!("cannot read artifact: {e}")),
    }
}

/// `GET /jobs/:id/events`: a close-delimited ndjson stream of status
/// snapshots, one every [`EVENTS_PERIOD`], ending with the terminal
/// state. The poll-driven shape keeps the handler free of any coupling
/// to the worker: it reads the same registry the status endpoint does.
fn stream_events(stream: &mut TcpStream, shared: &Shared, id: &str) {
    {
        let reg = shared.registry.lock().unwrap();
        if !reg.jobs.contains_key(id) {
            let _ = error_response(404, &format!("no job '{id}'")).write(stream);
            return;
        }
    }
    if write_streaming_head(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    loop {
        let (line, terminal) = {
            let reg = shared.registry.lock().unwrap();
            match reg.jobs.get(id) {
                None => return,
                Some(job) => (
                    status_json(job).to_string_compact(),
                    matches!(job.state, JobState::Finished { .. }),
                ),
            }
        };
        if stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
        if terminal {
            return;
        }
        // A drained daemon never starts its remaining queued jobs; end
        // those streams instead of pinning the drain on a live client.
        if shared.draining.load(Ordering::SeqCst) {
            let reg = shared.registry.lock().unwrap();
            if reg.jobs.get(id).is_none_or(|j| j.state == JobState::Queued) {
                return;
            }
        }
        std::thread::sleep(EVENTS_PERIOD);
    }
}
