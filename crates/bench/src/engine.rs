//! The job engine: one entry point for every way a job can be submitted.
//!
//! A [`JobRequest`] is a fully-validated option struct (the same structs
//! the CLI parsers produce); [`JobEngine::execute`] runs it — simulation,
//! rendering, artifact export, observability flush — and returns a
//! [`JobOutcome`] holding the exit code and the text the CLI would have
//! printed to stdout. The `reproduce` binary is a thin frontend: parse
//! argv, call the engine, print the outcome. The `reproduce serve` daemon
//! is another frontend over the *same* engine, so an HTTP-submitted job
//! and a CLI invocation of the same spec produce byte-identical artifacts
//! by construction (CI-enforced by the serve-smoke job).
//!
//! The engine is long-lived: it owns the [`WarmCaches`] that let a second
//! job with the same experiment definition skip workload codegen and
//! kernel boot. A fresh engine per CLI invocation makes the caches a
//! no-op there (every cell misses once); a daemon keeps one engine across
//! jobs, which is where the warm path pays.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vax_analysis::{tables, Profile, RunManifest};
use vax_trace::{Tracer, MAIN_TID};

use crate::cache::WarmCaches;
use crate::cancel::CancelKind;
use crate::charrun;
use crate::cli::{CharacterizeOptions, Format, Options, ResumeOptions};
use crate::fsio::write_atomic;
use crate::heartbeat::{runtime_json, Heartbeat};
use crate::meter::HostMeter;
use crate::progress::Progress;
use crate::runner::{self, RunOutput};

/// A validated job for the engine: the same option structs the CLI
/// parsers build, minus any argv involvement.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// The five-workload composite measurement (`reproduce` / `run` spec).
    Run(Options),
    /// The per-opcode cost-table sweep (`reproduce characterize`).
    Characterize(CharacterizeOptions),
    /// Adversarial counter cross-checks (`reproduce refute`).
    Refute(CharacterizeOptions),
    /// Finish an interrupted `--out` run from its checkpoints.
    Resume(ResumeOptions),
}

impl JobRequest {
    fn trace_out(&self) -> Option<&Path> {
        match self {
            JobRequest::Run(o) => o.trace_out.as_deref(),
            JobRequest::Characterize(o) | JobRequest::Refute(o) => o.trace_out.as_deref(),
            JobRequest::Resume(o) => o.trace_out.as_deref(),
        }
    }

    fn progress_ms(&self) -> Option<u64> {
        match self {
            JobRequest::Run(o) => o.progress_ms,
            JobRequest::Characterize(o) | JobRequest::Refute(o) => o.progress_ms,
            JobRequest::Resume(o) => o.progress_ms,
        }
    }

    fn progress(&self) -> Progress {
        Progress::new(match self {
            JobRequest::Run(o) => o.verbosity,
            JobRequest::Characterize(o) | JobRequest::Refute(o) => o.verbosity,
            JobRequest::Resume(o) => o.verbosity,
        })
    }
}

/// What a finished job hands back to its frontend.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Process exit code the CLI would use (0 = clean).
    pub code: i32,
    /// Everything the job would have printed to stdout (tables, reports,
    /// stdout-mode JSON). Narration still goes to stderr as it happens.
    pub stdout: String,
    /// Set when the job's cancel token ended it early — the exact cause
    /// the engine acted on when it withheld final artifacts. Frontends
    /// must derive the terminal status from this latched value, not by
    /// re-polling the token: a deadline that elapses *after* the run
    /// completed and exported would otherwise mislabel a finished job.
    pub canceled: Option<CancelKind>,
}

/// Long-lived executor for [`JobRequest`]s (see module docs).
#[derive(Debug, Default)]
pub struct JobEngine {
    caches: Arc<WarmCaches>,
}

impl JobEngine {
    /// An engine with empty warm caches.
    pub fn new() -> JobEngine {
        JobEngine::default()
    }

    /// An engine sharing an existing cache set.
    pub fn with_caches(caches: Arc<WarmCaches>) -> JobEngine {
        JobEngine { caches }
    }

    /// The engine's warm caches (for counter inspection / sharing).
    pub fn caches(&self) -> &Arc<WarmCaches> {
        &self.caches
    }

    /// Execute a job the way the CLI does: tracer and heartbeat built
    /// from the request's own `--trace-out` / `--progress` flags, then
    /// the observability flush.
    pub fn execute(&self, req: &JobRequest) -> JobOutcome {
        let progress = req.progress();
        let (tracer, heartbeat) = start_observability(req.trace_out(), req.progress_ms());
        let (mut outcome, flush_dir) = self.run_job(req, &progress, &tracer);
        drop(heartbeat);
        let obs_code =
            flush_observability(&tracer, req.trace_out(), flush_dir.as_deref(), &progress);
        if outcome.code == 0 {
            outcome.code = obs_code;
        }
        outcome
    }

    /// Execute a job under a caller-owned tracer — the daemon path. No
    /// heartbeat thread is started (the server reads progress from the
    /// tracer on demand); the flush still writes the request's trace file
    /// and the `runtime.json` roll-up into its output directory.
    pub fn execute_traced(&self, req: &JobRequest, tracer: &Tracer) -> JobOutcome {
        let progress = req.progress();
        let (mut outcome, flush_dir) = self.run_job(req, &progress, tracer);
        let obs_code =
            flush_observability(tracer, req.trace_out(), flush_dir.as_deref(), &progress);
        if outcome.code == 0 {
            outcome.code = obs_code;
        }
        outcome
    }

    /// Run the job body (no observability setup/flush). Returns the
    /// outcome and the directory `runtime.json` belongs in — for resume
    /// that is only known after the checkpoint header is read, which is
    /// why it is a return value and not `req.out()`.
    fn run_job(
        &self,
        req: &JobRequest,
        progress: &Progress,
        tracer: &Tracer,
    ) -> (JobOutcome, Option<PathBuf>) {
        match req {
            JobRequest::Run(opts) => self.run_measure(opts, progress, tracer),
            JobRequest::Characterize(opts) => {
                let outcome = run_characterize(opts, progress, tracer);
                (outcome, opts.out.clone())
            }
            JobRequest::Refute(opts) => {
                let outcome = run_refute(opts, progress, tracer);
                (outcome, opts.out.clone())
            }
            JobRequest::Resume(resume) => self.run_resume(resume, progress, tracer),
        }
    }

    /// The measurement run (`reproduce` with no subcommand).
    fn run_measure(
        &self,
        opts: &Options,
        progress: &Progress,
        tracer: &Tracer,
    ) -> (JobOutcome, Option<PathBuf>) {
        let mut stdout = String::new();
        if opts.experiment == "fig1" {
            stdout.push_str(&fig1());
            return (
                JobOutcome {
                    code: 0,
                    stdout,
                    canceled: None,
                },
                None,
            );
        }

        // Meter only the simulation itself, not rendering or artifact I/O.
        let meter = HostMeter::start();
        let out = runner::run_composite_cached(opts, progress, tracer, &self.caches);
        let bench = meter.finish(out.analysis.cycles, out.analysis.instructions);
        progress.info(&bench.summary());
        if let Some(dir) = &opts.bench_out {
            match bench.write_to(dir) {
                Ok(path) => progress.info(&format!("wrote {}", path.display())),
                Err(e) => {
                    eprintln!("reproduce: {e}");
                    return (
                        JobOutcome {
                            code: 1,
                            stdout,
                            canceled: out.canceled,
                        },
                        opts.out.clone(),
                    );
                }
            }
        }
        if let Some(kind) = out.canceled {
            // A canceled run keeps its checkpoints and runtime.json but
            // never exports final artifacts — a half-covered composite
            // must not look like a finished measurement.
            progress.info(&format!(
                "run {}: final artifacts not exported",
                kind.name()
            ));
            return (
                JobOutcome {
                    code: 1,
                    stdout,
                    canceled: Some(kind),
                },
                opts.out.clone(),
            );
        }
        let code = render_and_export(opts, &out, progress, tracer, &mut stdout);
        (
            JobOutcome {
                code,
                stdout,
                canceled: None,
            },
            opts.out.clone(),
        )
    }

    /// `reproduce resume`: finish an interrupted `--out` run from its
    /// checkpoints, then render/export exactly as the original invocation
    /// would have.
    fn run_resume(
        &self,
        resume: &ResumeOptions,
        progress: &Progress,
        tracer: &Tracer,
    ) -> (JobOutcome, Option<PathBuf>) {
        let mut stdout = String::new();
        let (opts, out) =
            match runner::resume_composite_cached(resume, progress, tracer, &self.caches) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("reproduce resume: {e}");
                    return (
                        JobOutcome {
                            code: 1,
                            stdout,
                            canceled: None,
                        },
                        None,
                    );
                }
            };
        if let Some(kind) = out.canceled {
            progress.info(&format!(
                "resume {}: final artifacts not exported",
                kind.name()
            ));
            return (
                JobOutcome {
                    code: 1,
                    stdout,
                    canceled: Some(kind),
                },
                opts.out.clone(),
            );
        }
        let code = render_and_export(&opts, &out, progress, tracer, &mut stdout);
        (
            JobOutcome {
                code,
                stdout,
                canceled: None,
            },
            opts.out.clone(),
        )
    }
}

/// Figure 1 is the 780 block diagram; we reproduce it as the simulated
/// component inventory.
pub fn fig1() -> String {
    let mut s = String::new();
    s.push_str("Figure 1 — VAX-11/780 block diagram (simulated configuration)\n");
    s.push_str("  CPU pipeline:\n");
    s.push_str("    I-Fetch   : 8-byte instruction buffer, one outstanding longword fill\n");
    s.push_str("    I-Decode  : one non-overlapped cycle per instruction\n");
    s.push_str("    EBOX      : microcoded; 200 ns microcycle; synthetic control store\n");
    s.push_str("  Memory subsystem:\n");
    s.push_str("    TB        : 128 entries, 2-way, split system/process halves\n");
    s.push_str("    Cache     : 8 KB, 2-way, 8-byte blocks, write-through, no write-allocate\n");
    s.push_str("    Write buf : one longword, 6-cycle drain\n");
    s.push_str("    SBI       : shared path to 8 MB memory, 6-cycle read miss\n");
    s
}

/// Build a run's tracer (and heartbeat) from the observability flags:
/// either `--trace-out` or `--progress` enables recording; without them
/// the tracer is the no-op disabled handle the hot path never notices.
/// When a trace file is requested, any panic flushes the partial buffer
/// there, so even a crashed run leaves an openable trace.
pub fn start_observability(
    trace_out: Option<&Path>,
    progress_ms: Option<u64>,
) -> (Tracer, Option<Heartbeat>) {
    let tracer = if trace_out.is_some() || progress_ms.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    if let Some(path) = trace_out {
        tracer.register_panic_flush(path);
    }
    let heartbeat = progress_ms.map(|ms| Heartbeat::start(tracer.clone(), ms));
    (tracer, heartbeat)
}

/// Write the post-run observability artifacts: the Chrome trace to
/// `--trace-out`, and (when the run exported into a directory) the
/// `runtime.json` roll-up next to the other artifacts. Failures here are
/// reported but never override the run's own exit code with success —
/// they only turn a clean exit into a failure.
pub fn flush_observability(
    tracer: &Tracer,
    trace_out: Option<&Path>,
    out_dir: Option<&Path>,
    progress: &Progress,
) -> i32 {
    if !tracer.is_enabled() {
        return 0;
    }
    let mut code = 0;
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("reproduce: cannot create {}: {e}", dir.display());
                code = 1;
            }
        }
        match write_atomic(path, &tracer.chrome_trace()) {
            Ok(()) => progress.info(&format!("wrote {}", path.display())),
            Err(e) => {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                code = 1;
            }
        }
    }
    if let Some(dir) = out_dir {
        let path = dir.join("runtime.json");
        let body = runtime_json(tracer).to_string_pretty();
        match std::fs::create_dir_all(dir)
            .map_err(|e| e.to_string())
            .and_then(|()| write_atomic(&path, &body).map_err(|e| e.to_string()))
        {
            Ok(()) => progress.info(&format!("wrote {}", path.display())),
            Err(e) => {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                code = 1;
            }
        }
    }
    code
}

/// `reproduce characterize`: run the directed-probe grid and emit the
/// per-opcode cost table. `--out DIR` writes `costs.json` + `costs.md`
/// (plus `runtime.json` when traced); without it the JSON goes to stdout.
/// Exit 1 when any grid cell exhausted its retries.
fn run_characterize(
    opts: &CharacterizeOptions,
    progress: &Progress,
    tracer: &Tracer,
) -> JobOutcome {
    let mut stdout = String::new();
    if opts.list {
        stdout.push_str(&charrun::render_grid_list(opts));
        return JobOutcome {
            code: 0,
            stdout,
            canceled: None,
        };
    }
    let out = charrun::run_characterize(opts, progress, tracer);
    // Latched once: the same observation gates the export below and
    // becomes the outcome's terminal cause.
    let canceled = opts.cancel.fired();
    if let Some(kind) = canceled {
        // A partial sweep is not a cost table; keep runtime.json, skip
        // the exports.
        progress.info(&format!(
            "characterize {}: cost table not exported",
            kind.name()
        ));
        return JobOutcome {
            code: 1,
            stdout,
            canceled,
        };
    }
    let json = vax_analysis::costs_json(&out.table);
    let mut code = i32::from(!out.failed_cells.is_empty());
    match &opts.out {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "reproduce characterize: cannot create {}: {e}",
                    dir.display()
                );
                code = 1;
            } else {
                for (name, body) in [
                    ("costs.json", json),
                    ("costs.md", vax_analysis::costs_markdown(&out.table)),
                ] {
                    let path = dir.join(name);
                    if let Err(e) = write_atomic(&path, &body) {
                        eprintln!(
                            "reproduce characterize: cannot write {}: {e}",
                            path.display()
                        );
                        code = 1;
                        break;
                    }
                    tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
                }
                progress.info(&format!(
                    "wrote costs.json and costs.md to {}",
                    dir.display()
                ));
            }
        }
        None => stdout.push_str(&json),
    }
    JobOutcome {
        code,
        stdout,
        canceled: None,
    }
}

/// `reproduce refute`: adversarial cross-checks over the probe grid.
/// Exit 0 only when every cell survives every check; a refutation (or a
/// quarantined cell) exits 1, and the minimized regression fixtures land
/// in `--fixtures DIR`.
fn run_refute(opts: &CharacterizeOptions, progress: &Progress, tracer: &Tracer) -> JobOutcome {
    let mut stdout = String::new();
    let result = charrun::run_refute(opts, progress, tracer);
    // Latched once: the same observation suppresses the partial verdict
    // list and becomes the outcome's terminal cause.
    let canceled = opts.cancel.fired();
    let code = match result {
        Err(msg) => {
            eprintln!("reproduce refute: {msg}");
            2
        }
        Ok(_) if canceled.is_some() => {
            // The sweep stopped early; a partial verdict list would read
            // as "the rest of the grid survived", which it did not.
            1
        }
        Ok(out) => {
            for (opcode, mode, checks) in &out.refuted_cells {
                let _ = writeln!(stdout, "REFUTED {opcode} {mode}: {}", checks.join(", "));
            }
            let _ = writeln!(
                stdout,
                "refute: {} cell(s) checked, {} refuted, {} minimized, {} quarantined",
                out.cells_checked,
                out.refuted_cells.len(),
                out.refutations.len(),
                out.failed_cells.len()
            );
            i32::from(!out.refuted_cells.is_empty() || !out.failed_cells.is_empty())
        }
    };
    JobOutcome {
        code,
        stdout,
        canceled,
    }
}

/// Everything downstream of the simulation: profile, per-workload CPIs,
/// exports, and the exit code. Shared by run and resume so a resumed
/// run's artifacts come from the same code path (and the same bytes) as an
/// uninterrupted one.
fn render_and_export(
    opts: &Options,
    out: &RunOutput,
    progress: &Progress,
    tracer: &Tracer,
    stdout: &mut String,
) -> i32 {
    let _export = tracer.span(MAIN_TID, "export", vec![]);
    // The µPC attribution profile: folded stacks + JSON always go to a
    // directory (--out if given, else the working directory); the top-N
    // report goes to stdout in text mode and stderr in json mode so the
    // machine-readable stream stays clean.
    if opts.profile {
        let profile = Profile::new(&out.cs.map, &out.analysis.m.hist);
        let dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("reproduce: cannot create {}: {e}", dir.display());
            return 1;
        }
        for (name, body) in [
            ("profile.folded", profile.folded()),
            ("profile.json", profile.to_json().to_string_pretty()),
        ] {
            let path = dir.join(name);
            if let Err(e) = write_atomic(&path, &body) {
                eprintln!("reproduce: cannot write {}: {e}", path.display());
                return 1;
            }
            tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
        }
        progress.info(&format!(
            "wrote profile.folded and profile.json to {}",
            dir.display()
        ));
        let report = profile.top_routines_report(opts.top);
        match opts.format {
            Format::Text => {
                let _ = writeln!(stdout, "{report}");
            }
            Format::Json => progress.info(&report),
        }
    }

    if opts.per_workload {
        let mut s = String::from("Per-workload CPI:\n");
        for (w, cpi) in &out.per_workload {
            s.push_str(&format!("  {:<34} {cpi:>6.2}\n", w.name()));
        }
        match opts.format {
            Format::Text => {
                let _ = writeln!(stdout, "{s}");
            }
            Format::Json => progress.info(&s),
        }
    }

    if opts.format == Format::Json {
        let manifest = RunManifest {
            experiment: opts.experiment.clone(),
            seed: Some(opts.seed),
            instructions: opts.instructions,
            warmup: opts.instructions / 10,
            interval_cycles: opts.interval_cycles,
            shards: opts.shards,
            config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
            fault_seed: opts.fault_seed,
            fault_classes: opts
                .fault_classes
                .iter()
                .map(|c| c.name().to_string())
                .collect(),
            degraded: out.degraded,
            failed_cells: out
                .failed_cells
                .iter()
                .map(|(w, s)| (w.name().to_string(), *s))
                .collect(),
        };
        let files =
            vax_analysis::run_artifacts(&manifest, &out.analysis, &out.series, &out.validation);
        match &opts.out {
            Some(dir) => {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("reproduce: cannot create {}: {e}", dir.display());
                    return 1;
                }
                for (name, body) in &files {
                    let path = dir.join(name);
                    if let Err(e) = write_atomic(&path, body) {
                        eprintln!("reproduce: cannot write {}: {e}", path.display());
                        return 1;
                    }
                    tracer.count(MAIN_TID, "bytes_exported", body.len() as u64);
                }
                progress.info(&format!(
                    "wrote {} artifacts to {}",
                    files.len(),
                    dir.display()
                ));
            }
            None => {
                let tables = files
                    .iter()
                    .find(|(name, _)| *name == "tables.json")
                    .map(|(_, body)| body.as_str())
                    .unwrap();
                stdout.push_str(tables);
            }
        }
        return exit_code(opts, out);
    }

    let rendered = match opts.experiment.as_str() {
        "all" => {
            let mut s = fig1();
            s.push('\n');
            s.push_str(&tables::print_all_tables(&out.analysis));
            s
        }
        "table1" => tables::table1(&out.analysis),
        "table2" => tables::table2(&out.analysis),
        "table3" => tables::table3(&out.analysis),
        "table4" => tables::table4(&out.analysis),
        "table5" => tables::table5(&out.analysis),
        "table6" => tables::table6(&out.analysis),
        "table7" => tables::table7(&out.analysis),
        "table8" => tables::table8(&out.analysis),
        "table9" => tables::table9(&out.analysis),
        "events" => tables::events(&out.analysis),
        other => unreachable!("experiment '{other}' passed validation but has no renderer"),
    };
    stdout.push_str(&rendered);
    exit_code(opts, out)
}

/// Exit code policy: validation divergence always fails; a degraded run
/// (quarantined cells) fails only under `--strict` — without it the
/// partial results are still worth exiting 0 for, and the manifest records
/// the damage.
fn exit_code(opts: &Options, out: &RunOutput) -> i32 {
    if !out.validation.is_clean() || (opts.strict && out.degraded) {
        1
    } else {
        0
    }
}
