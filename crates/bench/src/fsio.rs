//! Crash-safe filesystem writes.
//!
//! Every artifact the `reproduce` binary persists — run exports, profile
//! reports, bench reports, checkpoints — goes through [`write_atomic`]:
//! the bytes land in a same-directory temp file which is then renamed over
//! the final path. A reader (or a resumed run) therefore sees either the
//! complete old contents or the complete new contents, never a torn file,
//! no matter when the writing process is killed.

use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically: write a temp file in the same
/// directory (rename is only atomic within a filesystem), then rename it
/// over the destination. Each destination has its own temp name, so
/// concurrent workers journaling different files never collide.
///
/// # Errors
/// Propagates the underlying filesystem error; a partially-written temp
/// file is removed, the destination is never touched.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("write_atomic: no file name in '{}'", path.display()),
        )
    })?;
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    if let Err(e) = std::fs::write(&tmp, contents) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_overwrites_without_leftovers() {
        let dir = std::env::temp_dir().join(format!("fsio-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");

        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");

        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathological_destination() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
