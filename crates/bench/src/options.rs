//! Flags shared by every `reproduce` frontend, parsed in one place.
//!
//! The run, resume, characterize, refute, and serve subcommands all accept
//! the same engine-level knobs (`--jobs`, `--retries`, `--trace-out`,
//! `--progress`, `--quiet`/`--verbose`). Before this module each parser
//! re-implemented them — identical match arms with identical validation in
//! three places, one divergence away from the subcommands disagreeing
//! about what `--jobs 0` means. [`CommonOpts::try_parse`] is now the only
//! implementation; each subcommand parser offers every unrecognized flag
//! to it first and keeps only its command-specific arms.
//!
//! The shared numeric helpers (`parse_u64`, `parse_f64`, …) live here too,
//! so the `JobSpec` decoder (`crate::jobspec`) validates values with the
//! same rules and messages as the CLI.

use std::path::PathBuf;

use crate::progress::Verbosity;

/// The engine-level flags every grid-running subcommand shares.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// `--jobs N` (worker threads, ≥ 1); `None` when not given.
    pub jobs: Option<usize>,
    /// `--retries N` (extra attempts per failing cell).
    pub retries: Option<u32>,
    /// `--trace-out FILE` (Chrome-trace export; enables the tracer).
    pub trace_out: Option<PathBuf>,
    /// `--progress[=MS]` (stderr heartbeat period; enables the tracer).
    pub progress_ms: Option<u64>,
    quiet: bool,
    verbose: bool,
}

impl CommonOpts {
    /// Offer `args[*i]` to the shared parser. Consumes the flag (and its
    /// value, advancing `*i` past both) and returns `Ok(true)` when it is
    /// one of the shared flags; returns `Ok(false)` untouched otherwise.
    ///
    /// # Errors
    /// Returns the standard message for a shared flag with a missing or
    /// invalid value.
    pub fn try_parse(&mut self, args: &[String], i: &mut usize) -> Result<bool, String> {
        match args[*i].as_str() {
            "--jobs" => {
                *i += 1;
                let n = parse_u64("--jobs", args.get(*i))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                self.jobs = Some(n as usize);
            }
            "--retries" => {
                *i += 1;
                self.retries = Some(parse_u64("--retries", args.get(*i))? as u32);
            }
            "--trace-out" => {
                *i += 1;
                let file = args
                    .get(*i)
                    .ok_or_else(|| "--trace-out requires a file path".to_string())?;
                self.trace_out = Some(PathBuf::from(file));
            }
            flag if flag == "--progress" || flag.starts_with("--progress=") => {
                self.progress_ms = Some(parse_progress(flag)?);
            }
            "--quiet" => self.quiet = true,
            "--verbose" => self.verbose = true,
            _ => return Ok(false),
        }
        *i += 1;
        Ok(true)
    }

    /// Resolve `--quiet`/`--verbose` into a [`Verbosity`].
    ///
    /// # Errors
    /// Returns the standard message when both were given.
    pub fn verbosity(&self) -> Result<Verbosity, String> {
        if self.quiet && self.verbose {
            return Err("--quiet and --verbose are mutually exclusive".to_string());
        }
        Ok(if self.quiet {
            Verbosity::Quiet
        } else if self.verbose {
            Verbosity::Verbose
        } else {
            Verbosity::Normal
        })
    }
}

/// Parse a flag's value as a non-negative integer.
pub fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: '{raw}' (expected a non-negative integer)"))
}

/// Parse a flag's value as a finite non-negative number.
pub fn parse_f64(flag: &str, value: Option<&String>) -> Result<f64, String> {
    let raw = value.ok_or_else(|| format!("{flag} requires a value"))?;
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("invalid value for {flag}: '{raw}' (expected a number)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "invalid value for {flag}: '{raw}' (expected a finite non-negative number)"
        ));
    }
    Ok(v)
}

/// Parse `--progress` / `--progress=MS` (period in milliseconds, ≥ 1).
pub fn parse_progress(arg: &str) -> Result<u64, String> {
    match arg.strip_prefix("--progress=") {
        None => Ok(1000),
        Some(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                format!("invalid value for --progress: '{raw}' (expected milliseconds)")
            })?;
            if ms == 0 {
                return Err("--progress period must be at least 1 ms".to_string());
            }
            Ok(ms)
        }
    }
}

/// Parse `--shard-timeout` (seconds, strictly positive).
pub fn parse_shard_timeout(value: Option<&String>) -> Result<f64, String> {
    let v = parse_f64("--shard-timeout", value)?;
    if v <= 0.0 {
        return Err("--shard-timeout must be greater than zero".to_string());
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn consumes_shared_flags_and_advances() {
        let args = argv(&["--jobs", "4", "--retries", "2", "--progress=250"]);
        let mut c = CommonOpts::default();
        let mut i = 0;
        while i < args.len() {
            assert!(c.try_parse(&args, &mut i).unwrap(), "all flags are shared");
        }
        assert_eq!(c.jobs, Some(4));
        assert_eq!(c.retries, Some(2));
        assert_eq!(c.progress_ms, Some(250));
    }

    #[test]
    fn leaves_foreign_flags_untouched() {
        let args = argv(&["--shards", "2"]);
        let mut c = CommonOpts::default();
        let mut i = 0;
        assert!(!c.try_parse(&args, &mut i).unwrap());
        assert_eq!(i, 0, "a rejected flag must not consume anything");
    }

    #[test]
    fn shared_validation_rules() {
        let mut c = CommonOpts::default();
        let mut i = 0;
        let err = c.try_parse(&argv(&["--jobs", "0"]), &mut i).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
        let mut i = 0;
        let err = c.try_parse(&argv(&["--trace-out"]), &mut i).unwrap_err();
        assert!(err.contains("file path"), "{err}");
    }

    #[test]
    fn verbosity_resolution() {
        let mut c = CommonOpts::default();
        assert_eq!(c.verbosity().unwrap(), Verbosity::Normal);
        let mut i = 0;
        c.try_parse(&argv(&["--quiet"]), &mut i).unwrap();
        assert_eq!(c.verbosity().unwrap(), Verbosity::Quiet);
        let mut i = 0;
        c.try_parse(&argv(&["--verbose"]), &mut i).unwrap();
        assert!(c.verbosity().is_err(), "quiet+verbose conflict");
    }
}
