//! The typed job description shared by every frontend.
//!
//! A [`JobSpec`] is the experiment definition — workload grid, seed,
//! shards, fault plan, probe grid, tolerances — validated independently of
//! argv. The CLI subcommands parse flags into the same option structs a
//! decoded spec produces, and `reproduce serve` accepts a spec as a JSON
//! body, so a job submitted over HTTP runs the exact engine code path the
//! CLI runs: byte-identical artifacts by construction.
//!
//! Deliberately *not* in the spec: anything host-local or runtime-only —
//! output directories, trace files, narration levels, heartbeat periods,
//! bench-meter paths. Those belong to whoever runs the job (the daemon
//! picks the job directory; `--jobs`/`--retries` may be suggested by the
//! spec but are clamped by the server's own limits). This mirrors the
//! checkpoint-header split in `crate::resume`: experiment definition in
//! the artifact, runtime knobs outside it.
//!
//! The codec is canonical: [`JobSpec::encode`] always emits every field of
//! the spec's kind, in a fixed order, with defaults materialized — so
//! encode → decode → encode is byte-stable (property-tested). The decoder
//! rejects unknown keys, wrong types, and out-of-range values with typed
//! messages, on top of the byte-offset syntax errors (and duplicate-key
//! detection) from `vax_analysis::Json::parse`; the server maps every
//! decode error to a 400.

use vax780::FaultClass;
use vax_analysis::Json;

use crate::cli::{CharacterizeOptions, Options, EXPERIMENTS};

/// Spec format version accepted and emitted.
pub const JOBSPEC_FORMAT_VERSION: u64 = 1;

/// Upper bound on `jobs` and `shards` in a spec. The CLI trusts its local
/// operator; a service must not let one request spawn an absurd grid.
pub const MAX_GRID: u64 = 4096;

/// Upper bound on `deadline_secs` (~31.7 years). Anything larger is a
/// client bug, and huge values would overflow `Duration`/`Instant`
/// arithmetic when the deadline is armed.
pub const MAX_DEADLINE_SECS: f64 = 1e9;

/// A validated job description: one measurement run, one characterization
/// sweep, or one refutation sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// The five-workload composite measurement (the `reproduce` default).
    Run(RunSpec),
    /// The per-opcode × addressing-mode cost-table sweep.
    Characterize(ProbeSpec),
    /// Adversarial counter cross-checks over the probe grid.
    Refute(RefuteSpec),
}

/// Experiment definition for a measurement run (see [`Options`] for field
/// semantics; this is the argv-independent subset).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Suggested worker threads (`None` = the runner's default). Never
    /// changes results, only wall-clock time.
    pub jobs: Option<u64>,
    /// Suggested retry budget per cell (`None` = the runner's default).
    pub retries: Option<u64>,
    /// Wall-clock budget in seconds (> 0, ≤ [`MAX_DEADLINE_SECS`]),
    /// measured from job start; the
    /// serve daemon ends the job with terminal status `deadline_exceeded`
    /// at the next cell boundary once elapsed. `None` = no deadline.
    /// Runtime-only: never changes results, only whether the job is
    /// allowed to finish.
    pub deadline_secs: Option<f64>,
    /// Instructions measured per workload (≥ 1).
    pub instructions: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// Replica shards per workload (1..=[`MAX_GRID`]).
    pub shards: u64,
    /// Which table/figure to emit (one of [`EXPERIMENTS`]).
    pub experiment: String,
    /// Also report the five constituent per-workload CPIs.
    pub per_workload: bool,
    /// Interval-sampler period in cycles (≥ 1).
    pub interval_cycles: u64,
    /// Emit the µPC attribution profile.
    pub profile: bool,
    /// Rows in the hot-routine report (≥ 1).
    pub top: u64,
    /// Flight-recorder capacity in instructions; 0 disables it.
    pub flight_recorder: u64,
    /// Fault-injection seed; `None` = no faults.
    pub fault_seed: Option<u64>,
    /// Fault classes (canonical order; empty iff `fault_seed` is `None`,
    /// defaulted to all classes when a seed is given without classes).
    pub fault_classes: Vec<FaultClass>,
    /// Fail the job when any cell was quarantined.
    pub strict: bool,
}

impl Default for RunSpec {
    fn default() -> RunSpec {
        let o = Options::default();
        RunSpec {
            jobs: None,
            retries: None,
            deadline_secs: None,
            instructions: o.instructions,
            seed: o.seed,
            shards: o.shards,
            experiment: o.experiment,
            per_workload: o.per_workload,
            interval_cycles: o.interval_cycles,
            profile: o.profile,
            top: o.top as u64,
            flight_recorder: o.flight_recorder as u64,
            fault_seed: None,
            fault_classes: Vec::new(),
            strict: o.strict,
        }
    }
}

/// Experiment definition for the probe grid (characterize and the grid
/// half of refute); see [`CharacterizeOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Suggested worker threads (`None` = the runner's default).
    pub jobs: Option<u64>,
    /// Suggested retry budget per cell (`None` = the runner's default).
    pub retries: Option<u64>,
    /// Wall-clock budget in seconds (see [`RunSpec::deadline_secs`]).
    pub deadline_secs: Option<f64>,
    /// Opcode filter (upper-cased mnemonics); empty = the full table.
    pub opcodes: Vec<String>,
    /// Addressing-mode filter (mode keys); empty = all modes.
    pub modes: Vec<String>,
    /// Probe copies per loop iteration (1..=`vax_asm::probe::MAX_REPS`).
    pub reps: u64,
    /// Measured loop iterations per cell (≥ 1).
    pub iters: u64,
    /// Warmup instructions per cell.
    pub warmup: u64,
}

impl Default for ProbeSpec {
    fn default() -> ProbeSpec {
        let o = CharacterizeOptions::default();
        ProbeSpec {
            jobs: None,
            retries: None,
            deadline_secs: None,
            opcodes: Vec::new(),
            modes: Vec::new(),
            reps: o.reps as u64,
            iters: o.iters,
            warmup: o.warmup,
        }
    }
}

/// Experiment definition for a refutation sweep: the probe grid plus the
/// model comparison knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RefuteSpec {
    /// The probe grid to sweep.
    pub probe: ProbeSpec,
    /// Absolute cost-model tolerance, cycles per instruction.
    pub abs_tol: f64,
    /// Relative cost-model tolerance.
    pub rel_tol: f64,
    /// Minimize and record at most this many refutations.
    pub max_refutations: u64,
    /// Inline cost table to refute (`vax-characterize/v1` object);
    /// `None` = invariant checks only.
    pub model: Option<Json>,
}

impl Default for RefuteSpec {
    fn default() -> RefuteSpec {
        let o = CharacterizeOptions::default();
        RefuteSpec {
            probe: ProbeSpec::default(),
            abs_tol: o.abs_tol,
            rel_tol: o.rel_tol,
            max_refutations: o.max_refutations as u64,
            model: None,
        }
    }
}

impl JobSpec {
    /// The spec's kind string (`run` / `characterize` / `refute`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Run(_) => "run",
            JobSpec::Characterize(_) => "characterize",
            JobSpec::Refute(_) => "refute",
        }
    }

    /// Suggested worker threads, if the spec carries one.
    pub fn jobs(&self) -> Option<u64> {
        match self {
            JobSpec::Run(s) => s.jobs,
            JobSpec::Characterize(s) => s.jobs,
            JobSpec::Refute(s) => s.probe.jobs,
        }
    }

    /// Suggested retry budget, if the spec carries one.
    pub fn retries(&self) -> Option<u64> {
        match self {
            JobSpec::Run(s) => s.retries,
            JobSpec::Characterize(s) => s.retries,
            JobSpec::Refute(s) => s.probe.retries,
        }
    }

    /// Wall-clock budget in seconds, if the spec carries one.
    pub fn deadline_secs(&self) -> Option<f64> {
        match self {
            JobSpec::Run(s) => s.deadline_secs,
            JobSpec::Characterize(s) => s.deadline_secs,
            JobSpec::Refute(s) => s.probe.deadline_secs,
        }
    }

    /// Canonical encoding: every field of the kind, fixed order, defaults
    /// materialized. `encode(decode(encode(x)))` is byte-identical to
    /// `encode(x)`.
    pub fn encode(&self) -> Json {
        let mut m: Vec<(String, Json)> = vec![
            ("format_version".into(), JOBSPEC_FORMAT_VERSION.into()),
            ("kind".into(), self.kind().into()),
            ("jobs".into(), opt_u64_json(self.jobs())),
            ("retries".into(), opt_u64_json(self.retries())),
            (
                "deadline_secs".into(),
                self.deadline_secs().map_or(Json::Null, Json::from),
            ),
        ];
        match self {
            JobSpec::Run(s) => {
                m.push(("instructions".into(), s.instructions.into()));
                m.push(("seed".into(), s.seed.into()));
                m.push(("shards".into(), s.shards.into()));
                m.push(("experiment".into(), s.experiment.as_str().into()));
                m.push(("per_workload".into(), s.per_workload.into()));
                m.push(("interval_cycles".into(), s.interval_cycles.into()));
                m.push(("profile".into(), s.profile.into()));
                m.push(("top".into(), s.top.into()));
                m.push(("flight_recorder".into(), s.flight_recorder.into()));
                m.push(("fault_seed".into(), opt_u64_json(s.fault_seed)));
                m.push((
                    "fault_classes".into(),
                    Json::arr(s.fault_classes.iter().map(|c| c.name().into())),
                ));
                m.push(("strict".into(), s.strict.into()));
            }
            JobSpec::Characterize(s) => push_probe(&mut m, s),
            JobSpec::Refute(s) => {
                push_probe(&mut m, &s.probe);
                m.push(("abs_tol".into(), s.abs_tol.into()));
                m.push(("rel_tol".into(), s.rel_tol.into()));
                m.push(("max_refutations".into(), s.max_refutations.into()));
                m.push(("model".into(), s.model.clone().unwrap_or(Json::Null)));
            }
        }
        Json::Obj(m)
    }

    /// Decode and validate a spec from JSON text.
    ///
    /// # Errors
    /// Returns a typed message: syntax errors carry the byte offset (and
    /// duplicate keys are rejected) via `Json::parse`; structural errors
    /// name the offending field and the accepted range.
    pub fn decode(text: &str) -> Result<JobSpec, String> {
        let json = Json::parse(text)?;
        JobSpec::from_json(&json)
    }

    /// [`JobSpec::decode`] from an already-parsed value.
    ///
    /// # Errors
    /// See [`JobSpec::decode`].
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        let members = match json {
            Json::Obj(members) => members,
            _ => return Err("jobspec: the body must be a JSON object".to_string()),
        };
        let version =
            field_u64(json, "format_version", 0, u64::MAX)?.unwrap_or(JOBSPEC_FORMAT_VERSION);
        if version != JOBSPEC_FORMAT_VERSION {
            return Err(format!(
                "jobspec: unsupported format_version {version} (this build speaks \
                 {JOBSPEC_FORMAT_VERSION})"
            ));
        }
        let kind = match json.get("kind") {
            None => "run".to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err("jobspec: 'kind' must be a string".to_string()),
        };
        const COMMON: &[&str] = &["format_version", "kind", "jobs", "retries", "deadline_secs"];
        const RUN: &[&str] = &[
            "instructions",
            "seed",
            "shards",
            "experiment",
            "per_workload",
            "interval_cycles",
            "profile",
            "top",
            "flight_recorder",
            "fault_seed",
            "fault_classes",
            "strict",
        ];
        const PROBE: &[&str] = &["opcodes", "modes", "reps", "iters", "warmup"];
        const REFUTE_EXTRA: &[&str] = &["abs_tol", "rel_tol", "max_refutations", "model"];
        let allowed: Vec<&str> = match kind.as_str() {
            "run" => [COMMON, RUN].concat(),
            "characterize" => [COMMON, PROBE].concat(),
            "refute" => [COMMON, PROBE, REFUTE_EXTRA].concat(),
            other => {
                return Err(format!(
                    "jobspec: unknown kind '{other}' (expected run, characterize, or refute)"
                ))
            }
        };
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("jobspec: unknown field '{key}' for kind '{kind}'"));
            }
        }
        let jobs = field_u64(json, "jobs", 1, MAX_GRID)?;
        let retries = field_u64(json, "retries", 0, 1_000)?;
        let deadline_secs = field_f64(json, "deadline_secs")?;
        if deadline_secs == Some(0.0) {
            return Err("jobspec: 'deadline_secs' must be greater than zero".to_string());
        }
        if deadline_secs.is_some_and(|d| d > MAX_DEADLINE_SECS) {
            // An absurd budget is a client bug, and unbounded values can
            // overflow Duration/Instant arithmetic downstream — reject at
            // the validation boundary like every other field.
            return Err(format!(
                "jobspec: 'deadline_secs' must be at most {MAX_DEADLINE_SECS:e}"
            ));
        }
        match kind.as_str() {
            "run" => {
                let mut spec = RunSpec {
                    jobs,
                    retries,
                    deadline_secs,
                    ..RunSpec::default()
                };
                if let Some(v) = field_u64(json, "instructions", 1, u64::MAX)? {
                    spec.instructions = v;
                }
                if let Some(v) = field_u64(json, "seed", 0, u64::MAX)? {
                    spec.seed = v;
                }
                if let Some(v) = field_u64(json, "shards", 1, MAX_GRID)? {
                    spec.shards = v;
                }
                if let Some(v) = json.get("experiment") {
                    let e = v
                        .as_str()
                        .ok_or_else(|| "jobspec: 'experiment' must be a string".to_string())?;
                    if !EXPERIMENTS.contains(&e) {
                        return Err(format!(
                            "jobspec: unknown experiment '{e}' (expected one of: {})",
                            EXPERIMENTS.join(", ")
                        ));
                    }
                    spec.experiment = e.to_string();
                }
                if let Some(v) = field_bool(json, "per_workload")? {
                    spec.per_workload = v;
                }
                if let Some(v) = field_u64(json, "interval_cycles", 1, u64::MAX)? {
                    spec.interval_cycles = v;
                }
                if let Some(v) = field_bool(json, "profile")? {
                    spec.profile = v;
                }
                if let Some(v) = field_u64(json, "top", 1, u64::MAX)? {
                    spec.top = v;
                }
                if let Some(v) = field_u64(json, "flight_recorder", 0, u64::MAX)? {
                    spec.flight_recorder = v;
                }
                spec.fault_seed = field_u64(json, "fault_seed", 0, u64::MAX)?;
                let classes = field_str_arr(json, "fault_classes")?;
                if !classes.is_empty() && spec.fault_seed.is_none() {
                    return Err("jobspec: 'fault_classes' requires 'fault_seed'".to_string());
                }
                if spec.fault_seed.is_some() {
                    spec.fault_classes = if classes.is_empty() {
                        FaultClass::ALL.to_vec()
                    } else {
                        vax780::parse_classes(&classes.join(","))
                            .map_err(|e| format!("jobspec: {e}"))?
                    };
                }
                if let Some(v) = field_bool(json, "strict")? {
                    spec.strict = v;
                }
                Ok(JobSpec::Run(spec))
            }
            "characterize" => Ok(JobSpec::Characterize(probe_from_json(
                json,
                jobs,
                retries,
                deadline_secs,
            )?)),
            "refute" => {
                let probe = probe_from_json(json, jobs, retries, deadline_secs)?;
                let mut spec = RefuteSpec {
                    probe,
                    ..RefuteSpec::default()
                };
                if let Some(v) = field_f64(json, "abs_tol")? {
                    spec.abs_tol = v;
                }
                if let Some(v) = field_f64(json, "rel_tol")? {
                    spec.rel_tol = v;
                }
                if let Some(v) = field_u64(json, "max_refutations", 0, u64::MAX)? {
                    spec.max_refutations = v;
                }
                spec.model = match json.get("model") {
                    None | Some(Json::Null) => None,
                    Some(m @ Json::Obj(_)) => Some(m.clone()),
                    Some(_) => {
                        return Err(
                            "jobspec: 'model' must be a vax-characterize/v1 object or null"
                                .to_string(),
                        )
                    }
                };
                Ok(JobSpec::Refute(spec))
            }
            _ => unreachable!("kind validated above"),
        }
    }

    /// Materialize run [`Options`] from a run spec. Runtime knobs (out,
    /// format, verbosity, tracing) stay at their defaults for the caller
    /// to fill in; `jobs`/`retries` fall back to `default_jobs` /
    /// `default_retries` when the spec doesn't suggest them.
    ///
    /// # Panics
    /// Panics if the spec is not `kind = run`.
    pub fn to_run_options(&self, default_jobs: usize, default_retries: u32) -> Options {
        let JobSpec::Run(s) = self else {
            panic!("to_run_options on a {} spec", self.kind());
        };
        Options {
            instructions: s.instructions,
            seed: s.seed,
            jobs: s.jobs.map_or(default_jobs, |j| j as usize),
            shards: s.shards,
            experiment: s.experiment.clone(),
            per_workload: s.per_workload,
            interval_cycles: s.interval_cycles,
            profile: s.profile,
            top: s.top as usize,
            flight_recorder: s.flight_recorder as usize,
            fault_seed: s.fault_seed,
            fault_classes: s.fault_classes.clone(),
            retries: s.retries.map_or(default_retries, |r| r as u32),
            strict: s.strict,
            ..Options::default()
        }
    }

    /// Materialize [`CharacterizeOptions`] from a characterize or refute
    /// spec (see [`JobSpec::to_run_options`] for the knob split). For a
    /// refute spec the inline model is *not* handled here — the caller
    /// writes it to a file and sets `model` on the result.
    ///
    /// # Panics
    /// Panics if the spec is `kind = run`.
    pub fn to_characterize_options(
        &self,
        default_jobs: usize,
        default_retries: u32,
    ) -> CharacterizeOptions {
        let (probe, refute) = match self {
            JobSpec::Characterize(p) => (p, None),
            JobSpec::Refute(r) => (&r.probe, Some(r)),
            JobSpec::Run(_) => panic!("to_characterize_options on a run spec"),
        };
        let mut opts = CharacterizeOptions {
            opcodes: probe.opcodes.clone(),
            modes: probe.modes.clone(),
            reps: probe.reps as u32,
            iters: probe.iters,
            warmup: probe.warmup,
            jobs: probe.jobs.map_or(default_jobs, |j| j as usize),
            retries: probe.retries.map_or(default_retries, |r| r as u32),
            ..CharacterizeOptions::default()
        };
        if let Some(r) = refute {
            opts.abs_tol = r.abs_tol;
            opts.rel_tol = r.rel_tol;
            opts.max_refutations = r.max_refutations as usize;
        }
        opts
    }
}

fn opt_u64_json(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn push_probe(m: &mut Vec<(String, Json)>, s: &ProbeSpec) {
    m.push((
        "opcodes".into(),
        Json::arr(s.opcodes.iter().map(|o| o.as_str().into())),
    ));
    m.push((
        "modes".into(),
        Json::arr(s.modes.iter().map(|k| k.as_str().into())),
    ));
    m.push(("reps".into(), s.reps.into()));
    m.push(("iters".into(), s.iters.into()));
    m.push(("warmup".into(), s.warmup.into()));
}

fn probe_from_json(
    json: &Json,
    jobs: Option<u64>,
    retries: Option<u64>,
    deadline_secs: Option<f64>,
) -> Result<ProbeSpec, String> {
    let mut spec = ProbeSpec {
        jobs,
        retries,
        deadline_secs,
        ..ProbeSpec::default()
    };
    for mn in field_str_arr(json, "opcodes")? {
        if vax_arch::Opcode::from_mnemonic(&mn).is_none() {
            return Err(format!("jobspec: unknown opcode '{mn}' in 'opcodes'"));
        }
        spec.opcodes.push(mn.to_uppercase());
    }
    for key in field_str_arr(json, "modes")? {
        if vax_asm::probe::mode_from_key(&key).is_none() {
            return Err(format!(
                "jobspec: unknown addressing mode '{key}' in 'modes'"
            ));
        }
        spec.modes.push(key);
    }
    if let Some(v) = field_u64(json, "reps", 1, u64::from(vax_asm::probe::MAX_REPS))? {
        spec.reps = v;
    }
    if let Some(v) = field_u64(json, "iters", 1, u64::MAX)? {
        spec.iters = v;
    }
    if let Some(v) = field_u64(json, "warmup", 0, u64::MAX)? {
        spec.warmup = v;
    }
    Ok(spec)
}

/// An optional integer field, range-checked. `null` counts as absent.
fn field_u64(json: &Json, key: &str, min: u64, max: u64) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_i64()
                .filter(|&n| n >= 0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("jobspec: '{key}' must be a non-negative integer"))?;
            if n < min || n > max {
                return Err(if max == u64::MAX {
                    format!("jobspec: '{key}' must be at least {min}")
                } else {
                    format!("jobspec: '{key}' must be between {min} and {max}")
                });
            }
            Ok(Some(n))
        }
    }
}

/// An optional boolean field.
fn field_bool(json: &Json, key: &str) -> Result<Option<bool>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("jobspec: '{key}' must be a boolean")),
    }
}

/// An optional finite non-negative number field.
fn field_f64(json: &Json, key: &str) -> Result<Option<f64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let x = v
                .as_f64()
                .or_else(|| v.as_i64().map(|n| n as f64))
                .ok_or_else(|| format!("jobspec: '{key}' must be a number"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "jobspec: '{key}' must be a finite non-negative number"
                ));
            }
            Ok(Some(x))
        }
    }
}

/// An optional array-of-strings field (absent or `null` = empty).
fn field_str_arr(json: &Json, key: &str) -> Result<Vec<String>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("jobspec: '{key}' must contain only strings"))
            })
            .collect(),
        Some(_) => Err(format!("jobspec: '{key}' must be an array of strings")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_bodies_decode_with_defaults() {
        let spec = JobSpec::decode(r#"{"kind": "run"}"#).unwrap();
        assert_eq!(spec, JobSpec::Run(RunSpec::default()));
        let spec = JobSpec::decode("{}").unwrap();
        assert_eq!(spec.kind(), "run", "kind defaults to run");
        let spec = JobSpec::decode(r#"{"kind": "characterize"}"#).unwrap();
        assert_eq!(spec, JobSpec::Characterize(ProbeSpec::default()));
        let spec = JobSpec::decode(r#"{"kind": "refute"}"#).unwrap();
        assert_eq!(spec, JobSpec::Refute(RefuteSpec::default()));
    }

    #[test]
    fn run_round_trip_preserves_everything() {
        let spec = JobSpec::Run(RunSpec {
            jobs: Some(4),
            retries: Some(1),
            deadline_secs: Some(2.5),
            instructions: 60_000,
            seed: 7,
            shards: 2,
            experiment: "table2".to_string(),
            per_workload: true,
            interval_cycles: 10_000,
            profile: true,
            top: 5,
            flight_recorder: 64,
            fault_seed: Some(9),
            fault_classes: vec![FaultClass::Parity, FaultClass::Smc],
            strict: true,
        });
        let text = spec.encode().to_string_pretty();
        assert_eq!(JobSpec::decode(&text).unwrap(), spec);
    }

    #[test]
    fn fault_seed_defaults_classes_to_all() {
        let spec = JobSpec::decode(r#"{"kind": "run", "fault_seed": 3}"#).unwrap();
        match spec {
            JobSpec::Run(s) => assert_eq!(s.fault_classes, FaultClass::ALL.to_vec()),
            _ => panic!("expected run"),
        }
        let err = JobSpec::decode(r#"{"kind": "run", "fault_classes": ["parity"]}"#).unwrap_err();
        assert!(err.contains("requires 'fault_seed'"), "{err}");
    }

    #[test]
    fn rejects_unknown_fields_per_kind() {
        let err = JobSpec::decode(r#"{"kind": "run", "frobnicate": 1}"#).unwrap_err();
        assert!(err.contains("unknown field 'frobnicate'"), "{err}");
        // A run-only field is unknown for characterize.
        let err = JobSpec::decode(r#"{"kind": "characterize", "shards": 2}"#).unwrap_err();
        assert!(err.contains("unknown field 'shards'"), "{err}");
        // A refute-only field is unknown for characterize.
        let err = JobSpec::decode(r#"{"kind": "characterize", "abs_tol": 1}"#).unwrap_err();
        assert!(err.contains("unknown field 'abs_tol'"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_grid_values() {
        for body in [
            r#"{"kind": "run", "jobs": 0}"#,
            r#"{"kind": "run", "jobs": 5000}"#,
            r#"{"kind": "run", "shards": 0}"#,
            r#"{"kind": "run", "shards": 99999}"#,
            r#"{"kind": "run", "instructions": 0}"#,
            r#"{"kind": "characterize", "reps": 0}"#,
            r#"{"kind": "characterize", "iters": 0}"#,
            r#"{"kind": "run", "deadline_secs": 0}"#,
            r#"{"kind": "run", "deadline_secs": -1}"#,
            // Values past MAX_DEADLINE_SECS pass the finite/non-negative
            // check but would overflow Duration/Instant arithmetic when
            // the deadline is armed — they must die here, not panic the
            // serve worker.
            r#"{"kind": "run", "deadline_secs": 1e15}"#,
            r#"{"kind": "run", "deadline_secs": 1e30}"#,
            r#"{"kind": "run", "deadline_secs": 1e300}"#,
        ] {
            assert!(JobSpec::decode(body).is_err(), "{body} must be rejected");
        }
        let ok = format!(r#"{{"kind": "run", "deadline_secs": {MAX_DEADLINE_SECS}}}"#);
        assert!(JobSpec::decode(&ok).is_ok(), "the bound itself is valid");
    }

    #[test]
    fn deadline_is_a_common_field() {
        for kind in ["run", "characterize", "refute"] {
            let body = format!(r#"{{"kind": "{kind}", "deadline_secs": 1.5}}"#);
            let spec = JobSpec::decode(&body).unwrap();
            assert_eq!(spec.deadline_secs(), Some(1.5), "{kind}");
            let text = spec.encode().to_string_pretty();
            assert_eq!(JobSpec::decode(&text).unwrap(), spec, "{kind} round-trip");
        }
    }

    #[test]
    fn rejects_wrong_types_with_field_names() {
        let err = JobSpec::decode(r#"{"kind": "run", "seed": "seven"}"#).unwrap_err();
        assert!(err.contains("'seed'"), "{err}");
        let err = JobSpec::decode(r#"{"kind": "run", "strict": 1}"#).unwrap_err();
        assert!(err.contains("'strict'"), "{err}");
        let err = JobSpec::decode(r#"{"kind": "characterize", "opcodes": [1]}"#).unwrap_err();
        assert!(err.contains("'opcodes'"), "{err}");
        let err = JobSpec::decode(r#"{"kind": "refute", "model": 5}"#).unwrap_err();
        assert!(err.contains("'model'"), "{err}");
    }

    #[test]
    fn rejects_unknown_grid_content() {
        let err = JobSpec::decode(r#"{"kind": "characterize", "opcodes": ["NOPE"]}"#).unwrap_err();
        assert!(err.contains("unknown opcode 'NOPE'"), "{err}");
        let err =
            JobSpec::decode(r#"{"kind": "characterize", "modes": ["sideways"]}"#).unwrap_err();
        assert!(err.contains("unknown addressing mode"), "{err}");
        let err = JobSpec::decode(r#"{"kind": "run", "experiment": "table99"}"#).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        let err = JobSpec::decode(r#"{"kind": "launder"}"#).unwrap_err();
        assert!(err.contains("unknown kind 'launder'"), "{err}");
    }

    #[test]
    fn version_gate() {
        assert!(JobSpec::decode(r#"{"format_version": 1, "kind": "run"}"#).is_ok());
        let err = JobSpec::decode(r#"{"format_version": 2, "kind": "run"}"#).unwrap_err();
        assert!(err.contains("unsupported format_version 2"), "{err}");
    }

    #[test]
    fn options_materialization_uses_defaults() {
        let spec = JobSpec::decode(r#"{"kind": "run", "instructions": 5000}"#).unwrap();
        let opts = spec.to_run_options(3, 2);
        assert_eq!(opts.instructions, 5000);
        assert_eq!((opts.jobs, opts.retries), (3, 2), "daemon defaults");
        let spec = JobSpec::decode(r#"{"kind": "run", "jobs": 2, "retries": 0}"#).unwrap();
        let opts = spec.to_run_options(3, 2);
        assert_eq!((opts.jobs, opts.retries), (2, 0), "spec overrides");
    }
}
