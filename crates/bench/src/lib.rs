//! # vax-bench
//!
//! Benchmark harness and the `reproduce` binary that regenerates every
//! table and figure of Emer & Clark (ISCA 1984). See `src/bin/reproduce.rs`
//! and the Criterion benches under `benches/`.

pub mod benchcheck;
pub mod cache;
pub mod cancel;
pub mod charrun;
pub mod cli;
pub mod diffcmd;
pub mod engine;
pub mod fsio;
pub mod harness;
pub mod heartbeat;
pub mod jobspec;
pub mod meter;
pub mod options;
pub mod pool;
pub mod progress;
pub mod resume;
pub mod runner;
pub mod serve;
pub mod tracecheck;

/// Default per-workload measurement length (instructions) for the full
/// reproduction. The paper ran each experiment ~1 hour of wall time; at
/// 10.6 cycles (2.1 µs) per instruction that is ~1.7 G instructions — far
/// beyond what shape-fidelity requires. One million instructions per
/// workload is past the point where every reported statistic is stable to
/// three digits.
pub const DEFAULT_INSTRUCTIONS: u64 = 1_000_000;

/// Default RNG seed for the reproduction experiments.
pub const DEFAULT_SEED: u64 = 1984;
